"""Shared utilities: standardisation, seeding and file helpers."""

from .files import atomic_write
from .npzmap import load_npz_mapped
from .scaling import Standardizer

__all__ = ["Standardizer", "atomic_write", "load_npz_mapped"]
