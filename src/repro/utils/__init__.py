"""Shared utilities: standardisation, seeding and file helpers."""

from .files import atomic_write
from .scaling import Standardizer

__all__ = ["Standardizer", "atomic_write"]
