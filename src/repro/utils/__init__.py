"""Shared utilities: standardisation and seeding helpers."""

from .scaling import Standardizer

__all__ = ["Standardizer"]
