"""Standardisation utilities shared by the causal-effect learners."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Standardizer"]


class Standardizer:
    """Column-wise standardiser with degenerate-column protection.

    Each learner (the baseline model and each continual stage of CERL) fits
    its own standardiser on the data it is allowed to see; the statistics are
    part of the model state, never of the stored memory.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, values: np.ndarray) -> "Standardizer":
        """Estimate column means and standard deviations."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[:, None]
        if values.shape[0] == 0:
            raise ValueError("cannot fit a standardizer on empty data")
        self.mean_ = values.mean(axis=0)
        std = values.std(axis=0)
        # Constant columns carry no information; leave them centred at zero
        # rather than dividing by ~0.
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Standardise ``values`` using the fitted statistics."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        squeeze = values.ndim == 1
        if squeeze:
            values = values[:, None]
        out = (values - self.mean_) / self.std_
        return out.ravel() if squeeze else out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        """Fit on ``values`` and return the standardised array."""
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map standardised values back to the original scale."""
        self._check_fitted()
        values = np.asarray(values, dtype=np.float64)
        squeeze = values.ndim == 1
        if squeeze:
            values = values[:, None]
        out = values * self.std_ + self.mean_
        return out.ravel() if squeeze else out

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("Standardizer used before fit()")
