"""Memory-mapped access to ``.npz`` archive members.

``np.load(path, mmap_mode=...)`` silently ignores ``mmap_mode`` for zip
archives — NumPy only maps bare ``.npy`` files — so "load the checkpoint
zero-copy" needs a little help: an *uncompressed* zip member is a verbatim
``.npy`` file at a known offset inside the archive, which is exactly what
``np.memmap`` can map once the offset is located.  :func:`load_npz_mapped`
does that member location: it walks the archive's central directory, resolves
each stored member's absolute data offset through its local file header (the
local header's name/extra lengths may differ from the central directory's —
the offset must be computed from the local record), parses the member's
``.npy`` header, and maps the array data in place.

Members that are deflate-compressed (e.g. written by ``np.savez_compressed``)
cannot be mapped and are read eagerly through the normal zip path, so the
function accepts any ``.npz`` and maps what it can.  Mapped arrays keep their
own file handle open via ``np.memmap``; on POSIX the mapping survives the
archive being atomically replaced (``os.replace``) — readers holding the old
mapping keep seeing the old bytes, which is the property the model registry's
hot-swap story relies on.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np
from numpy.lib import format as npy_format

__all__ = ["load_npz_mapped"]

#: Fixed portion of a zip local file header (PK\x03\x04 record).
_LOCAL_HEADER = struct.Struct("<4s5H3I2H")


def _member_data_offset(raw, info: zipfile.ZipInfo) -> int:
    """Absolute offset of ``info``'s file data, via its local header."""
    raw.seek(info.header_offset)
    record = raw.read(_LOCAL_HEADER.size)
    if len(record) != _LOCAL_HEADER.size or record[:4] != b"PK\x03\x04":
        raise zipfile.BadZipFile(
            f"bad local file header for member {info.filename!r}"
        )
    name_len, extra_len = _LOCAL_HEADER.unpack(record)[-2:]
    return info.header_offset + _LOCAL_HEADER.size + name_len + extra_len


def _map_member(raw, path: Path, info: zipfile.ZipInfo, mode: str) -> np.ndarray:
    """Memory-map one stored (uncompressed) ``.npy`` member in place."""
    raw.seek(_member_data_offset(raw, info))
    version = npy_format.read_magic(raw)
    if version == (1, 0):
        shape, fortran, dtype = npy_format.read_array_header_1_0(raw)
    elif version == (2, 0):
        shape, fortran, dtype = npy_format.read_array_header_2_0(raw)
    else:  # pragma: no cover - numpy writes 1.0/2.0 for plain arrays
        raise ValueError(f"unsupported .npy format version {version} in {path}")
    if dtype.hasobject:
        raise ValueError(
            f"member {info.filename!r} holds Python objects and cannot be mapped"
        )
    if int(np.prod(shape, dtype=np.int64)) == 0:
        # mmap cannot map zero bytes; an empty array has no data to share.
        return np.empty(shape, dtype=dtype, order="F" if fortran else "C")
    return np.memmap(
        path,
        dtype=dtype,
        shape=shape,
        order="F" if fortran else "C",
        mode=mode,
        offset=raw.tell(),
    )


def load_npz_mapped(
    path: Union[str, Path], mode: str = "r"
) -> Dict[str, np.ndarray]:
    """Open a ``.npz`` archive with memory-mapped (zero-copy) members.

    Parameters
    ----------
    path:
        The archive.  Members stored uncompressed are returned as
        ``np.memmap`` views of the file; compressed members fall back to an
        eager read (they have no byte-identical on-disk representation to
        map).
    mode:
        ``np.memmap`` mode for the mapped members; the default ``"r"`` gives
        read-only views, which is the only safe choice for a shared
        checkpoint.

    Returns
    -------
    dict
        ``{member name (without the .npy suffix): array}`` — the same mapping
        ``np.load`` would produce, with identical values bit for bit.
    """
    if mode not in ("r", "c"):
        raise ValueError(
            f"mode must be 'r' (read-only) or 'c' (copy-on-write); got {mode!r} — "
            f"writable maps would let one reader corrupt every other reader's model"
        )
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            if info.compress_type == zipfile.ZIP_STORED:
                arrays[name] = _map_member(raw, path, info, mode)
            else:
                with archive.open(info) as member:
                    arrays[name] = npy_format.read_array(member, allow_pickle=False)
    return arrays
