"""Atomic file-write helper shared by persistence and the serving registry."""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union


@contextmanager
def atomic_write(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temporary sibling of ``path``; on success move it over ``path``.

    The caller writes the complete content to the yielded temporary path; the
    final ``os.replace`` is atomic on POSIX (same directory, hence same
    filesystem), so readers only ever observe the previous complete file or
    the new complete file — a crash mid-write can never leave a truncated
    target.  The temporary file is cleaned up on failure.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
