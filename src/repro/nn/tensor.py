"""Reverse-mode automatic differentiation over dense NumPy arrays.

This module is the lowest layer of the deep-learning substrate used by the
CERL reproduction.  It provides a :class:`Tensor` wrapper around
``numpy.ndarray`` with a dynamically built computation graph and reverse-mode
gradient propagation, in the spirit of the define-by-run frameworks the paper
relies on (PyTorch), but implemented from scratch on NumPy.

Only the operations required by CERL and its baselines are implemented:
matrix multiplication, broadcasting element-wise arithmetic, the usual
activations, reductions, slicing/concatenation, and a handful of composite
operations (cosine similarity, softmax, log-sum-exp) that are used by the
balancing and distillation losses.

Example
-------
>>> a = Tensor([[1.0, 2.0]], requires_grad=True)
>>> b = Tensor([[3.0], [4.0]], requires_grad=True)
>>> loss = (a @ b).sum()
>>> loss.backward()
>>> a.grad.tolist()
[[3.0, 4.0]]
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

_FLOAT64 = np.dtype(np.float64)

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "concatenate", "stack"]


class _GradMode:
    """Process-wide switch controlling whether graphs are recorded."""

    enabled: bool = True


class no_grad:
    """Context manager and decorator that disables graph construction.

    Used for evaluation passes and for the envelope-style gradient of the
    Sinkhorn transport plan, where the plan itself must be treated as a
    constant with respect to the representation parameters.

    Usable three ways, all reentrant (a single instance can be entered from
    nested frames; each exit restores the mode that was active at the
    matching enter):

    >>> with no_grad():                    # context manager
    ...     model.forward(x)
    >>> @no_grad()                         # decorator
    ... def evaluate(model, x):
    ...     return model.forward(x)
    >>> @no_grad                           # bare decorator, same behaviour
    ... def predict(model, x):
    ...     return model.forward(x)
    """

    def __init__(self, func: Optional[Callable] = None) -> None:
        self._stack: list = []
        self._func = func
        if func is not None:
            functools.update_wrapper(self, func)

    def __enter__(self) -> "no_grad":
        self._stack.append(_GradMode.enabled)
        _GradMode.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GradMode.enabled = self._stack.pop()

    def __call__(self, *args, **kwargs):
        if self._func is not None:
            # Instance built via the bare-decorator form: act as the wrapper.
            with no_grad():
                return self._func(*args, **kwargs)
        # Instance used as a decorator factory: wrap the target function.
        (func,) = args

        @functools.wraps(func)
        def wrapper(*wargs, **wkwargs):
            with no_grad():
                return func(*wargs, **wkwargs)

        return wrapper

    def __get__(self, obj, objtype=None):
        # Descriptor protocol so the bare form also works on instance
        # methods: attribute access binds the receiver like a function would.
        if obj is None:
            return self
        return functools.partial(self.__call__, obj)


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GradMode.enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _released_backward(grad: np.ndarray) -> None:
    """Sentinel marking a node whose backward closure was released.

    Never called: :meth:`Tensor.backward` checks for it by identity and raises
    before invoking, turning a second pass through a freed subgraph into an
    explicit error instead of silently wrong gradients.
    """
    raise AssertionError("released backward sentinel must not be invoked")


def _reduction_axes(from_shape: tuple, to_shape: tuple) -> tuple:
    """Axes to sum over to reduce a broadcast result of ``from_shape`` back to ``to_shape``."""
    extra_dims = len(from_shape) - len(to_shape)
    return tuple(range(extra_dims)) + tuple(
        i + extra_dims
        for i, dim in enumerate(to_shape)
        if dim == 1 and from_shape[i + extra_dims] != 1
    )


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    Broadcasting in the forward pass corresponds to summation in the backward
    pass over the broadcast axes.  The leading-axis and size-1-axis reductions
    are fused into a single ``sum`` call so one temporary is allocated instead
    of two.
    """
    if grad.shape == shape:
        return grad
    axes = _reduction_axes(grad.shape, shape)
    if axes:
        grad = grad.sum(axis=axes)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` for numerical robustness of
        the small models used in the reproduction.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_topo", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple = tuple(_parents) if is_grad_enabled() else ()
        self._backward = _backward if is_grad_enabled() else None
        self._topo: Optional[list] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value; raises if the tensor is not size one."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-free deep copy of the tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and is_grad_enabled():
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into :attr:`grad`.

        ``owned=True`` signals that the caller allocated ``grad`` freshly and
        holds no other reference, so it can be adopted without the defensive
        copy and mutated in place by later accumulations.

        The hottest backward closures (add/sub/mul/matmul/relu/elu/sum)
        deliberately inline the owned-adoption branch of this method instead
        of calling it — the call overhead is measurable there.  A change to
        accumulation semantics must be mirrored in those closures.
        """
        if not self.requires_grad:
            return
        if grad.dtype is not _FLOAT64:
            grad = np.asarray(grad, dtype=np.float64)
            owned = True
        if self.grad is None:
            self.grad = grad if owned else grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data
        # Broadcast decisions depend only on shapes, which are fixed at graph
        # construction: resolve them now instead of on every backward call.
        self_shape = self.data.shape
        other_shape = other_t.data.shape
        self_direct = self_shape == data.shape
        other_direct = other_shape == data.shape
        self_axes = None if self_direct else _reduction_axes(data.shape, self_shape)
        other_axes = None if other_direct else _reduction_axes(data.shape, other_shape)

        def backward(grad: np.ndarray) -> None:
            # Pass-through gradients are adopted without a defensive copy: the
            # incoming array is the child's grad, which the backward driver
            # drops right after this call, and at most one parent adopts it.
            adopted = False
            if self.requires_grad:
                if self_direct:
                    if self.grad is None:
                        self.grad = grad
                        adopted = True
                    else:
                        self.grad += grad
                else:
                    self._accumulate(grad.sum(axis=self_axes).reshape(self_shape), owned=True)
            if other_t.requires_grad:
                if other_direct:
                    if other_t.grad is None:
                        other_t.grad = grad.copy() if adopted else grad
                    else:
                        other_t.grad += grad
                else:
                    other_t._accumulate(grad.sum(axis=other_axes).reshape(other_shape), owned=True)

        return Tensor._make(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, owned=True)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data
        self_shape = self.data.shape
        other_shape = other_t.data.shape
        self_direct = self_shape == data.shape
        other_direct = other_shape == data.shape
        self_axes = None if self_direct else _reduction_axes(data.shape, self_shape)
        other_axes = None if other_direct else _reduction_axes(data.shape, other_shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if self_direct:
                    if self.grad is None:
                        self.grad = grad
                    else:
                        self.grad += grad
                else:
                    self._accumulate(grad.sum(axis=self_axes).reshape(self_shape), owned=True)
            if other_t.requires_grad:
                negated = -grad
                if not other_direct:
                    negated = negated.sum(axis=other_axes).reshape(other_shape)
                if other_t.grad is None:
                    other_t.grad = negated
                else:
                    other_t.grad += negated

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data
        self_shape = self.data.shape
        other_shape = other_t.data.shape
        self_direct = self_shape == data.shape
        other_direct = other_shape == data.shape
        self_axes = None if self_direct else _reduction_axes(data.shape, self_shape)
        other_axes = None if other_direct else _reduction_axes(data.shape, other_shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                local = grad * other_t.data
                if not self_direct:
                    local = local.sum(axis=self_axes).reshape(self_shape)
                if self.grad is None:
                    self.grad = local
                else:
                    self.grad += local
            if other_t.requires_grad:
                local = grad * self.data
                if not other_direct:
                    local = local.sum(axis=other_axes).reshape(other_shape)
                if other_t.grad is None:
                    other_t.grad = local
                else:
                    other_t.grad += local

        return Tensor._make(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data
        self_shape = self.data.shape
        other_shape = other_t.data.shape
        self_direct = self_shape == data.shape
        other_direct = other_shape == data.shape
        self_axes = None if self_direct else _reduction_axes(data.shape, self_shape)
        other_axes = None if other_direct else _reduction_axes(data.shape, other_shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                local = grad / other_t.data
                if not self_direct:
                    local = local.sum(axis=self_axes).reshape(self_shape)
                self._accumulate(local, owned=True)
            if other_t.requires_grad:
                local = -grad * self.data / (other_t.data ** 2)
                if not other_direct:
                    local = local.sum(axis=other_axes).reshape(other_shape)
                other_t._accumulate(local, owned=True)

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1), owned=True)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                local = grad @ other_t.data.T
                if self.grad is None:
                    self.grad = local
                else:
                    self.grad += local
            if other_t.requires_grad:
                local = self.data.T @ grad
                if other_t.grad is None:
                    other_t.grad = local
                else:
                    other_t.grad += local

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        # Strictly increasing integer indices (the treated/control splits of
        # every IPM batch) cannot collide, so scatter-assignment replaces the
        # much slower buffered ``np.add.at``.  The scan only matters when a
        # backward closure will actually be kept.
        unique_rows = (
            self.requires_grad
            and isinstance(index, np.ndarray)
            and index.ndim == 1
            and index.dtype.kind in "iu"
            and (index.size <= 1 or bool(np.all(np.diff(index) > 0)))
        )

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            if unique_rows:
                full[index] = grad
            else:
                np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                # Full reduction: the seed gradient is a scalar, so the
                # broadcast-copy collapses to a constant fill.
                local = np.empty(self.data.shape)
                local.fill(grad.item())
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                local = np.broadcast_to(grad, self.data.shape).copy()
            if self.grad is None:
                self.grad = local
            else:
                self.grad += local

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                expanded = np.expand_dims(data, axis)
                grad = np.expand_dims(grad, axis)
            else:
                expanded = data
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad, owned=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data, owned=True)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, owned=True)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12), owned=True)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data), owned=True)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            local = grad * (self.data > 0.0)
            if self.grad is None:
                self.grad = local
            else:
                self.grad += local

        return Tensor._make(data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        data = np.where(self.data > 0.0, self.data, alpha * (np.exp(self.data) - 1.0))

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            local = grad * np.where(self.data > 0.0, 1.0, alpha * np.exp(self.data))
            if self.grad is None:
                self.grad = local
            else:
                self.grad += local

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2), owned=True)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data), owned=True)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside, owned=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # composite operations used by CERL losses
    # ------------------------------------------------------------------ #
    def norm(self, axis: Optional[int] = None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """Euclidean norm along ``axis`` with an epsilon guard at zero."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps).sqrt()

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        max_const = Tensor(self.data.max(axis=axis, keepdims=True))
        shifted = self - max_const
        result = shifted.exp().sum(axis=axis, keepdims=True).log() + max_const
        if not keepdims:
            result = Tensor._squeeze(result, axis)
        return result

    @staticmethod
    def _squeeze(tensor: "Tensor", axis: int) -> "Tensor":
        shape = list(tensor.shape)
        axis = axis % len(shape)
        del shape[axis]
        return tensor.reshape(tuple(shape))

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def _build_topo(self) -> list:
        """Topologically order the graph rooted at this tensor (leaves first).

        Iterative two-phase depth-first search producing exactly the
        left-to-right post-order a recursive traversal would; the ordering is
        cached on the root by :meth:`backward` when ``retain_graph`` is set.
        """
        topo: list = []
        visited: set = set()
        # Two-phase DFS without per-entry tuples: a ``None`` marker on the
        # main stack means "emit the top of the pending stack".
        stack: list = [self]
        pending: list = []
        push = stack.append
        push_pending = pending.append
        pop_pending = pending.pop
        emit = topo.append
        add_visited = visited.add
        while stack:
            node = stack.pop()
            if node is None:
                emit(pop_pending())
                continue
            node_id = id(node)
            if node_id in visited:
                continue
            add_visited(node_id)
            parents = node._parents
            if not parents:
                # Leaf: its post-visit would fire immediately anyway.
                emit(node)
                continue
            push_pending(node)
            push(None)
            # Constant parents cannot have differentiable ancestors
            # (requires_grad propagates forward), so whole non-grad subgraphs
            # are pruned here; they would only ever be no-ops in the pass.
            if len(parents) == 1:
                parent = parents[0]
                if parent.requires_grad and id(parent) not in visited:
                    push(parent)
            else:
                for parent in reversed(parents):
                    if parent.requires_grad and id(parent) not in visited:
                        push(parent)
        return topo

    def backward(self, grad: Optional[ArrayLike] = None, retain_graph: bool = False) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` for scalar tensors; required
            for non-scalar outputs.
        retain_graph:
            By default the pass releases the graph as it goes: intermediate
            gradients are dropped as soon as they have been propagated, and
            every node's parent/backward references are cleared afterwards so
            the whole graph is freed without waiting for the root to go out of
            scope.  Pass ``True`` to keep the graph (and the cached
            topological ordering) alive for another :meth:`backward` call.
            Backpropagating a second time through a released subgraph raises
            instead of silently producing wrong gradients.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo = self._topo if self._topo is not None else self._build_topo()
        self._topo = topo if retain_graph else None

        self._accumulate(grad)
        release = not retain_graph
        for node in reversed(topo):
            backward_fn = node._backward
            if backward_fn is not None:
                if backward_fn is _released_backward:
                    raise RuntimeError(
                        "backward through a released graph: this part of the graph "
                        "was already backpropagated and freed; call "
                        "backward(retain_graph=True) on the first pass to reuse it"
                    )
                node_grad = node.grad
                if node_grad is not None:
                    backward_fn(node_grad)
                    # Interior gradients are never read back by callers; drop
                    # them as soon as they have been propagated.
                    node.grad = None
                if release:
                    node._backward = _released_backward
                    node._parents = ()


# ---------------------------------------------------------------------- #
# free functions
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concatenate() requires at least one tensor")
    if any(getattr(t, "_trace", None) is not None for t in tensors):
        from .tape import trace_concatenate

        return trace_concatenate(tensors, axis=axis)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)
