"""Reverse-mode automatic differentiation over dense NumPy arrays.

This module is the lowest layer of the deep-learning substrate used by the
CERL reproduction.  It provides a :class:`Tensor` wrapper around
``numpy.ndarray`` with a dynamically built computation graph and reverse-mode
gradient propagation, in the spirit of the define-by-run frameworks the paper
relies on (PyTorch), but implemented from scratch on NumPy.

Only the operations required by CERL and its baselines are implemented:
matrix multiplication, broadcasting element-wise arithmetic, the usual
activations, reductions, slicing/concatenation, and a handful of composite
operations (cosine similarity, softmax, log-sum-exp) that are used by the
balancing and distillation losses.

Example
-------
>>> a = Tensor([[1.0, 2.0]], requires_grad=True)
>>> b = Tensor([[3.0], [4.0]], requires_grad=True)
>>> loss = (a @ b).sum()
>>> loss.backward()
>>> a.grad.tolist()
[[3.0, 4.0]]
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "concatenate", "stack"]


class _GradMode:
    """Process-wide switch controlling whether graphs are recorded."""

    enabled: bool = True


class no_grad:
    """Context manager that disables graph construction.

    Used for evaluation passes and for the envelope-style gradient of the
    Sinkhorn transport plan, where the plan itself must be treated as a
    constant with respect to the representation parameters.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GradMode.enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting.

    Broadcasting in the forward pass corresponds to summation in the backward
    pass over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` for numerical robustness of
        the small models used in the reproduction.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple = tuple(_parents) if is_grad_enabled() else ()
        self._backward = _backward if is_grad_enabled() else None
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value; raises if the tensor is not size one."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-free deep copy of the tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and is_grad_enabled():
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other_t._accumulate(_unbroadcast(-grad, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(_unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                _unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other_t.data.T)
            if other_t.requires_grad:
                other_t._accumulate(self.data.T @ grad)

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                expanded = np.expand_dims(data, axis)
                grad = np.expand_dims(grad, axis)
            else:
                expanded = data
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # element-wise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        data = np.where(self.data > 0.0, self.data, alpha * (np.exp(self.data) - 1.0))

        def backward(grad: np.ndarray) -> None:
            local = np.where(self.data > 0.0, 1.0, alpha * np.exp(self.data))
            self._accumulate(grad * local)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self._accumulate(grad * inside)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # composite operations used by CERL losses
    # ------------------------------------------------------------------ #
    def norm(self, axis: Optional[int] = None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """Euclidean norm along ``axis`` with an epsilon guard at zero."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps).sqrt()

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exps = shifted.exp()
        return exps / exps.sum(axis=axis, keepdims=True)

    def logsumexp(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        max_const = Tensor(self.data.max(axis=axis, keepdims=True))
        shifted = self - max_const
        result = shifted.exp().sum(axis=axis, keepdims=True).log() + max_const
        if not keepdims:
            result = Tensor._squeeze(result, axis)
        return result

    @staticmethod
    def _squeeze(tensor: "Tensor", axis: int) -> "Tensor":
        shape = list(tensor.shape)
        axis = axis % len(shape)
        del shape[axis]
        return tensor.reshape(tuple(shape))

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` for scalar tensors; required
            for non-scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


# ---------------------------------------------------------------------- #
# free functions
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concatenate() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)
