"""Kernels for the tape-replay training backend (see :mod:`repro.nn.tape`).

Each class here is one recorded operation of a traced loss evaluation.  An op
owns preallocated output/scratch buffers and exposes:

* ``run()`` — recompute the forward value into the output node's buffer;
* ``backward()`` — accumulate local gradients into the parents' grad buffers.

Bit-identity contract
---------------------
Every kernel evaluates the *exact* NumPy expression sequence of the matching
``Tensor`` closure in :mod:`repro.nn.tensor` (same ufuncs, same operand
order), so a replayed step produces gradients bitwise identical to the eager
backward, with one deliberate exception: the eager pass *adopts* the first
local gradient of a node while the tape zero-fills the grad buffer and adds
every local into it.  ``0.0 + x`` differs from ``x`` only in the sign of a
zero (``0.0 + -0.0 == +0.0``), and a zero's sign can never grow into a value
difference downstream of a gradient (gradients are only added, multiplied and
fed to the optimiser), so the two passes are equal under ``np.array_equal``
everywhere — which is what the parity tests pin.

Dynamic dimensions
------------------
The treated/control split sizes of the IPM term change every minibatch, so
ops downstream of a dynamic index feed are *capacity-backed*: the output
buffer is a flat array and ``run()`` re-derives the current shape from the
parents and takes a contiguous view.  Static ops skip all of that and write
straight into a fixed array.
"""

from __future__ import annotations

import numpy as np

from .tensor import _reduction_axes

__all__ = ["Buf", "PredicateFlip", "TraceError"]


class TraceError(RuntimeError):
    """An operation that the tape backend cannot record."""


class PredicateFlip(RuntimeError):
    """A traced branch predicate evaluated differently at replay time.

    The backend catches this, restores any RNG state consumed by the partial
    replay, and falls back to an eager evaluation of the step.
    """


class Buf:
    """Capacity-backed scratch storage: a flat array plus shaped views.

    ``view(shape)`` returns a contiguous view of the first ``prod(shape)``
    elements, growing the flat storage when a replay needs more capacity than
    any previous step.  Steady-state replays therefore perform zero
    allocations: the flat array is stable and views are cheap.
    """

    __slots__ = ("flat",)

    def __init__(self, shape, dtype=np.float64) -> None:
        n = 1
        for dim in shape:
            n *= int(dim)
        self.flat = np.empty(max(n, 1), dtype=dtype)

    def view(self, shape) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= int(dim)
        if n > self.flat.size:
            self.flat = np.empty(n, dtype=self.flat.dtype)
        return self.flat[:n].reshape(shape)


def _accumulate(parent, local: np.ndarray) -> None:
    """``parent.grad += local`` with the eager broadcast reduction.

    Mirrors ``Tensor._accumulate`` semantics on zero-initialised buffers:
    when ``local`` carries broadcast axes it is summed down with one ``sum``
    call over the fused axis tuple, exactly as ``_unbroadcast`` does.
    """
    shape = parent.data.shape
    if local.shape == shape:
        np.add(parent.grad, local, out=parent.grad)
        return
    axes = _reduction_axes(local.shape, shape)
    reduced = local.sum(axis=axes) if axes else local
    np.add(parent.grad, reduced.reshape(shape), out=parent.grad)


def _accumulate_neg(parent, local: np.ndarray) -> None:
    """``parent.grad += (-local)`` without materialising the negation.

    IEEE-754 subtraction is defined as addition of the negation, and negation
    distributes exactly over pairwise sums, so ``grad -= local`` (after the
    same broadcast reduction) is bitwise the eager ``grad += -local``.
    """
    shape = parent.data.shape
    if local.shape == shape:
        np.subtract(parent.grad, local, out=parent.grad)
        return
    axes = _reduction_axes(local.shape, shape)
    reduced = local.sum(axis=axes) if axes else local
    np.subtract(parent.grad, reduced.reshape(shape), out=parent.grad)


class Op:
    """Base recorded operation.  Subclasses set ``out`` and parent nodes."""

    __slots__ = ("out",)

    def run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self) -> None:
        """Default: nothing to propagate (constant/host ops)."""


def _refresh(node, shape) -> np.ndarray:
    """Point a dynamic node's data/grad views at the current shape."""
    data = node.data
    if data.shape != shape:
        data = node._buf.view(shape)
        node.data = data
        if node._gbuf is not None:
            node.grad = node._gbuf.view(shape)
    return data


class _Binary(Op):
    __slots__ = ("a", "b")

    def __init__(self, a, b, out) -> None:
        self.a = a
        self.b = b
        self.out = out


class AddOp(_Binary):
    __slots__ = ()

    def run(self) -> None:
        a, b = self.a.data, self.b.data
        out = self.out
        if out._dyn:
            np.add(a, b, out=_refresh(out, np.broadcast_shapes(a.shape, b.shape)))
        else:
            np.add(a, b, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        if self.a.requires_grad:
            _accumulate(self.a, grad)
        if self.b.requires_grad:
            _accumulate(self.b, grad)


class SubOp(_Binary):
    __slots__ = ()

    def run(self) -> None:
        a, b = self.a.data, self.b.data
        out = self.out
        if out._dyn:
            np.subtract(a, b, out=_refresh(out, np.broadcast_shapes(a.shape, b.shape)))
        else:
            np.subtract(a, b, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        if self.a.requires_grad:
            _accumulate(self.a, grad)
        if self.b.requires_grad:
            _accumulate_neg(self.b, grad)


class MulOp(_Binary):
    __slots__ = ("_scratch",)

    def __init__(self, a, b, out) -> None:
        super().__init__(a, b, out)
        self._scratch = Buf(out.data.shape) if (a.requires_grad or b.requires_grad) else None

    def run(self) -> None:
        a, b = self.a.data, self.b.data
        out = self.out
        if out._dyn:
            np.multiply(a, b, out=_refresh(out, np.broadcast_shapes(a.shape, b.shape)))
        else:
            np.multiply(a, b, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        if self.a.requires_grad:
            np.multiply(grad, self.b.data, out=local)
            _accumulate(self.a, local)
        if self.b.requires_grad:
            np.multiply(grad, self.a.data, out=local)
            _accumulate(self.b, local)


class DivOp(_Binary):
    __slots__ = ("_scratch", "_scratch2")

    def __init__(self, a, b, out) -> None:
        super().__init__(a, b, out)
        needs = a.requires_grad or b.requires_grad
        self._scratch = Buf(out.data.shape) if needs else None
        self._scratch2 = Buf(b.data.shape) if b.requires_grad else None

    def run(self) -> None:
        a, b = self.a.data, self.b.data
        out = self.out
        if out._dyn:
            np.divide(a, b, out=_refresh(out, np.broadcast_shapes(a.shape, b.shape)))
        else:
            np.divide(a, b, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        if self.a.requires_grad:
            np.divide(grad, self.b.data, out=local)
            _accumulate(self.a, local)
        if self.b.requires_grad:
            # Eager: -grad * self.data / (other.data ** 2).
            np.negative(grad, out=local)
            np.multiply(local, self.a.data, out=local)
            denom = self._scratch2.view(self.b.data.shape)
            np.power(self.b.data, 2, out=denom)
            np.divide(local, denom, out=local)
            _accumulate(self.b, local)


class NegOp(Op):
    __slots__ = ("a",)

    def __init__(self, a, out) -> None:
        self.a = a
        self.out = out

    def run(self) -> None:
        a = self.a.data
        out = self.out
        if out._dyn:
            np.negative(a, out=_refresh(out, a.shape))
        else:
            np.negative(a, out=out.data)

    def backward(self) -> None:
        if self.a.requires_grad:
            np.subtract(self.a.grad, self.out.grad, out=self.a.grad)


class PowOp(Op):
    __slots__ = ("a", "exponent", "_scratch", "_scratch2")

    def __init__(self, a, exponent, out) -> None:
        self.a = a
        self.exponent = exponent
        self.out = out
        self._scratch = Buf(out.data.shape) if a.requires_grad else None
        self._scratch2 = Buf(out.data.shape) if a.requires_grad else None

    def run(self) -> None:
        a = self.a.data
        out = self.out
        if out._dyn:
            np.power(a, self.exponent, out=_refresh(out, a.shape))
        else:
            np.power(a, self.exponent, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        powed = self._scratch2.view(grad.shape)
        # Eager: grad * exponent * self.data ** (exponent - 1).
        np.multiply(grad, self.exponent, out=local)
        np.power(self.a.data, self.exponent - 1, out=powed)
        np.multiply(local, powed, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class MatMulOp(_Binary):
    __slots__ = ("_scratch_a", "_scratch_b")

    def __init__(self, a, b, out) -> None:
        super().__init__(a, b, out)
        self._scratch_a = Buf(a.data.shape) if a.requires_grad else None
        self._scratch_b = Buf(b.data.shape) if b.requires_grad else None

    def run(self) -> None:
        a, b = self.a.data, self.b.data
        out = self.out
        if out._dyn:
            np.matmul(a, b, out=_refresh(out, (a.shape[0], b.shape[1])))
        else:
            np.matmul(a, b, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        if self.a.requires_grad:
            local = self._scratch_a.view(self.a.data.shape)
            np.matmul(grad, self.b.data.T, out=local)
            np.add(self.a.grad, local, out=self.a.grad)
        if self.b.requires_grad:
            local = self._scratch_b.view(self.b.data.shape)
            np.matmul(self.a.data.T, grad, out=local)
            np.add(self.b.grad, local, out=self.b.grad)


class ReshapeOp(Op):
    """View op: output data aliases the parent buffer reshaped."""

    __slots__ = ("a", "target")

    def __init__(self, a, target, out) -> None:
        self.a = a
        self.target = target
        self.out = out

    def run(self) -> None:
        out = self.out
        data = self.a.data.reshape(self.target)
        if out.data.shape != data.shape and out._gbuf is not None:
            out.grad = out._gbuf.view(data.shape)
        out.data = data

    def backward(self) -> None:
        if self.a.requires_grad:
            grad = self.out.grad.reshape(self.a.data.shape)
            np.add(self.a.grad, grad, out=self.a.grad)


class TransposeOp(Op):
    """View op: output data aliases the parent buffer transposed."""

    __slots__ = ("a",)

    def __init__(self, a, out) -> None:
        self.a = a
        self.out = out

    def run(self) -> None:
        out = self.out
        data = self.a.data.T
        if out.data.shape != data.shape and out._gbuf is not None:
            out.grad = out._gbuf.view(data.shape)
        out.data = data

    def backward(self) -> None:
        if self.a.requires_grad:
            np.add(self.a.grad, self.out.grad.T, out=self.a.grad)


class GetRowsOp(Op):
    """``tensor[index]`` for a 1-D integer row index held by a host value.

    The backward uses the eager scatter path: the index feeds recorded
    through the tape are ``np.flatnonzero`` outputs, which are strictly
    increasing, exactly the condition under which ``Tensor.__getitem__``
    selects scatter-assignment over ``np.add.at``.
    """

    __slots__ = ("a", "index", "_full")

    def __init__(self, a, index, out) -> None:
        self.a = a
        self.index = index
        self.out = out
        self._full = Buf(a.data.shape) if a.requires_grad else None

    def run(self) -> None:
        idx = self.index.get()
        a = self.a.data
        out = self.out
        if out._dyn:
            np.take(a, idx, axis=0, out=_refresh(out, (idx.shape[0],) + a.shape[1:]))
        else:
            np.take(a, idx, axis=0, out=out.data)

    def backward(self) -> None:
        if not self.a.requires_grad:
            return
        full = self._full.view(self.a.data.shape)
        full.fill(0.0)
        full[self.index.get()] = self.out.grad
        np.add(self.a.grad, full, out=self.a.grad)


class SumOp(Op):
    __slots__ = ("a", "axis", "keepdims")

    def __init__(self, a, axis, keepdims, out) -> None:
        self.a = a
        self.axis = axis
        self.keepdims = keepdims
        self.out = out

    def run(self) -> None:
        a = self.a.data
        out = self.out
        if not out._dyn:
            np.sum(a, axis=self.axis, keepdims=self.keepdims, out=out.data)
            return
        shape = list(a.shape)
        if self.keepdims:
            shape[self.axis] = 1
        else:
            del shape[self.axis]
        np.sum(a, axis=self.axis, keepdims=self.keepdims, out=_refresh(out, tuple(shape)))

    def backward(self) -> None:
        if not self.a.requires_grad:
            return
        grad = self.out.grad
        if self.axis is None:
            # Eager fills a full-shape constant and adds it; a broadcast
            # scalar add is the same pairwise sums.
            np.add(self.a.grad, grad.item(), out=self.a.grad)
            return
        if not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        np.add(self.a.grad, grad, out=self.a.grad)


class _Unary(Op):
    __slots__ = ("a", "_scratch")

    def __init__(self, a, out) -> None:
        self.a = a
        self.out = out
        self._scratch = Buf(out.data.shape) if a.requires_grad else None

    def _out_view(self) -> np.ndarray:
        out = self.out
        if out._dyn:
            return _refresh(out, self.a.data.shape)
        return out.data


class ExpOp(_Unary):
    __slots__ = ()

    def run(self) -> None:
        np.exp(self.a.data, out=self._out_view())

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        np.multiply(grad, self.out.data, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class LogOp(_Unary):
    __slots__ = ()

    def run(self) -> None:
        np.log(self.a.data, out=self._out_view())

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        np.divide(grad, self.a.data, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class SqrtOp(_Unary):
    __slots__ = ("_scratch2",)

    def __init__(self, a, out) -> None:
        super().__init__(a, out)
        self._scratch2 = Buf(out.data.shape) if a.requires_grad else None

    def run(self) -> None:
        np.sqrt(self.a.data, out=self._out_view())

    def backward(self) -> None:
        # Eager: grad * 0.5 / np.maximum(data, 1e-12).
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        denom = self._scratch2.view(grad.shape)
        np.multiply(grad, 0.5, out=local)
        np.maximum(self.out.data, 1e-12, out=denom)
        np.divide(local, denom, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class AbsOp(_Unary):
    __slots__ = ("_sign",)

    def __init__(self, a, out) -> None:
        super().__init__(a, out)
        self._sign = Buf(out.data.shape) if a.requires_grad else None

    def run(self) -> None:
        np.absolute(self.a.data, out=self._out_view())

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        sign = self._sign.view(grad.shape)
        np.sign(self.a.data, out=sign)
        np.multiply(grad, sign, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class ReluOp(_Unary):
    __slots__ = ("_mask",)

    def __init__(self, a, out) -> None:
        super().__init__(a, out)
        self._mask = Buf(out.data.shape, dtype=np.bool_) if a.requires_grad else None

    def run(self) -> None:
        np.maximum(self.a.data, 0.0, out=self._out_view())

    def backward(self) -> None:
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        mask = self._mask.view(grad.shape)
        np.greater(self.a.data, 0.0, out=mask)
        np.multiply(grad, mask, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class EluOp(_Unary):
    __slots__ = ("alpha", "_mask", "_neg")

    def __init__(self, a, alpha, out) -> None:
        super().__init__(a, out)
        self.alpha = alpha
        self._mask = Buf(out.data.shape, dtype=np.bool_)
        self._neg = Buf(out.data.shape)

    def run(self) -> None:
        # Eager: np.where(x > 0, x, alpha * (exp(x) - 1)).  copyto with the
        # positive mask picks branches elementwise exactly like np.where
        # (NaN fails the > comparison, selecting the exp branch both ways).
        x = self.a.data
        out = self._out_view()
        mask = self._mask.view(x.shape)
        branch = self._neg.view(x.shape)
        np.greater(x, 0.0, out=mask)
        np.exp(x, out=branch)
        np.subtract(branch, 1.0, out=branch)
        np.multiply(branch, self.alpha, out=branch)
        np.copyto(out, branch)
        np.copyto(out, x, where=mask)

    def backward(self) -> None:
        # Eager: grad * np.where(x > 0, 1.0, alpha * exp(x)); the forward
        # mask buffer still holds x > 0 for this step.
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        branch = self._neg.view(grad.shape)
        np.exp(self.a.data, out=branch)
        np.multiply(branch, self.alpha, out=branch)
        np.copyto(branch, 1.0, where=self._mask.view(grad.shape))
        np.multiply(grad, branch, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class TanhOp(_Unary):
    __slots__ = ("_scratch2",)

    def __init__(self, a, out) -> None:
        super().__init__(a, out)
        self._scratch2 = Buf(out.data.shape) if a.requires_grad else None

    def run(self) -> None:
        np.tanh(self.a.data, out=self._out_view())

    def backward(self) -> None:
        # Eager: grad * (1.0 - data ** 2).
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        sq = self._scratch2.view(grad.shape)
        np.power(self.out.data, 2, out=sq)
        np.subtract(1.0, sq, out=sq)
        np.multiply(grad, sq, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class SigmoidOp(_Unary):
    __slots__ = ("_scratch2",)

    def __init__(self, a, out) -> None:
        super().__init__(a, out)
        self._scratch2 = Buf(out.data.shape) if a.requires_grad else None

    def run(self) -> None:
        # Eager: 1.0 / (1.0 + np.exp(-x)), ufunc by ufunc.
        out = self._out_view()
        np.negative(self.a.data, out=out)
        np.exp(out, out=out)
        np.add(out, 1.0, out=out)
        np.divide(1.0, out, out=out)

    def backward(self) -> None:
        # Eager: grad * data * (1.0 - data), left associated.
        grad = self.out.grad
        data = self.out.data
        local = self._scratch.view(grad.shape)
        one_minus = self._scratch2.view(grad.shape)
        np.subtract(1.0, data, out=one_minus)
        np.multiply(grad, data, out=local)
        np.multiply(local, one_minus, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class ClipOp(_Unary):
    __slots__ = ("low", "high", "_mask", "_mask2")

    def __init__(self, a, low, high, out) -> None:
        super().__init__(a, out)
        self.low = low
        self.high = high
        self._mask = Buf(out.data.shape, dtype=np.bool_) if a.requires_grad else None
        self._mask2 = Buf(out.data.shape, dtype=np.bool_) if a.requires_grad else None

    def run(self) -> None:
        np.clip(self.a.data, self.low, self.high, out=self._out_view())

    def backward(self) -> None:
        # Eager: grad * ((x >= low) & (x <= high)).
        grad = self.out.grad
        local = self._scratch.view(grad.shape)
        inside = self._mask.view(grad.shape)
        upper = self._mask2.view(grad.shape)
        np.greater_equal(self.a.data, self.low, out=inside)
        np.less_equal(self.a.data, self.high, out=upper)
        np.logical_and(inside, upper, out=inside)
        np.multiply(grad, inside, out=local)
        np.add(self.a.grad, local, out=self.a.grad)


class ConcatOp(Op):
    """Row concatenation (axis 0), the only axis the traced losses use."""

    __slots__ = ("parents",)

    def __init__(self, parents, out) -> None:
        self.parents = tuple(parents)
        self.out = out

    def run(self) -> None:
        arrays = [p.data for p in self.parents]
        out = self.out
        if out._dyn:
            rows = sum(a.shape[0] for a in arrays)
            np.concatenate(arrays, axis=0, out=_refresh(out, (rows,) + arrays[0].shape[1:]))
        else:
            np.concatenate(arrays, axis=0, out=out.data)

    def backward(self) -> None:
        grad = self.out.grad
        start = 0
        for parent in self.parents:
            stop = start + parent.data.shape[0]
            if parent.requires_grad:
                np.add(parent.grad, grad[start:stop], out=parent.grad)
            start = stop


class DropoutMaskOp(Op):
    """Host op drawing an inverted-dropout mask into the output leaf.

    Consumes the generator stream exactly like the eager
    ``(rng.random(shape) < keep).astype(np.float64) / keep``, at the same
    position in the per-step draw order (ops replay in recording order).
    """

    __slots__ = ("rng", "keep", "_rand", "_less")

    def __init__(self, rng, keep, out) -> None:
        self.rng = rng
        self.keep = keep
        self.out = out
        self._rand = Buf(out.data.shape)
        self._less = Buf(out.data.shape, dtype=np.bool_)

    def run(self) -> None:
        out = self.out.data
        rand = self._rand.view(out.shape)
        less = self._less.view(out.shape)
        self.rng.random(out=rand)
        np.less(rand, self.keep, out=less)
        np.copyto(out, less)
        np.divide(out, self.keep, out=out)


class HostTensorOp(Op):
    """Host-computed constant node (e.g. the Sinkhorn transport plan).

    ``fn`` is evaluated on every replay and its result becomes the node's
    data; the node never carries gradients (envelope-style constants).
    """

    __slots__ = ("fn",)

    def __init__(self, fn, out) -> None:
        self.fn = fn
        self.out = out

    def run(self) -> None:
        self.out.data = np.asarray(self.fn(), dtype=np.float64)


class LeafRefreshOp(Op):
    """Rebind a leaf node's data to a host value computed earlier this step."""

    __slots__ = ("source",)

    def __init__(self, source, out) -> None:
        self.source = source
        self.out = out

    def run(self) -> None:
        self.out.data = self.source.get()


class HostOp(Op):
    """Generic host-side value op: ``value = fn()`` each replay."""

    __slots__ = ("fn", "value", "dynamic")

    def __init__(self, fn, dynamic=False) -> None:
        self.fn = fn
        self.value = None
        self.dynamic = dynamic
        self.out = None

    def run(self) -> None:
        self.value = self.fn()

    def get(self) -> np.ndarray:
        return self.value


class GuardOp(Op):
    """Re-evaluate a traced branch predicate; raise on a changed outcome."""

    __slots__ = ("fn", "handles", "baked")

    def __init__(self, fn, handles, baked) -> None:
        self.fn = fn
        self.handles = tuple(handles)
        self.baked = bool(baked)
        self.out = None

    def run(self) -> None:
        if bool(self.fn(*[h.get() for h in self.handles])) != self.baked:
            raise PredicateFlip("traced branch predicate changed at replay time")
