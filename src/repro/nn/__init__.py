"""NumPy-based neural-network substrate (autograd, layers, optimisers, losses).

The CERL paper builds on PyTorch; this subpackage provides the minimal
equivalent stack implemented from scratch so the reproduction has no deep
learning framework dependency.
"""

from .tensor import Tensor, no_grad, is_grad_enabled, concatenate, stack
from .infer import Workspace
from .module import Module, Parameter
from .layers import (
    Linear,
    CosineNormLinear,
    ReLU,
    ELU,
    Tanh,
    Sigmoid,
    Identity,
    Dropout,
    Sequential,
    MLP,
    make_activation,
)
from .optim import Optimizer, SGD, Adam, StepLR, CosineAnnealingLR, clip_grad_norm
from .tape import Tape, Trace, TraceError, TraceTensor, PredicateFlip
from .losses import (
    mse_loss,
    mae_loss,
    binary_cross_entropy,
    elastic_net_penalty,
    cosine_similarity,
    cosine_distance_loss,
)
from . import init

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "Workspace",
    "Module",
    "Parameter",
    "Linear",
    "CosineNormLinear",
    "ReLU",
    "ELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
    "make_activation",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "clip_grad_norm",
    "Tape",
    "Trace",
    "TraceError",
    "TraceTensor",
    "PredicateFlip",
    "mse_loss",
    "mae_loss",
    "binary_cross_entropy",
    "elastic_net_penalty",
    "cosine_similarity",
    "cosine_distance_loss",
    "init",
]
