"""Workspace buffers for the no-graph inference fast path.

The Tensor forward pass allocates a fresh array per operation even under
``no_grad``.  For evaluation — which runs the same shapes over and over (every
epoch's validation pass, every seen-test-set sweep of the Figure 3 protocol) —
those allocations dominate the wall time of the small models used in the
reproduction.  :class:`Workspace` gives each module a named set of scratch
arrays that are allocated once per shape and rewritten in place on every
:meth:`~repro.nn.module.Module.infer` call.

Contract: an array returned by ``Module.infer`` is backed by the module's
workspace and stays valid only until the next ``infer`` call on that module.
Callers that keep a result (memory extraction, returned predictions) must copy
it; the high-level ``predict``/``representations`` APIs in ``repro.core`` do.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["Workspace", "row_normalize_"]


class Workspace:
    """Named cache of preallocated scratch arrays, keyed by role.

    Each key (e.g. ``"out"``, ``"sq"``) maps to one array that is reallocated
    only when the requested shape changes (a new batch size), so steady-state
    inference performs zero array allocations.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}

    def get(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return the scratch array for ``key``, (re)allocating on shape change.

        The returned array holds stale values from the previous call; callers
        must fully overwrite it (every user writes with ``out=``).
        """
        buffer = self._arrays.get(key)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._arrays[key] = buffer
        return buffer

    def clear(self) -> None:
        """Drop all cached buffers (frees memory after large batches)."""
        self._arrays.clear()


def row_normalize_(workspace: Workspace, x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Divide each row of ``x`` by its Euclidean norm, in place.

    Evaluates exactly the expression of ``Tensor.norm(axis=1, keepdims=True)``
    followed by the division — ``x / sqrt((x * x).sum(axis=1) + eps)`` — so
    callers mirroring a Tensor-forward normalisation stay bitwise identical.
    ``eps`` defaults to the ``Tensor.norm`` default; this helper is the single
    copy of the kernel shared by the representation network and the feature
    transform.
    """
    squared = workspace.get("row_norm_sq", x.shape)
    np.multiply(x, x, out=squared)
    norm = workspace.get("row_norm", (x.shape[0], 1))
    np.sum(squared, axis=1, keepdims=True, out=norm)
    norm += eps
    np.sqrt(norm, out=norm)
    np.divide(x, norm, out=x)
    return x
