"""Optimisers and learning-rate schedules for the NumPy substrate.

CERL and the CFR baselines are trained with minibatch Adam; SGD with momentum
is provided as a simpler alternative for tests and ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineAnnealingLR"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm of ``parameters`` to ``max_norm``.

    Returns the norm prior to clipping so callers can log it.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if max_norm > 0.0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad = param.grad * scale
    return total


class Optimizer:
    """Base class for gradient-based optimisers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0.0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Reset the gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0.0:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay option."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Step learning-rate schedule: multiply by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        """Advance one epoch; decay the learning rate at the schedule boundary."""
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine annealing from the initial learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, eta_min: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> None:
        """Advance one step of the cosine schedule."""
        self._count = min(self._count + 1, self.total_steps)
        progress = self._count / self.total_steps
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * progress)
        )
