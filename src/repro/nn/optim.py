"""Optimisers and learning-rate schedules for the NumPy substrate.

CERL and the CFR baselines are trained with minibatch Adam; SGD with momentum
is provided as a simpler alternative for tests and ablations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "CosineAnnealingLR"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm of ``parameters`` to ``max_norm``.

    Returns the norm prior to clipping so callers can log it.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in params)))
    if max_norm > 0.0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad = param.grad * scale
    return total


class Optimizer:
    """Base class for gradient-based optimisers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0.0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Reset the gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        # State is keyed by *position* in ``self.parameters``, not ``id(param)``:
        # id-keyed dicts leak entries when a parameter list is rebuilt and can
        # silently adopt a dead parameter's state if CPython reuses its id.
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._scratch: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        lr = self.lr
        for slot, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            scratch = self._scratch[slot]
            if scratch is None or scratch.shape != param.data.shape:
                scratch = self._scratch[slot] = np.empty_like(param.data)
            if self.weight_decay > 0.0:
                np.multiply(param.data, self.weight_decay, out=scratch)
                np.add(grad, scratch, out=scratch)
                grad = scratch
            if self.momentum > 0.0:
                velocity = self._velocity[slot]
                if velocity is None or velocity.shape != param.data.shape:
                    velocity = self._velocity[slot] = np.zeros_like(param.data)
                np.multiply(velocity, self.momentum, out=velocity)
                np.add(velocity, grad, out=velocity)
                update = velocity
            else:
                update = grad
            np.multiply(update, lr, out=scratch)
            np.subtract(param.data, scratch, out=param.data)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with decoupled weight decay option."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        # Positional state (see SGD): index-aligned with ``self.parameters``.
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._s1: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._s2: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        lr = self.lr
        beta1, beta2 = self.beta1, self.beta2
        one_minus_b1 = 1.0 - beta1
        one_minus_b2 = 1.0 - beta2
        # Bias corrections depend only on the step count — hoisted out of the
        # per-parameter loop instead of recomputing beta**t for every tensor.
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for slot, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            m = self._m[slot]
            if m is None or m.shape != param.data.shape:
                m = self._m[slot] = np.zeros_like(param.data)
                self._v[slot] = np.zeros_like(param.data)
                self._s1[slot] = np.empty_like(param.data)
                self._s2[slot] = np.empty_like(param.data)
            v, s1, s2 = self._v[slot], self._s1[slot], self._s2[slot]
            # The out= sequences below reproduce the exact ufunc chain of the
            # original expression form (``m = b1*m + (1-b1)*grad`` etc.), so
            # the update trajectory stays bit-identical while the ~8 fresh
            # temporaries per parameter per step become two reused scratches.
            if self.weight_decay > 0.0:
                np.multiply(param.data, self.weight_decay, out=s1)
                np.add(grad, s1, out=s1)
                grad = s1
            np.multiply(m, beta1, out=m)
            np.multiply(grad, one_minus_b1, out=s2)
            np.add(m, s2, out=m)
            np.multiply(v, beta2, out=v)
            np.multiply(grad, grad, out=s2)
            np.multiply(s2, one_minus_b2, out=s2)
            np.add(v, s2, out=v)
            np.divide(m, bias1, out=s1)
            np.multiply(s1, lr, out=s1)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            np.add(s2, self.eps, out=s2)
            np.divide(s1, s2, out=s1)
            np.subtract(param.data, s1, out=param.data)


class StepLR:
    """Step learning-rate schedule: multiply by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        """Advance one epoch; decay the learning rate at the schedule boundary."""
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine annealing from the initial learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, eta_min: float = 0.0) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._count = 0

    def step(self) -> None:
        """Advance one step of the cosine schedule."""
        self._count = min(self._count + 1, self.total_steps)
        progress = self._count / self.total_steps
        self.optimizer.lr = self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + np.cos(np.pi * progress)
        )
