"""Tape-replay training backend: trace a loss once, replay it allocation-free.

The eager :class:`~repro.nn.tensor.Tensor` rebuilds its computation graph —
Python closures, parent tuples, freshly allocated arrays — on every minibatch,
and that bookkeeping dominates the wall time of the small CERL models.  This
module records *one* loss evaluation as a flat list of
:mod:`~repro.nn.tape_ops` kernels with preallocated forward/backward buffers
(the ``Module.infer`` Workspace idiom, applied to training), then replays
subsequent steps by running the kernels in place.

How a trace is captured
-----------------------
:class:`TraceTensor` is a :class:`Tensor` subclass; module ``forward`` methods
run on it unchanged because every primitive operator is overridden to record a
kernel instead of closing over a backward function.  Python's
subclass-reflected-operator rule makes mixed expressions work too: in
``Tensor * TraceTensor`` the subclass's ``__rmul__`` wins, so eager constants
and raw :class:`~repro.nn.module.Parameter` objects are lifted into the trace
as leaves at the point of use.

Per-step host work (RNG draws, memory gathers, ``flatnonzero`` index splits,
the Sinkhorn transport plan) is recorded as *host ops* at their position in
the op list, so replays consume shared ``numpy`` Generator streams in exactly
the eager draw order.  Branch predicates that were baked into the trace are
re-checked by guard ops each replay; on a flip the replay aborts, restores the
RNG state it consumed, and the caller falls back to an eager evaluation of
that step (see :class:`repro.engine.backend.TapeBackend`).

Gradient pass
-------------
``compile`` reuses ``Tensor._build_topo`` on the traced graph — the exact
eager ordering — and bakes the reversed walk into a list of bound ``backward``
kernels.  Buffers are zero-filled and every local gradient is added in eager
accumulation order; see :mod:`repro.nn.tape_ops` for the bit-identity
argument.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from . import tape_ops as ops
from .tape_ops import Buf, PredicateFlip, TraceError
from .tensor import Tensor

__all__ = [
    "TraceTensor",
    "Trace",
    "Tape",
    "TraceError",
    "PredicateFlip",
    "current_trace",
    "activate_trace",
]

_ACTIVE = threading.local()


def current_trace() -> Optional["Trace"]:
    """The trace currently recording on this thread, if any.

    Lets code that operates on raw :class:`~repro.nn.module.Parameter`
    objects (no traced operand to dispatch on, e.g. the elastic-net penalty)
    lift them into the active trace.
    """
    return getattr(_ACTIVE, "trace", None)


@contextmanager
def activate_trace(trace: "Trace"):
    """Mark ``trace`` as the recording trace for the duration of the block."""
    previous = getattr(_ACTIVE, "trace", None)
    _ACTIVE.trace = trace
    try:
        yield trace
    finally:
        _ACTIVE.trace = previous


class _ConstIndex:
    """Host-value wrapper for a trace-time-constant integer index."""

    __slots__ = ("value", "dynamic")

    def __init__(self, value: np.ndarray) -> None:
        self.value = value
        self.dynamic = False

    def get(self) -> np.ndarray:
        return self.value


class _NodeData:
    """Host-value view of a traced node's current forward buffer."""

    __slots__ = ("node", "dynamic")

    def __init__(self, node: "TraceTensor") -> None:
        self.node = node
        self.dynamic = node._dyn

    def get(self) -> np.ndarray:
        return self.node.data


class FeedHandle:
    """Host value bound to a named feed slot, re-read on every replay."""

    __slots__ = ("trace", "name", "dynamic")

    def __init__(self, trace: "Trace", name: str) -> None:
        self.trace = trace
        self.name = name
        self.dynamic = False

    def get(self) -> np.ndarray:
        return self.trace.arrays[self.name]


class TraceTensor(Tensor):
    """Tensor whose operations are recorded onto a :class:`Trace`.

    The node *is* the tensor: ``data`` is the preallocated forward buffer (or
    a view for dynamically-shaped nodes), ``grad`` the backward buffer
    allocated at compile time, ``_parents`` the gradient-relevant parents so
    ``Tensor._build_topo`` orders the traced graph exactly like the eager one.
    """

    __slots__ = ("_trace", "_op", "_dyn", "_buf", "_gbuf")

    def __init__(self, trace: "Trace", data: np.ndarray, requires_grad: bool,
                 parents: Sequence["TraceTensor"], dyn: bool, buf: Optional[Buf]) -> None:
        self.data = data
        self.requires_grad = requires_grad
        self.grad = None
        self._parents = tuple(parents) if requires_grad else ()
        self._backward = None
        self._topo = None
        self.name = ""
        self._trace = trace
        self._op = None
        self._dyn = dyn
        self._buf = buf
        self._gbuf = None

    # -- arithmetic ----------------------------------------------------- #
    def __add__(self, other):
        return self._trace.binary(ops.AddOp, self, other)

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return self._trace.binary(ops.SubOp, self, other)

    def __rsub__(self, other):
        return self._trace.binary(ops.SubOp, other, self)

    def __mul__(self, other):
        return self._trace.binary(ops.MulOp, self, other)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return self._trace.binary(ops.DivOp, self, other)

    def __rtruediv__(self, other):
        return self._trace.binary(ops.DivOp, other, self)

    def __neg__(self):
        return self._trace.unary(ops.NegOp, self)

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        return self._trace.unary(ops.PowOp, self, args=(exponent,))

    def __matmul__(self, other):
        return self._trace.matmul(self, other)

    def __rmatmul__(self, other):
        return self._trace.matmul(other, self)

    # -- shape ---------------------------------------------------------- #
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._trace.reshape(self, shape)

    def transpose(self):
        return self._trace.transpose(self)

    def __getitem__(self, index):
        return self._trace.get_rows(self, index)

    # -- reductions ----------------------------------------------------- #
    def sum(self, axis=None, keepdims=False):
        return self._trace.sum(self, axis, keepdims)

    def mean(self, axis=None, keepdims=False):
        if not self._dyn:
            # Static shape: the eager composite (sum * (1.0 / count)) traces
            # through the overridden primitives with a frozen count.
            return super().mean(axis=axis, keepdims=keepdims)
        node = self

        def inv_count() -> float:
            if axis is None:
                return 1.0 / node.data.size
            return 1.0 / node.data.shape[axis]

        scale = self._trace.host_scalar(inv_count)
        return self.sum(axis=axis, keepdims=keepdims) * scale

    def max(self, axis=None, keepdims=False):
        raise TraceError("Tensor.max is not traceable")

    def softmax(self, axis=-1):
        raise TraceError("Tensor.softmax is not traceable")

    def logsumexp(self, axis=-1, keepdims=False):
        raise TraceError("Tensor.logsumexp is not traceable")

    # -- element-wise --------------------------------------------------- #
    def exp(self):
        return self._trace.unary(ops.ExpOp, self)

    def log(self):
        return self._trace.unary(ops.LogOp, self)

    def sqrt(self):
        return self._trace.unary(ops.SqrtOp, self)

    def abs(self):
        return self._trace.unary(ops.AbsOp, self)

    def relu(self):
        return self._trace.unary(ops.ReluOp, self)

    def elu(self, alpha: float = 1.0):
        return self._trace.unary(ops.EluOp, self, args=(alpha,))

    def tanh(self):
        return self._trace.unary(ops.TanhOp, self)

    def sigmoid(self):
        return self._trace.unary(ops.SigmoidOp, self)

    def clip(self, low: float, high: float):
        return self._trace.unary(ops.ClipOp, self, args=(low, high))

    # -- graph escape hatches ------------------------------------------- #
    def detach(self) -> "TraceTensor":
        """A constant leaf tracking this node's forward value each replay."""
        return self._trace.refresh_leaf(_NodeData(self))

    def copy(self):
        raise TraceError("Tensor.copy is not traceable")

    def backward(self, grad=None, retain_graph=False):
        raise TraceError("backward on a TraceTensor; compile the trace instead")


def trace_concatenate(tensors, axis: int = 0) -> TraceTensor:
    """Trace-side implementation of :func:`repro.nn.tensor.concatenate`."""
    tensors = list(tensors)
    if axis != 0:
        raise TraceError("traced concatenate supports axis=0 only")
    trace = next(t._trace for t in tensors if isinstance(t, TraceTensor))
    return trace.concat(tensors)


class Trace:
    """Recorder collecting ops, leaves and host state for one loss program."""

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self.ops: List[ops.Op] = []
        self.arrays = arrays
        self.inputs: Dict[str, TraceTensor] = {}
        self.params: Dict[int, TraceTensor] = {}
        self.param_pairs: List[tuple] = []
        self.consts: Dict[int, TraceTensor] = {}
        self.rngs: List[np.random.Generator] = []
        self.has_guards = False

    # -- node helpers --------------------------------------------------- #
    def _record(self, op: ops.Op) -> None:
        self.ops.append(op)
        op.run()

    def _new(self, shape, parents, dyn: bool) -> TraceTensor:
        requires = any(p.requires_grad for p in parents)
        buf = Buf(shape)
        return TraceTensor(self, buf.view(shape), requires, parents, dyn, buf)

    def _new_view(self, parents, dyn: bool) -> TraceTensor:
        requires = any(p.requires_grad for p in parents)
        # ``data`` is bound by the op's first run().
        return TraceTensor(self, np.empty(0), requires, parents, dyn, None)

    def leaf(self, data, requires_grad: bool = False, dyn: bool = False) -> TraceTensor:
        return TraceTensor(
            self, np.asarray(data, dtype=np.float64), requires_grad, (), dyn, None
        )

    def lift(self, value) -> TraceTensor:
        """Bring an operand into the trace as a leaf (param, constant, scalar)."""
        if isinstance(value, TraceTensor):
            if value._trace is not self:
                raise TraceError("operand belongs to a different trace")
            return value
        if isinstance(value, Tensor):
            if value.requires_grad:
                if value._parents:
                    raise TraceError(
                        "an eager graph node leaked into a traced program; "
                        "loss programs must build values from env feeds and parameters"
                    )
                wrapper = self.params.get(id(value))
                if wrapper is None:
                    wrapper = TraceTensor(self, value.data, True, (), False, None)
                    self.params[id(value)] = wrapper
                    self.param_pairs.append((value, wrapper))
                return wrapper
            const = self.consts.get(id(value))
            if const is None:
                const = self.leaf(value.data)
                self.consts[id(value)] = const
            return const
        return self.leaf(value)

    # -- op builders ---------------------------------------------------- #
    def binary(self, kind, a, b) -> TraceTensor:
        a = self.lift(a)
        b = self.lift(b)
        shape = np.broadcast_shapes(a.data.shape, b.data.shape)
        out = self._new(shape, (a, b), a._dyn or b._dyn)
        out._op = kind(a, b, out)
        self._record(out._op)
        return out

    def matmul(self, a, b) -> TraceTensor:
        a = self.lift(a)
        b = self.lift(b)
        if a.data.ndim != 2 or b.data.ndim != 2:
            raise TraceError("traced matmul supports 2-D operands only")
        out = self._new((a.data.shape[0], b.data.shape[1]), (a, b), a._dyn or b._dyn)
        out._op = ops.MatMulOp(a, b, out)
        self._record(out._op)
        return out

    def unary(self, kind, a, args: tuple = ()) -> TraceTensor:
        out = self._new(a.data.shape, (a,), a._dyn)
        if args:
            out._op = kind(a, *args, out)
        else:
            out._op = kind(a, out)
        self._record(out._op)
        return out

    def reshape(self, a, target) -> TraceTensor:
        out = self._new_view((a,), a._dyn)
        out._op = ops.ReshapeOp(a, target, out)
        self._record(out._op)
        return out

    def transpose(self, a) -> TraceTensor:
        out = self._new_view((a,), a._dyn)
        out._op = ops.TransposeOp(a, out)
        self._record(out._op)
        return out

    def get_rows(self, a, index) -> TraceTensor:
        if isinstance(index, np.ndarray):
            index = _ConstIndex(index)
        elif not hasattr(index, "get"):
            raise TraceError(
                "traced __getitem__ supports 1-D integer row indices only"
            )
        idx = index.get()
        if idx.ndim != 1 or idx.dtype.kind not in "iu":
            raise TraceError("traced __getitem__ requires a 1-D integer index")
        out = self._new((idx.shape[0],) + a.data.shape[1:], (a,),
                        a._dyn or index.dynamic)
        out._op = ops.GetRowsOp(a, index, out)
        self._record(out._op)
        return out

    def sum(self, a, axis, keepdims) -> TraceTensor:
        if axis is None:
            shape = ()
            dyn = False
        else:
            dims = list(a.data.shape)
            if keepdims:
                dims[axis] = 1
            else:
                del dims[axis]
            shape = tuple(dims)
            dyn = a._dyn
        out = self._new(shape, (a,), dyn)
        out._op = ops.SumOp(a, axis, keepdims, out)
        self._record(out._op)
        return out

    def concat(self, tensors) -> TraceTensor:
        parents = [self.lift(t) for t in tensors]
        first = parents[0].data.shape
        shape = (sum(p.data.shape[0] for p in parents),) + first[1:]
        out = self._new(shape, parents, any(p._dyn for p in parents))
        out._op = ops.ConcatOp(parents, out)
        self._record(out._op)
        return out

    # -- host-side recording ------------------------------------------- #
    def dropout_mask(self, rng: np.random.Generator, p: float, shape) -> TraceTensor:
        node = self._new(shape, (), False)
        if rng not in self.rngs:
            self.rngs.append(rng)
        node._op = ops.DropoutMaskOp(rng, 1.0 - p, node)
        self._record(node._op)
        return node

    def host(self, fn: Callable[[], np.ndarray], dynamic: bool = False,
             rng: Optional[np.random.Generator] = None) -> ops.HostOp:
        """Record a host computation re-run every replay; returns its handle."""
        if rng is not None and rng not in self.rngs:
            self.rngs.append(rng)
        op = ops.HostOp(fn, dynamic=dynamic)
        self._record(op)
        return op

    def host_tensor(self, fn: Callable[[], np.ndarray], dynamic: bool = False) -> TraceTensor:
        """A constant tensor leaf recomputed on the host every replay."""
        node = TraceTensor(self, np.empty(0), False, (), dynamic, None)
        node._op = ops.HostTensorOp(fn, node)
        self._record(node._op)
        return node

    def host_scalar(self, fn: Callable[[], float]) -> TraceTensor:
        return self.host_tensor(lambda: np.asarray(fn(), dtype=np.float64))

    def refresh_leaf(self, source) -> TraceTensor:
        node = TraceTensor(self, np.empty(0), False, (), getattr(source, "dynamic", False), None)
        node._op = ops.LeafRefreshOp(source, node)
        self._record(node._op)
        return node

    def input_leaf(self, name: str) -> TraceTensor:
        node = self.inputs.get(name)
        if node is None:
            node = self.leaf(self.arrays[name])
            self.inputs[name] = node
        return node

    def feed(self, name: str) -> FeedHandle:
        return FeedHandle(self, name)

    def guard(self, fn: Callable[..., bool], handles) -> bool:
        value = bool(fn(*[h.get() for h in handles]))
        self.has_guards = True
        self._record(ops.GuardOp(fn, handles, value))
        return value


class Tape:
    """A compiled trace: flat forward program + baked backward walk."""

    def __init__(self, trace: Trace, total: TraceTensor, terms: List[tuple]) -> None:
        if not isinstance(total, TraceTensor):
            raise TraceError("traced loss did not produce a traced total")
        self.trace = trace
        self.total = total
        self.terms = terms
        self.forward_ops = trace.ops
        topo = total._build_topo()
        for node in topo:
            node._gbuf = Buf(node.data.shape)
            node.grad = node._gbuf.view(node.data.shape)
        self.grad_nodes = topo
        self.backward_ops = [n._op.backward for n in reversed(topo) if n._op is not None]
        self.param_pairs = trace.param_pairs

    # -- replay --------------------------------------------------------- #
    def run_forward(self, arrays: Dict[str, np.ndarray]) -> None:
        """Replay the forward program against this step's feed arrays.

        Raises :class:`PredicateFlip` (with all consumed RNG state restored)
        when a baked branch predicate no longer holds for this step.
        """
        trace = self.trace
        trace.arrays = arrays
        for name, node in trace.inputs.items():
            node.data = arrays[name]
        for param, wrapper in self.param_pairs:
            wrapper.data = param.data
        if trace.has_guards and trace.rngs:
            states = [(rng, rng.bit_generator.state) for rng in trace.rngs]
            try:
                for op in self.forward_ops:
                    op.run()
            except PredicateFlip:
                for rng, state in states:
                    rng.bit_generator.state = state
                raise
        else:
            for op in self.forward_ops:
                op.run()

    def run_backward(self) -> None:
        """Zero the gradient workspaces, seed the root, replay the walk."""
        for node in self.grad_nodes:
            node.grad.fill(0.0)
        self.total.grad.fill(1.0)
        for backward in self.backward_ops:
            backward()
        for param, wrapper in self.param_pairs:
            param.grad = wrapper.grad

    # -- introspection (tests, allocation spy) --------------------------- #
    def buffer_ids(self) -> tuple:
        """Identities of all flat workspaces; stable across replays."""
        idents = []
        for node in self.grad_nodes:
            if node._buf is not None:
                idents.append(id(node._buf.flat))
            if node._gbuf is not None:
                idents.append(id(node._gbuf.flat))
        return tuple(idents)
