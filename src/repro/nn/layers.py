"""Layers for the NumPy neural-network substrate.

Includes the standard dense layer plus the :class:`CosineNormLinear` layer
that implements the cosine normalisation of Eq. (2) in the CERL paper: the
pre-activation is the cosine similarity between the incoming weight vector and
the input vector, which bounds it to ``[-1, 1]`` and controls the variance of
the representation regardless of covariate magnitude differences between
domains and treatment arms.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "CosineNormLinear",
    "ReLU",
    "ELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
    "make_activation",
]


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    out_features:
        Output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        NumPy random generator used for weight initialisation; a default
        generator is created when omitted (useful for ad-hoc tests).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features), name="weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = self.workspace().get("out", (x.shape[0], self.out_features))
        np.matmul(x, self.weight.data, out=out)
        if self.use_bias:
            np.add(out, self.bias.data, out=out)
        return out


class CosineNormLinear(Module):
    """Cosine-normalised dense layer (Eq. 2 of the paper).

    Instead of the unbounded dot product ``w · x``, the pre-activation is
    ``cos(w, x) = (w · x) / (|w| |x|)``, computed per output unit.  The output
    is therefore bounded in ``[-1, 1]`` before the activation, which removes
    the dependence on covariate magnitudes that differ between treatment and
    control groups and between data domains.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        eps: float = 1e-8,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("CosineNormLinear dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.eps = eps
        self.weight = Parameter(init.xavier_normal(rng, in_features, out_features), name="weight")

    def forward(self, x: Tensor) -> Tensor:
        # Unlike the matmul layers, this forward *initiates* operations on the
        # raw weight Parameter (its column norms), so under a tape trace the
        # weight must be lifted explicitly rather than via operator dispatch.
        trace = getattr(x, "_trace", None)
        weight = self.weight if trace is None else trace.lift(self.weight)
        # Row norms of the input and column norms of the weights.
        x_norm = x.norm(axis=1, keepdims=True, eps=self.eps)
        w_norm = weight.norm(axis=0, keepdims=True, eps=self.eps)
        dot = x @ weight
        return dot / (x_norm @ w_norm)

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Mirrors forward() operation by operation so the two paths are
        # bitwise identical; every array below is a reused workspace buffer.
        ws = self.workspace()
        n = x.shape[0]
        weight = self.weight.data

        sq = ws.get("sq", x.shape)
        np.multiply(x, x, out=sq)
        x_norm = ws.get("x_norm", (n, 1))
        np.sum(sq, axis=1, keepdims=True, out=x_norm)
        x_norm += self.eps
        np.sqrt(x_norm, out=x_norm)

        wsq = ws.get("wsq", weight.shape)
        np.multiply(weight, weight, out=wsq)
        w_norm = ws.get("w_norm", (1, self.out_features))
        np.sum(wsq, axis=0, keepdims=True, out=w_norm)
        w_norm += self.eps
        np.sqrt(w_norm, out=w_norm)

        dot = ws.get("dot", (n, self.out_features))
        np.matmul(x, weight, out=dot)
        denom = ws.get("denom", (n, self.out_features))
        # Outer product as a broadcast multiply: each element is the single
        # multiplication x_norm[i] * w_norm[j], bitwise equal to the
        # (n, 1) @ (1, k) matmul of the Tensor path and cheaper to dispatch.
        np.multiply(x_norm, w_norm, out=denom)
        np.divide(dot, denom, out=dot)
        return dot


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = self.workspace().get("out", x.shape)
        return np.maximum(x, 0.0, out=out)


class ELU(Module):
    """Exponential linear unit activation."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)

    def infer(self, x: np.ndarray) -> np.ndarray:
        # Select-free ELU: max(x, 0) + alpha * (exp(min(x, 0)) - 1).
        # On the negative side min() is the identity, so the added term is
        # exactly the alpha * (exp(x) - 1) the Tensor path computes and the
        # max() contributes +0; on the positive side the term is exactly
        # alpha * (exp(0) - 1) = +0 and x + 0.0 == x.  Bitwise equal to the
        # np.where expression for every input (including ±inf, NaN, ±0 and
        # denormals — pinned by tests) while avoiding the masked-select pass,
        # which costs ~5x more than these fused element-wise ops.
        ws = self.workspace()
        negative = ws.get("negative", x.shape)
        np.minimum(x, 0.0, out=negative)
        np.exp(negative, out=negative)
        np.subtract(negative, 1.0, out=negative)
        if self.alpha != 1.0:
            # Multiplying by exactly 1.0 is a bitwise no-op; skip the pass.
            np.multiply(negative, self.alpha, out=negative)
        out = ws.get("out", x.shape)
        np.maximum(x, 0.0, out=out)
        np.add(out, negative, out=out)
        return out


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = self.workspace().get("out", x.shape)
        return np.tanh(x, out=out)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def infer(self, x: np.ndarray) -> np.ndarray:
        # 1 / (1 + exp(-x)), the exact expression of Tensor.sigmoid.
        out = self.workspace().get("out", x.shape)
        np.negative(x, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
        return out


class Identity(Module):
    """Pass-through module (used as a no-op activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        trace = getattr(x, "_trace", None)
        if trace is not None:
            # Record the draw as a host op so replays consume the shared
            # generator stream at exactly this position in the step.
            return x * trace.dropout_mask(self._rng, self.p, x.shape)
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)

    def infer(self, x: np.ndarray) -> np.ndarray:
        # ``infer`` always has eval semantics, even when the module was left
        # in training mode: a prediction path must neither inject masking
        # noise nor consume the RNG stream (which would silently perturb the
        # next training minibatch drawn from the same generator).
        return x


def make_activation(name: str) -> Module:
    """Build an activation module from its name (``relu``/``elu``/``tanh``/...)."""
    registry: dict[str, Callable[[], Module]] = {
        "relu": ReLU,
        "elu": ELU,
        "tanh": Tanh,
        "sigmoid": Sigmoid,
        "identity": Identity,
        "linear": Identity,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown activation '{name}'; valid: {sorted(registry)}")
    return registry[key]()


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, layer in enumerate(layers):
            self.register_module(f"layer{index}", layer)
            self._layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        """Append a layer to the end of the container."""
        self.register_module(f"layer{len(self._layers)}", layer)
        self._layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer.infer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    hidden_sizes:
        Sizes of the hidden layers, in order.
    out_features:
        Output dimensionality.
    activation:
        Name of the hidden activation (see :func:`make_activation`).
    output_activation:
        Name of the activation applied to the final layer output.
    cosine_output:
        If ``True`` the final layer is a :class:`CosineNormLinear` layer
        (used by the CERL representation network, Eq. 2).
    dropout:
        Dropout probability applied after each hidden activation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        activation: str = "elu",
        output_activation: str = "identity",
        cosine_output: bool = False,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        layers: List[Module] = []
        previous = in_features
        for width in hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(make_activation(activation))
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            previous = width
        if cosine_output:
            layers.append(CosineNormLinear(previous, out_features, rng=rng))
        else:
            layers.append(Linear(previous, out_features, rng=rng))
        layers.append(make_activation(output_activation))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return self.body.infer(x)
