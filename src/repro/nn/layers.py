"""Layers for the NumPy neural-network substrate.

Includes the standard dense layer plus the :class:`CosineNormLinear` layer
that implements the cosine normalisation of Eq. (2) in the CERL paper: the
pre-activation is the cosine similarity between the incoming weight vector and
the input vector, which bounds it to ``[-1, 1]`` and controls the variance of
the representation regardless of covariate magnitude differences between
domains and treatment arms.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = [
    "Linear",
    "CosineNormLinear",
    "ReLU",
    "ELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Dropout",
    "Sequential",
    "MLP",
    "make_activation",
]


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    out_features:
        Output dimensionality.
    bias:
        Whether to add a learnable bias.
    rng:
        NumPy random generator used for weight initialisation; a default
        generator is created when omitted (useful for ad-hoc tests).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features), name="weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out


class CosineNormLinear(Module):
    """Cosine-normalised dense layer (Eq. 2 of the paper).

    Instead of the unbounded dot product ``w · x``, the pre-activation is
    ``cos(w, x) = (w · x) / (|w| |x|)``, computed per output unit.  The output
    is therefore bounded in ``[-1, 1]`` before the activation, which removes
    the dependence on covariate magnitudes that differ between treatment and
    control groups and between data domains.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        eps: float = 1e-8,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("CosineNormLinear dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.eps = eps
        self.weight = Parameter(init.xavier_normal(rng, in_features, out_features), name="weight")

    def forward(self, x: Tensor) -> Tensor:
        # Row norms of the input and column norms of the weights.
        x_norm = x.norm(axis=1, keepdims=True, eps=self.eps)
        w_norm = self.weight.norm(axis=0, keepdims=True, eps=self.eps)
        dot = x @ self.weight
        return dot / (x_norm @ w_norm)


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ELU(Module):
    """Exponential linear unit activation."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    """Pass-through module (used as a no-op activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


def make_activation(name: str) -> Module:
    """Build an activation module from its name (``relu``/``elu``/``tanh``/...)."""
    registry: dict[str, Callable[[], Module]] = {
        "relu": ReLU,
        "elu": ELU,
        "tanh": Tanh,
        "sigmoid": Sigmoid,
        "identity": Identity,
        "linear": Identity,
    }
    key = name.lower()
    if key not in registry:
        raise ValueError(f"unknown activation '{name}'; valid: {sorted(registry)}")
    return registry[key]()


class Sequential(Module):
    """Container applying child modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, layer in enumerate(layers):
            self.register_module(f"layer{index}", layer)
            self._layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        """Append a layer to the end of the container."""
        self.register_module(f"layer{len(self._layers)}", layer)
        self._layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with configurable hidden sizes and activation.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    hidden_sizes:
        Sizes of the hidden layers, in order.
    out_features:
        Output dimensionality.
    activation:
        Name of the hidden activation (see :func:`make_activation`).
    output_activation:
        Name of the activation applied to the final layer output.
    cosine_output:
        If ``True`` the final layer is a :class:`CosineNormLinear` layer
        (used by the CERL representation network, Eq. 2).
    dropout:
        Dropout probability applied after each hidden activation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        activation: str = "elu",
        output_activation: str = "identity",
        cosine_output: bool = False,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        layers: List[Module] = []
        previous = in_features
        for width in hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(make_activation(activation))
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            previous = width
        if cosine_output:
            layers.append(CosineNormLinear(previous, out_features, rng=rng))
        else:
            layers.append(Linear(previous, out_features, rng=rng))
        layers.append(make_activation(output_activation))
        self.body = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)
