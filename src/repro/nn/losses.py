"""Loss functions and regularisers used by the CERL objectives.

The paper's objectives combine:

* factual-outcome mean squared error (Eq. 4 and Eq. 8),
* elastic-net regularisation of the first representation layer (Eq. 1),
* cosine-distance feature-representation distillation (Eq. 6),
* cosine-distance feature-transformation alignment (Eq. 7),
* an integral probability metric between treated and control representation
  distributions (Eq. 3) — implemented in :mod:`repro.balance`.
"""

from __future__ import annotations

from typing import Iterable

from .module import Parameter
from .tape import current_trace
from .tensor import Tensor

__all__ = [
    "mse_loss",
    "mae_loss",
    "binary_cross_entropy",
    "elastic_net_penalty",
    "cosine_similarity",
    "cosine_distance_loss",
]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between predictions and targets."""
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error between predictions and targets."""
    return (prediction - target).abs().mean()


def binary_cross_entropy(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on probabilities in ``(0, 1)``.

    Used by the optional propensity head and by tests of the substrate; the
    predictions are clipped away from {0, 1} for numerical stability.
    """
    clipped = prediction.clip(eps, 1.0 - eps)
    loss = -(target * clipped.log() + (1.0 - target) * (1.0 - clipped).log())
    return loss.mean()


def elastic_net_penalty(parameters: Iterable[Parameter | Tensor], l1_ratio: float = 0.5) -> Tensor:
    """Elastic-net penalty over the given parameters (Eq. 1).

    The paper applies ``||w||_2^2 + ||w||_1`` to the representation layers so
    that irrelevant covariates receive small weights (deep feature selection).
    ``l1_ratio`` interpolates between pure ridge (0) and pure lasso (1); the
    paper's formulation corresponds to equal weighting, i.e. ``l1_ratio=0.5``
    with an overall scale of 2, which only rescales the hyper-parameter λ.
    """
    if not 0.0 <= l1_ratio <= 1.0:
        raise ValueError("l1_ratio must lie in [0, 1]")
    params = list(parameters)
    if not params:
        raise ValueError("elastic_net_penalty received no parameters")
    trace = current_trace()
    if trace is not None:
        # The penalty initiates ops on raw Parameters, so there is no traced
        # operand to dispatch on; lift them into the recording trace instead.
        params = [trace.lift(param) for param in params]
    total: Tensor | None = None
    for param in params:
        l2 = (param * param).sum()
        l1 = param.abs().sum()
        term = (1.0 - l1_ratio) * l2 + l1_ratio * l1
        total = term if total is None else total + term
    assert total is not None
    return total


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity between two ``(n, d)`` tensors."""
    dot = (a * b).sum(axis=1)
    norms = a.norm(axis=1, eps=eps) * b.norm(axis=1, eps=eps)
    return dot / norms


def cosine_distance_loss(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Mean cosine distance ``1 - cos(a_i, b_i)`` over rows (Eq. 6 and Eq. 7).

    Because representations are cosine-normalised, this equals half of the
    squared Euclidean distance between unit-norm vectors, which is the
    justification the paper gives for the distillation loss form.
    """
    return (1.0 - cosine_similarity(a, b, eps=eps)).mean()
