"""Module/parameter abstractions for the NumPy neural-network substrate.

:class:`Module` mirrors the familiar ``torch.nn.Module`` contract at the scale
needed by the CERL reproduction: parameter registration and traversal, state
(de)serialisation for checkpointing encoders between domains, train/eval mode
flags, and parameter freezing (needed when the old encoder ``g_{w_{d-1}}`` is
held fixed while the new encoder and the transformation ``phi`` are trained).
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .infer import Workspace
from .tensor import Tensor, no_grad

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable model parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation, state
    serialisation and freezing.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs for this module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of the module tree as a flat list."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Return the total number of scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    # ------------------------------------------------------------------ #
    # gradient and mode management
    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        """Reset gradients of every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. dropout layers)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def freeze(self) -> "Module":
        """Disable gradient accumulation for every parameter in the tree."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradient accumulation for every parameter in the tree."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------ #
    # state (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output.

        Raises
        ------
        KeyError
            If ``state`` is missing a parameter of this module.
        ValueError
            If an array shape does not match the corresponding parameter.
        """
        own = dict(self.named_parameters())
        for name, param in own.items():
            if name not in state:
                raise KeyError(f"state_dict is missing parameter '{name}'")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    def clone(self) -> "Module":
        """Return a deep copy of the module with independent parameters."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # inference fast path
    # ------------------------------------------------------------------ #
    def workspace(self) -> Workspace:
        """Scratch-buffer workspace backing this module's :meth:`infer` path."""
        ws = self.__dict__.get("_infer_workspace")
        if ws is None:
            ws = Workspace()
            object.__setattr__(self, "_infer_workspace", ws)
        return ws

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Graph-free forward pass on a raw ndarray, with eval semantics.

        Layers with a hand-written kernel override this to compute into
        preallocated workspace buffers (zero allocation at steady state); this
        base implementation is the generic fallback that routes through the
        Tensor forward under ``no_grad``, so every single-input module supports
        ``infer`` and the two paths produce bitwise-identical numbers.

        ``infer`` is a *prediction* path: it always runs with evaluation
        semantics, even on a module left in training mode (stochastic layers
        like dropout stay inactive and no RNG state is consumed), matching
        the Tensor forward of the module in eval mode.  The returned array
        may be a workspace buffer that is overwritten by the next ``infer``
        call on this module — copy it to keep it.
        """
        # Temporarily drop to eval mode so stochastic layers inside the
        # fallback forward stay inactive; restore the exact per-module flags
        # afterwards (children may intentionally be in mixed modes).
        was_training = [m for m in self.modules() if m.training]
        for module in was_training:
            module.training = False
        try:
            with no_grad():
                out = self.forward(Tensor(x))
        finally:
            for module in was_training:
                module.training = True
        return out.data
