"""Weight-initialisation schemes for the NumPy neural-network substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_normal", "zeros", "normal"]


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a ``(fan_in, fan_out)`` matrix."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU-family activations."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def normal(rng: np.random.Generator, shape: tuple, std: float = 0.01) -> np.ndarray:
    """Plain Gaussian initialisation with configurable standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    """All-zeros initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
