"""CERL: Continual Causal Effect Representation Learning (Sec. III).

The :class:`CERL` learner estimates treatment effects from observational data
that arrive sequentially from non-stationary domains, without keeping raw data
from previous domains.  Per Algorithm 1 of the paper:

* the **first** domain is handled by the baseline selective & balanced
  representation learner (Eq. 5); after training, a herded, budget-limited
  memory of feature representations (plus outcomes and treatments) is stored;
* every **subsequent** domain trains a new encoder ``g_{w_d}``, outcome heads
  ``h_{theta_d}`` and a feature transformation ``phi_{d-1->d}`` with the
  objective of Eq. (9):

  ``L = L_G + alpha * Wass(P, Q) + lambda * L_w + beta * L_FD + delta * L_FT``

  where ``L_G`` is the factual loss over transformed memory and new data
  (Eq. 8), ``L_FD`` the feature-representation distillation loss (Eq. 6) and
  ``L_FT`` the transformation alignment loss (Eq. 7).  The memory is then
  replaced by the herded union of the transformed old memory and the new
  representations.

Both stages run on the shared training engine (``repro.engine``): the Eq. (9)
terms are composed as a :class:`repro.engine.LossBundle` inside a batch-loss
closure, and :class:`repro.engine.Trainer` drives the epoch/minibatch loop
with :class:`~repro.engine.History` and :class:`~repro.engine.EarlyStopping`
callbacks.  There is no hand-rolled training loop in this module.

Ablation switches reproduce the paper's Table II variants: ``w/o FRT``
(``use_feature_transformation=False``), ``w/o herding``
(``memory_strategy="random"``) and ``w/o cosine norm``
(``use_cosine_norm=False`` in the model config).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..balance import ipm_distance
from ..data.dataset import CausalDataset
from ..engine import (
    EarlyStopping,
    History,
    LossBundle,
    TraceableLoss,
    Trainer,
    TrainingHistory,
    mse_validator,
)
from ..memory import MemoryBuffer
from ..metrics import EffectEstimate, evaluate_effect_estimate
from ..nn import Adam, Tensor, concatenate, cosine_distance_loss, mse_loss
from ..utils import Standardizer
from .baseline import BaselineCausalModel, make_lr_scheduler
from .config import ContinualConfig, ModelConfig
from .evaluation import evaluate_datasets
from .outcome import OutcomeHeads
from .representation import RepresentationNetwork
from .transform import FeatureTransform

__all__ = ["CERL"]


class CERL:
    """Continual causal-effect learner over incrementally available domains.

    Parameters
    ----------
    n_features:
        Covariate dimensionality (shared across domains).
    model_config:
        Hyper-parameters of the representation/outcome networks (Eq. 5 / 9).
    continual_config:
        Continual-learning hyper-parameters: distillation and transformation
        weights, memory budget and selection strategy, warm starting.
    """

    name = "CERL"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_features = n_features
        self.model_config = model_config if model_config is not None else ModelConfig()
        self.continual_config = (
            continual_config if continual_config is not None else ContinualConfig()
        )
        self._rng = np.random.default_rng(self.model_config.seed)
        self.encoder: Optional[RepresentationNetwork] = None
        self.heads: Optional[OutcomeHeads] = None
        self.memory: Optional[MemoryBuffer] = None
        self.outcome_scaler = Standardizer()
        self.domains_seen = 0
        self.histories: List[TrainingHistory] = []

    # ------------------------------------------------------------------ #
    # public protocol
    # ------------------------------------------------------------------ #
    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Train on the next available domain (Algorithm 1 dispatch)."""
        if self.domains_seen == 0:
            return self.fit_first(dataset, epochs=epochs, val_dataset=val_dataset)
        return self.fit_next(dataset, epochs=epochs, val_dataset=val_dataset)

    def fit_first(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Train the baseline model on the first domain and build the memory."""
        if self.domains_seen != 0:
            raise RuntimeError("fit_first can only be called on the first domain")
        baseline = BaselineCausalModel(self.n_features, self.model_config)
        history = baseline.fit(dataset, epochs=epochs, val_dataset=val_dataset)

        self.encoder = baseline.encoder
        self.heads = baseline.heads
        self.outcome_scaler = baseline.outcome_scaler
        representations = baseline.extract_representations(dataset.covariates)
        memory = MemoryBuffer(representations, dataset.outcomes, dataset.treatments)
        self.memory = memory.reduce(
            self.continual_config.memory_budget,
            strategy=self.continual_config.memory_strategy,
            rng=self._rng,
        )
        self.domains_seen = 1
        self.histories.append(history)
        return history

    def fit_next(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Train the continual model on the next domain (Eq. 9)."""
        if self.domains_seen == 0:
            raise RuntimeError("fit_next called before fit_first")
        self._validate_dataset(dataset)
        model_cfg = self.model_config
        cont_cfg = self.continual_config
        epochs = epochs if epochs is not None else model_cfg.epochs

        old_encoder = self.encoder
        assert old_encoder is not None and self.heads is not None

        new_encoder = self._build_new_encoder(dataset)
        new_heads = self._build_new_heads()
        transform = FeatureTransform(
            representation_dim=model_cfg.representation_dim,
            hidden_sizes=cont_cfg.transform_hidden,
            activation=model_cfg.activation,
            normalize_output=model_cfg.use_cosine_norm,
            rng=self._rng,
        )

        history = self._train_continual(
            dataset, old_encoder, new_encoder, new_heads, transform, epochs, val_dataset
        )

        # Memory update: M_d = herding({R_d, Y_d, T_d} ∪ phi(M_{d-1})).
        new_representations = new_encoder.representations(dataset.covariates)
        new_memory = MemoryBuffer(new_representations, dataset.outcomes, dataset.treatments)
        if cont_cfg.use_feature_transformation and self.memory is not None and len(self.memory):
            transformed_old = self.memory.with_representations(
                transform.transform_array(self.memory.representations)
            )
            new_memory = new_memory.merge(transformed_old)
        self.memory = new_memory.reduce(
            cont_cfg.memory_budget, strategy=cont_cfg.memory_strategy, rng=self._rng
        )

        self.encoder = new_encoder
        self.heads = new_heads
        self.domains_seen += 1
        self.histories.append(history)
        return history

    # ------------------------------------------------------------------ #
    # continual-stage internals
    # ------------------------------------------------------------------ #
    def _build_new_encoder(self, dataset: CausalDataset) -> RepresentationNetwork:
        model_cfg = self.model_config
        new_encoder = RepresentationNetwork(
            in_features=self.n_features,
            representation_dim=model_cfg.representation_dim,
            hidden_sizes=model_cfg.encoder_hidden,
            activation=model_cfg.activation,
            use_cosine_norm=model_cfg.use_cosine_norm,
            standardize=model_cfg.standardize_covariates,
            l1_ratio=model_cfg.elastic_net_l1_ratio,
            rng=self._rng,
        )
        if self.continual_config.warm_start_encoder and self.encoder is not None:
            new_encoder.load_state_dict(self.encoder.state_dict())
        new_encoder.fit_scaler(dataset.covariates)
        return new_encoder

    def _build_new_heads(self) -> OutcomeHeads:
        model_cfg = self.model_config
        new_heads = OutcomeHeads(
            representation_dim=model_cfg.representation_dim,
            hidden_sizes=model_cfg.outcome_hidden,
            activation=model_cfg.activation,
            rng=self._rng,
        )
        if self.continual_config.warm_start_encoder and self.heads is not None:
            new_heads.load_state_dict(self.heads.state_dict())
        return new_heads

    def _continual_program(
        self,
        env,
        new_encoder: RepresentationNetwork,
        new_heads: OutcomeHeads,
        transform: FeatureTransform,
        memory_arrays: Optional[tuple],
    ) -> LossBundle:
        """Compose the Eq. (9) objective for one minibatch as a LossBundle.

        Written once against the backend env protocol: under
        :class:`~repro.engine.EagerEnv` every call evaluates immediately with
        the pre-backend expressions; under :class:`~repro.engine.TraceEnv`
        the host work (rehearsal draw, index gathers, group splits) is
        recorded alongside the Tensor graph and replayed per step.  The
        detached old-encoder representations arrive as a feed computed by the
        RNG-free feeds function, so the only per-step random draw is the
        rehearsal ``rng_choice`` — recorded in draw order.
        """
        model_cfg = self.model_config
        cont_cfg = self.continual_config

        new_batch_y = env.tensor("outcomes")
        representations_new = new_encoder.forward(env.tensor("new_inputs"))
        representations_old = env.tensor("old_representations")

        # Factual loss on new data (second term of Eq. 8).
        predictions_new = new_heads.factual_masked(
            representations_new, env.tensor("treatment_mask")
        )
        factual = mse_loss(predictions_new, new_batch_y)

        # Feature-representation distillation (Eq. 6).
        if cont_cfg.use_distillation and cont_cfg.beta > 0.0:
            distill = cosine_distance_loss(representations_old, representations_new)
        else:
            distill = Tensor(0.0)

        ipm_reps = representations_new
        ipm_treatments = env.array("treatments")

        transform_loss = Tensor(0.0)
        if memory_arrays is not None:
            memory_reps, memory_outcomes, memory_treatments = memory_arrays

            # Transformation alignment (Eq. 7): phi(g_old(x)) ≈ g_new(x).
            transformed_new = transform.forward(representations_old)
            target_new = env.detach(representations_new)
            transform_loss = cosine_distance_loss(transformed_new, target_new)

            # Factual loss on the transformed memory (first term of Eq. 8).
            memory_idx = env.rng_choice(
                self._rng,
                len(memory_reps),
                size=min(cont_cfg.rehearsal_batch_size, len(memory_reps)),
            )
            memory_batch = transform.forward(env.lift(env.take(memory_reps, memory_idx)))
            predictions_memory = new_heads.factual_masked(
                memory_batch, env.lift(env.mask(env.take(memory_treatments, memory_idx)))
            )
            factual = factual + mse_loss(
                predictions_memory, env.lift(env.take(memory_outcomes, memory_idx))
            )

            # Global balancing over transformed-old ∪ new representations.
            ipm_reps = concatenate([memory_batch, representations_new], axis=0)
            ipm_treatments = env.hconcat(
                env.take(memory_treatments, memory_idx), ipm_treatments
            )

        treated_idx = env.flatnonzero_eq(ipm_treatments, 1)
        control_idx = env.flatnonzero_eq(ipm_treatments, 0)
        if model_cfg.alpha > 0.0 and env.guard(
            lambda t, c: t.size > 1 and c.size > 1, treated_idx, control_idx
        ):
            imbalance = ipm_distance(
                env.take_rows(ipm_reps, treated_idx),
                env.take_rows(ipm_reps, control_idx),
                kind=model_cfg.ipm_kind,
                epsilon=model_cfg.sinkhorn_epsilon,
                num_iters=model_cfg.sinkhorn_iterations,
            )
        else:
            imbalance = Tensor(0.0)

        bundle = LossBundle()
        bundle.add("factual", factual)
        bundle.add("ipm", imbalance, weight=model_cfg.alpha)
        bundle.add("regularization", new_encoder.elastic_net(), weight=model_cfg.lambda_reg)
        bundle.add("distillation", distill, weight=cont_cfg.beta)
        bundle.add("transformation", transform_loss, weight=cont_cfg.delta)
        return bundle

    def _train_continual(
        self,
        dataset: CausalDataset,
        old_encoder: RepresentationNetwork,
        new_encoder: RepresentationNetwork,
        new_heads: OutcomeHeads,
        transform: FeatureTransform,
        epochs: int,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Assemble the Eq. (9) objective and hand the loop to the engine."""
        model_cfg = self.model_config
        cont_cfg = self.continual_config

        new_inputs = new_encoder.prepare_inputs(dataset.covariates)
        old_inputs = old_encoder.prepare_inputs(dataset.covariates)
        outcomes = self._scale_outcomes(dataset.outcomes)
        treatments = dataset.treatments

        memory_arrays = None
        if (
            cont_cfg.use_feature_transformation
            and self.memory is not None
            and len(self.memory) > 0
        ):
            memory_arrays = (
                self.memory.representations,
                self._scale_outcomes(self.memory.outcomes),
                self.memory.treatments,
            )

        parameters = new_encoder.parameters() + new_heads.parameters() + transform.parameters()
        optimizer = Adam(
            parameters, lr=model_cfg.learning_rate, weight_decay=model_cfg.weight_decay
        )
        old_encoder.eval()
        old_encoder.freeze()

        history = TrainingHistory()
        callbacks = [History(history)]
        validate = None
        if val_dataset is not None:
            callbacks.append(
                EarlyStopping(
                    [new_encoder, new_heads, transform],
                    patience=model_cfg.early_stopping_patience,
                    min_delta=model_cfg.early_stopping_min_delta,
                )
            )
            val_inputs = new_encoder.prepare_inputs(val_dataset.covariates)
            val_outcomes = self._scale_outcomes(val_dataset.outcomes)
            val_treatments = val_dataset.treatments

            # Per-epoch validation runs on the inference fast path: no
            # Tensor wrappers, no graph bookkeeping, reused workspaces.
            validate = mse_validator(
                lambda: new_heads.infer_factual(
                    new_encoder.infer(val_inputs), val_treatments
                ),
                val_outcomes,
            )

        def feeds(batch: np.ndarray) -> dict:
            # RNG-free per-step host work: minibatch slices plus the detached
            # old-encoder representations on the inference fast path (bitwise
            # identical to the Tensor forward under no_grad, pinned by tests).
            batch_treatments = treatments[batch]
            return {
                "new_inputs": new_inputs[batch],
                "outcomes": outcomes[batch],
                "treatments": batch_treatments,
                "treatment_mask": np.asarray(batch_treatments)
                .ravel()
                .astype(np.float64),
                "old_representations": old_encoder.infer(old_inputs[batch]).copy(),
            }

        batch_loss = TraceableLoss(
            lambda env: self._continual_program(
                env, new_encoder, new_heads, transform, memory_arrays
            ),
            feeds,
            parameters=lambda: parameters,
        )

        trainer = Trainer(
            parameters,
            optimizer,
            batch_size=model_cfg.batch_size,
            grad_clip=model_cfg.grad_clip,
            rng=self._rng,
            scheduler=make_lr_scheduler(model_cfg, optimizer, epochs),
            callbacks=callbacks,
            backend=model_cfg.backend,
        )
        trainer.fit(len(dataset), batch_loss, epochs=epochs, validate=validate)
        old_encoder.unfreeze()
        return history

    # ------------------------------------------------------------------ #
    # inference & evaluation
    # ------------------------------------------------------------------ #
    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict both potential outcomes for raw covariates using the current model.

        Runs on the no-graph inference fast path (raw ndarrays, reusable
        workspaces), bitwise identical to the Tensor forward under ``no_grad``.
        """
        self._check_fitted()
        representations = self.encoder.infer_representations(covariates)
        y0, y1 = self.heads.infer_potential_outcomes(representations)
        return EffectEstimate(
            y0_hat=self._unscale_outcomes(y0), y1_hat=self._unscale_outcomes(y1)
        )

    def predict_ite(self, covariates: np.ndarray) -> np.ndarray:
        """Canonical ITE point estimate (``predict(x).ite_hat``)."""
        return self.predict(covariates).ite_hat

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate the current model on one dataset with known counterfactuals."""
        self._check_fitted()
        if not dataset.has_counterfactuals:
            raise ValueError("evaluation requires a dataset with true potential outcomes")
        estimate = self.predict(dataset.covariates)
        return evaluate_effect_estimate(
            estimate,
            dataset.true_ite,
            treatments=dataset.treatments,
            factual_outcomes=dataset.outcomes,
        )

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate several datasets with one batched forward pass.

        One concatenated forward (a single GEMM per layer) replaces the
        per-dataset passes; the metrics are split back per dataset and are
        numerically identical to calling :meth:`evaluate` on each.
        """
        self._check_fitted()
        return evaluate_datasets(self.predict, datasets)

    def evaluate_stream(self, test_sets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate the current model on each of the given test sets."""
        return self.evaluate_many(test_sets)

    @property
    def memory_size(self) -> int:
        """Number of stored feature representations."""
        return 0 if self.memory is None else len(self.memory)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _scale_outcomes(self, outcomes: np.ndarray) -> np.ndarray:
        if self.model_config.standardize_outcomes:
            return self.outcome_scaler.transform(outcomes)
        return np.asarray(outcomes, dtype=np.float64)

    def _unscale_outcomes(self, outcomes: np.ndarray) -> np.ndarray:
        if self.model_config.standardize_outcomes:
            return self.outcome_scaler.inverse_transform(outcomes)
        return outcomes

    def _validate_dataset(self, dataset: CausalDataset) -> None:
        if dataset.n_features != self.n_features:
            raise ValueError(
                f"dataset has {dataset.n_features} covariates, model expects {self.n_features}"
            )
        if dataset.n_treated == 0 or dataset.n_control == 0:
            raise ValueError("training data must contain both treated and control units")

    def _check_fitted(self) -> None:
        if self.domains_seen == 0 or self.encoder is None or self.heads is None:
            raise RuntimeError("CERL used before observing any domain")
