"""Configuration objects for the baseline and continual causal-effect models."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal, Tuple

__all__ = ["ModelConfig", "ContinualConfig"]

IPMKind = Literal["wasserstein", "mmd_linear", "mmd_rbf"]
MemoryStrategy = Literal["herding", "random"]
LRSchedule = Literal["constant", "step", "cosine"]
Backend = Literal["eager", "tape"]


@dataclass
class ModelConfig:
    """Hyper-parameters of the selective & balanced representation learner.

    The names mirror the paper's objective (Eq. 5): ``alpha`` weights the IPM
    term, ``lambda_reg`` the elastic-net term.  When a validation dataset is
    passed to ``fit``/``observe``, training stops early once the validation
    factual loss has not improved by ``early_stopping_min_delta`` for
    ``early_stopping_patience`` epochs, and the best parameters are restored;
    ``early_stopping_patience=0`` disables early stopping entirely.

    ``lr_schedule`` selects the per-epoch learning-rate schedule advanced by
    the training engine: ``"constant"`` (default), ``"step"`` (decay by
    ``lr_gamma`` every ``lr_step_size`` epochs) or ``"cosine"`` (anneal to 0
    over the epoch budget).

    ``backend`` selects the training execution backend: ``"eager"`` (default)
    evaluates the objective graph step by step, ``"tape"`` traces it once per
    batch shape and replays the recorded kernels allocation-free — same
    gradients and trajectories to the last bit, substantially faster epochs.
    """

    representation_dim: int = 32
    encoder_hidden: Tuple[int, ...] = (64,)
    outcome_hidden: Tuple[int, ...] = (32,)
    activation: str = "elu"
    use_cosine_norm: bool = True
    alpha: float = 1.0
    lambda_reg: float = 1e-4
    elastic_net_l1_ratio: float = 0.5
    ipm_kind: IPMKind = "wasserstein"
    sinkhorn_epsilon: float = 0.1
    sinkhorn_iterations: int = 20
    learning_rate: float = 1e-2
    weight_decay: float = 1e-3
    batch_size: int = 128
    epochs: int = 60
    grad_clip: float = 5.0
    early_stopping_patience: int = 10
    early_stopping_min_delta: float = 1e-4
    lr_schedule: LRSchedule = "constant"
    lr_step_size: int = 20
    lr_gamma: float = 0.5
    backend: Backend = "eager"
    standardize_covariates: bool = True
    standardize_outcomes: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.representation_dim <= 0:
            raise ValueError("representation_dim must be positive")
        if self.alpha < 0 or self.lambda_reg < 0:
            raise ValueError("alpha and lambda_reg must be non-negative")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.early_stopping_patience < 0:
            raise ValueError(
                "early_stopping_patience must be non-negative (0 disables early stopping)"
            )
        if self.lr_schedule not in ("constant", "step", "cosine"):
            raise ValueError(f"unknown lr_schedule '{self.lr_schedule}'")
        if self.backend not in ("eager", "tape"):
            raise ValueError(f"unknown training backend '{self.backend}'")
        if self.lr_step_size <= 0:
            raise ValueError("lr_step_size must be positive")
        if self.lr_gamma <= 0:
            raise ValueError("lr_gamma must be positive")
        self.encoder_hidden = tuple(self.encoder_hidden)
        self.outcome_hidden = tuple(self.outcome_hidden)

    def with_updates(self, **kwargs) -> "ModelConfig":
        """Return a copy of the config with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass
class ContinualConfig:
    """Hyper-parameters specific to the continual stages of CERL (Eq. 9).

    ``beta`` weights the feature-representation distillation loss (Eq. 6,
    set to 1 in the paper), ``delta`` the feature-transformation loss (Eq. 7).
    ``memory_budget`` is the maximum number of stored feature representations
    (denoted M in the paper's experiments).
    """

    beta: float = 1.0
    delta: float = 1.0
    memory_budget: int = 500
    memory_strategy: MemoryStrategy = "herding"
    transform_hidden: Tuple[int, ...] = (64,)
    use_feature_transformation: bool = True
    use_distillation: bool = True
    warm_start_encoder: bool = True
    rehearsal_batch_size: int = 64

    def __post_init__(self) -> None:
        if self.beta < 0 or self.delta < 0:
            raise ValueError("beta and delta must be non-negative")
        if self.memory_budget <= 0:
            raise ValueError("memory_budget must be positive")
        if self.rehearsal_batch_size <= 0:
            raise ValueError("rehearsal_batch_size must be positive")
        self.transform_hidden = tuple(self.transform_hidden)

    def with_updates(self, **kwargs) -> "ContinualConfig":
        """Return a copy of the config with selected fields replaced."""
        return replace(self, **kwargs)
