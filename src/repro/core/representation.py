"""Selective & balanced representation network ``g_w : X -> R`` (Sec. III-A.1).

The encoder is an MLP whose final layer is cosine-normalised (Eq. 2) so the
representation magnitude is independent of covariate magnitudes, and whose
dense weights receive an elastic-net penalty (Eq. 1) that performs deep
feature selection by shrinking weights of irrelevant covariates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import MLP, Module, Tensor, elastic_net_penalty, no_grad
from ..nn.infer import row_normalize_
from ..utils import Standardizer

__all__ = ["RepresentationNetwork"]


class RepresentationNetwork(Module):
    """Encoder mapping covariates to the balanced representation space.

    Parameters
    ----------
    in_features:
        Covariate dimensionality.
    representation_dim:
        Dimensionality of the representation space ``R``.
    hidden_sizes:
        Hidden layer widths of the encoder MLP.
    use_cosine_norm:
        Whether the final layer applies cosine normalisation (Eq. 2) and the
        representation rows are L2-normalised.  The normalisation makes the
        cosine-distance distillation/transformation losses (Eq. 6/7) equal to
        half the squared Euclidean distance, which is the identity the paper
        relies on.  The "w/o cosine norm" ablation sets this to ``False``.
    standardize:
        Whether covariates are standardised with statistics fitted on the
        domain the encoder is trained on.
    """

    def __init__(
        self,
        in_features: int,
        representation_dim: int,
        hidden_sizes: Sequence[int] = (64,),
        activation: str = "elu",
        use_cosine_norm: bool = True,
        standardize: bool = True,
        l1_ratio: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.representation_dim = representation_dim
        self.use_cosine_norm = use_cosine_norm
        self.l1_ratio = l1_ratio
        self._standardize = standardize
        self.scaler = Standardizer()
        self.network = MLP(
            in_features=in_features,
            hidden_sizes=hidden_sizes,
            out_features=representation_dim,
            activation=activation,
            output_activation="identity",
            cosine_output=use_cosine_norm,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # data preparation
    # ------------------------------------------------------------------ #
    def fit_scaler(self, covariates: np.ndarray) -> "RepresentationNetwork":
        """Fit the covariate standardiser (no-op when standardisation is off)."""
        if self._standardize:
            self.scaler.fit(covariates)
        return self

    def prepare_inputs(self, covariates: np.ndarray) -> np.ndarray:
        """Standardise raw covariates into network inputs."""
        covariates = np.asarray(covariates, dtype=np.float64)
        if covariates.ndim != 2:
            raise ValueError("covariates must be a 2-D array")
        if covariates.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} covariates per unit, got {covariates.shape[1]}"
            )
        if self._standardize:
            if not self.scaler.is_fitted:
                raise RuntimeError("fit_scaler must be called before encoding")
            return self.scaler.transform(covariates)
        return covariates

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def forward(self, inputs: Tensor) -> Tensor:
        """Encode already-prepared inputs into representations."""
        representations = self.network(inputs)
        if self.use_cosine_norm:
            representations = representations / representations.norm(axis=1, keepdims=True)
        return representations

    def encode(self, covariates: np.ndarray, track_gradients: bool = False) -> Tensor:
        """Encode raw covariates into representations.

        With ``track_gradients=False`` (the default) the computation graph is
        not recorded, which is what memory extraction and evaluation need.
        """
        prepared = Tensor(self.prepare_inputs(covariates))
        if track_gradients:
            return self.forward(prepared)
        with no_grad():
            return self.forward(prepared)

    def infer(self, inputs: np.ndarray) -> np.ndarray:
        """Graph-free forward on already-prepared inputs (workspace-backed).

        Bitwise identical to :meth:`forward` under ``no_grad``; the returned
        array is overwritten by the next ``infer`` call on this network.
        """
        representations = self.network.infer(inputs)
        if self.use_cosine_norm:
            row_normalize_(self.workspace(), representations)
        return representations

    def infer_representations(self, covariates: np.ndarray) -> np.ndarray:
        """Standardise raw covariates and encode them on the fast path."""
        return self.infer(self.prepare_inputs(covariates))

    def representations(self, covariates: np.ndarray) -> np.ndarray:
        """Convenience wrapper returning representations as a NumPy array (copy)."""
        return self.infer_representations(covariates).copy()

    # ------------------------------------------------------------------ #
    # regularisation
    # ------------------------------------------------------------------ #
    def elastic_net(self) -> Tensor:
        """Elastic-net penalty over all dense weights of the encoder (Eq. 1)."""
        weights = [
            param
            for name, param in self.named_parameters()
            if name.endswith("weight")
        ]
        return elastic_net_penalty(weights, l1_ratio=self.l1_ratio)
