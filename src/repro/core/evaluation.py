"""Batched effect-estimate evaluation over several datasets at once.

The Figure-3 protocol re-evaluates a learner on the test sets of *every* seen
domain after *every* training stage — quadratic in stream length, and in the
seed implementation each dataset paid its own forward pass.  Batched
evaluation concatenates the covariates of all datasets into one matrix, runs
a **single** forward on the inference fast path (one GEMM per layer instead
of one per dataset), and splits the predictions back per dataset for the
metric computation.

Because the forward pass is row-wise (dense layers, row-normalisations), the
per-dataset slices of the batched prediction are bitwise identical to
evaluating each dataset separately, so switching the experiment drivers to
``evaluate_many`` does not change a single reported number.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from ..data.dataset import CausalDataset
from ..metrics import EffectEstimate, evaluate_effect_estimate

__all__ = ["evaluate_datasets"]

PredictFn = Callable[[np.ndarray], EffectEstimate]


def evaluate_datasets(
    predict: PredictFn, datasets: Sequence[CausalDataset]
) -> List[Dict[str, float]]:
    """Evaluate ``predict`` on each dataset with one concatenated forward pass.

    Parameters
    ----------
    predict:
        The learner's ``predict``: raw covariates → :class:`EffectEstimate`.
    datasets:
        Datasets with known counterfactuals, evaluated in order.

    Returns
    -------
    list of dict
        ``evaluate_effect_estimate`` metrics, one dict per dataset.
    """
    datasets = list(datasets)
    if not datasets:
        return []
    for dataset in datasets:
        if not dataset.has_counterfactuals:
            raise ValueError(
                f"evaluation requires true potential outcomes; dataset "
                f"'{dataset.name}' has none"
            )
    if len(datasets) == 1:
        dataset = datasets[0]
        estimate = predict(dataset.covariates)
        return [
            evaluate_effect_estimate(
                estimate,
                dataset.true_ite,
                treatments=dataset.treatments,
                factual_outcomes=dataset.outcomes,
            )
        ]

    stacked = np.concatenate([dataset.covariates for dataset in datasets], axis=0)
    estimate = predict(stacked)

    metrics: List[Dict[str, float]] = []
    offset = 0
    for dataset in datasets:
        stop = offset + len(dataset)
        slice_estimate = EffectEstimate(
            y0_hat=estimate.y0_hat[offset:stop], y1_hat=estimate.y1_hat[offset:stop]
        )
        metrics.append(
            evaluate_effect_estimate(
                slice_estimate,
                dataset.true_ite,
                treatments=dataset.treatments,
                factual_outcomes=dataset.outcomes,
            )
        )
        offset = stop
    return metrics
