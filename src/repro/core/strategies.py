"""Adaptation strategies for traditional causal-effect models (Sec. IV-B).

The paper compares CERL against three ways of adapting a CFR-style estimator
to incrementally available data:

* **CFR-A** — train on the original data and apply the frozen model to every
  later domain.  Fails on new domains under shift.
* **CFR-B** — fine-tune the previously trained model on the newly available
  data only.  Suffers catastrophic forgetting on previous domains.
* **CFR-C** — keep all raw data, and retrain from scratch on the union every
  time a new domain arrives.  The resource-unconstrained ideal.

All strategies (and :class:`~repro.core.cerl.CERL`) implement the
:class:`repro.core.api.ContinualEstimator` protocol so the experiment harness
can treat them uniformly.  None of them owns a training loop: each observe
call delegates to :class:`~repro.core.baseline.BaselineCausalModel`, whose
optimisation runs on the shared :class:`repro.engine.Trainer`.

The estimator surface (protocol, registry, ``make_estimator``) lives in
:mod:`repro.core.api`; :func:`make_strategy` and :data:`STRATEGY_NAMES` are
kept here as deprecated aliases for the paper-strategy subset.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import CausalDataset
from ..metrics import EffectEstimate
from .api import ContinualEstimator, estimator_names
from .baseline import BaselineCausalModel
from .config import ContinualConfig, ModelConfig
from .persistence import _extract, _flatten_state

__all__ = [
    "ContinualEstimator",
    "CFRStrategyA",
    "CFRStrategyB",
    "CFRStrategyC",
    "make_strategy",
    "STRATEGY_NAMES",
]

#: Deprecated alias: the paper-strategy subset of the estimator registry.
#: Derived (not duplicated) so it can never drift from the registry.
STRATEGY_NAMES = estimator_names(tag="paper")


class _CFRStrategyBase:
    """Common machinery of the CFR adaptation strategies."""

    name = "CFR"

    def __init__(self, n_features: int, config: Optional[ModelConfig] = None) -> None:
        self.n_features = n_features
        self.config = config if config is not None else ModelConfig()
        self.model = BaselineCausalModel(n_features, self.config)
        self.domains_seen = 0

    @property
    def model_config(self) -> ModelConfig:
        """Alias for :attr:`config` (the generic checkpoint path reads it)."""
        return self.config

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict potential outcomes with the currently held model."""
        return self.model.predict(covariates)

    def predict_ite(self, covariates: np.ndarray) -> np.ndarray:
        """Canonical ITE point estimate."""
        return self.model.predict(covariates).ite_hat

    def state_arrays(self) -> dict:
        """Model state for the generic checkpoint format.

        Only the *model* is persisted — network parameters and scalers.
        CFR-C's raw-data hoard is deliberately not serialised: the registry
        stores models, never raw data, so a restored CFR-C retrains only on
        domains observed after the restore (documented resource accounting).
        """
        arrays = _flatten_state("encoder/", self.model.encoder.state_dict())
        arrays.update(_flatten_state("heads/", self.model.heads.state_dict()))
        if self.model.encoder.scaler.is_fitted:
            arrays["scaler/covariates/mean"] = self.model.encoder.scaler.mean_
            arrays["scaler/covariates/std"] = self.model.encoder.scaler.std_
        if self.model.outcome_scaler.is_fitted:
            arrays["scaler/outcomes/mean"] = self.model.outcome_scaler.mean_
            arrays["scaler/outcomes/std"] = self.model.outcome_scaler.std_
        return arrays

    def load_state_arrays(self, archive: dict) -> None:
        """Restore the held model from :meth:`state_arrays` output."""
        self.model.encoder.load_state_dict(_extract(archive, "encoder/"))
        self.model.heads.load_state_dict(_extract(archive, "heads/"))
        if "scaler/covariates/mean" in archive:
            self.model.encoder.scaler.mean_ = archive["scaler/covariates/mean"]
            self.model.encoder.scaler.std_ = archive["scaler/covariates/std"]
        if "scaler/outcomes/mean" in archive:
            self.model.outcome_scaler.mean_ = archive["scaler/outcomes/mean"]
            self.model.outcome_scaler.std_ = archive["scaler/outcomes/std"]
        self.model._fitted = True

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate the currently held model on a labelled dataset."""
        return self.model.evaluate(dataset)

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Batched evaluation of several datasets (one forward pass)."""
        return self.model.evaluate_many(datasets)

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        raise NotImplementedError

    @property
    def stored_raw_units(self) -> int:
        """Number of raw units the strategy keeps around (resource accounting)."""
        return 0


class CFRStrategyA(_CFRStrategyBase):
    """Strategy A: train once on the first domain, freeze afterwards."""

    name = "CFR-A"

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Train only on the first observed domain; ignore later domains."""
        if self.domains_seen == 0:
            history = self.model.fit(dataset, epochs=epochs, val_dataset=val_dataset)
        else:
            history = self.model.history
        self.domains_seen += 1
        return history


class CFRStrategyB(_CFRStrategyBase):
    """Strategy B: fine-tune the previous model on each newly available domain."""

    name = "CFR-B"

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Fit on the first domain, fine-tune on every later one."""
        if self.domains_seen == 0:
            history = self.model.fit(dataset, epochs=epochs, val_dataset=val_dataset)
        else:
            history = self.model.fine_tune(dataset, epochs=epochs, val_dataset=val_dataset)
        self.domains_seen += 1
        return history


class CFRStrategyC(_CFRStrategyBase):
    """Strategy C: store all raw data and retrain from scratch on the union."""

    name = "CFR-C"

    def __init__(self, n_features: int, config: Optional[ModelConfig] = None) -> None:
        super().__init__(n_features, config)
        self._seen: List[CausalDataset] = []
        self._seen_val: List[CausalDataset] = []

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Accumulate raw data and retrain a fresh model on everything seen.

        Validation data are also accumulated (CFR-C has no data-access
        constraint), so early stopping sees the union of all validation sets.
        """
        self._seen.append(dataset)
        merged = CausalDataset.concat(self._seen)
        if val_dataset is not None:
            self._seen_val.append(val_dataset)
        merged_val = CausalDataset.concat(self._seen_val) if self._seen_val else None
        # Retrain from scratch: a fresh model with the same configuration.
        self.model = BaselineCausalModel(self.n_features, self.config)
        history = self.model.fit(merged, epochs=epochs, val_dataset=merged_val)
        self.domains_seen += 1
        return history

    @property
    def stored_raw_units(self) -> int:
        """Raw units retained across observations (all of them, by design)."""
        return int(sum(len(d) for d in self._seen))


def make_strategy(
    name: str,
    n_features: int,
    model_config: Optional[ModelConfig] = None,
    continual_config: Optional[ContinualConfig] = None,
) -> ContinualEstimator:
    """Deprecated: use :func:`repro.core.api.make_estimator` instead.

    Kept as a back-compat shim for the PR-1-era factory; it delegates to the
    estimator registry (so it now also accepts the meta-learner names) and
    emits a :class:`DeprecationWarning`.
    """
    warnings.warn(
        "make_strategy is deprecated; use repro.core.api.make_estimator",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import make_estimator

    return make_estimator(name, n_features, model_config, continual_config)
