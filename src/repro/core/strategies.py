"""Adaptation strategies for traditional causal-effect models (Sec. IV-B).

The paper compares CERL against three ways of adapting a CFR-style estimator
to incrementally available data:

* **CFR-A** — train on the original data and apply the frozen model to every
  later domain.  Fails on new domains under shift.
* **CFR-B** — fine-tune the previously trained model on the newly available
  data only.  Suffers catastrophic forgetting on previous domains.
* **CFR-C** — keep all raw data, and retrain from scratch on the union every
  time a new domain arrives.  The resource-unconstrained ideal.

All strategies (and :class:`~repro.core.cerl.CERL`) expose the same
``observe`` / ``predict`` / ``evaluate`` protocol so the experiment harness
can treat them uniformly.  None of them owns a training loop: each observe
call delegates to :class:`~repro.core.baseline.BaselineCausalModel`, whose
optimisation runs on the shared :class:`repro.engine.Trainer`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..data.dataset import CausalDataset
from ..metrics import EffectEstimate
from .baseline import BaselineCausalModel
from .cerl import CERL
from .config import ContinualConfig, ModelConfig

__all__ = [
    "ContinualEstimator",
    "CFRStrategyA",
    "CFRStrategyB",
    "CFRStrategyC",
    "make_strategy",
    "STRATEGY_NAMES",
]

STRATEGY_NAMES = ("CFR-A", "CFR-B", "CFR-C", "CERL")


@runtime_checkable
class ContinualEstimator(Protocol):
    """Protocol shared by CERL and the three CFR adaptation strategies."""

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Consume the next available domain."""

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict potential outcomes for raw covariates."""

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate effect-estimation metrics on a labelled dataset."""

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate several datasets with one batched forward pass."""


class _CFRStrategyBase:
    """Common machinery of the CFR adaptation strategies."""

    name = "CFR"

    def __init__(self, n_features: int, config: Optional[ModelConfig] = None) -> None:
        self.n_features = n_features
        self.config = config if config is not None else ModelConfig()
        self.model = BaselineCausalModel(n_features, self.config)
        self.domains_seen = 0

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict potential outcomes with the currently held model."""
        return self.model.predict(covariates)

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate the currently held model on a labelled dataset."""
        return self.model.evaluate(dataset)

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Batched evaluation of several datasets (one forward pass)."""
        return self.model.evaluate_many(datasets)

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        raise NotImplementedError

    @property
    def stored_raw_units(self) -> int:
        """Number of raw units the strategy keeps around (resource accounting)."""
        return 0


class CFRStrategyA(_CFRStrategyBase):
    """Strategy A: train once on the first domain, freeze afterwards."""

    name = "CFR-A"

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Train only on the first observed domain; ignore later domains."""
        if self.domains_seen == 0:
            history = self.model.fit(dataset, epochs=epochs, val_dataset=val_dataset)
        else:
            history = self.model.history
        self.domains_seen += 1
        return history


class CFRStrategyB(_CFRStrategyBase):
    """Strategy B: fine-tune the previous model on each newly available domain."""

    name = "CFR-B"

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Fit on the first domain, fine-tune on every later one."""
        if self.domains_seen == 0:
            history = self.model.fit(dataset, epochs=epochs, val_dataset=val_dataset)
        else:
            history = self.model.fine_tune(dataset, epochs=epochs, val_dataset=val_dataset)
        self.domains_seen += 1
        return history


class CFRStrategyC(_CFRStrategyBase):
    """Strategy C: store all raw data and retrain from scratch on the union."""

    name = "CFR-C"

    def __init__(self, n_features: int, config: Optional[ModelConfig] = None) -> None:
        super().__init__(n_features, config)
        self._seen: List[CausalDataset] = []
        self._seen_val: List[CausalDataset] = []

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Accumulate raw data and retrain a fresh model on everything seen.

        Validation data are also accumulated (CFR-C has no data-access
        constraint), so early stopping sees the union of all validation sets.
        """
        self._seen.append(dataset)
        merged = CausalDataset.concat(self._seen)
        if val_dataset is not None:
            self._seen_val.append(val_dataset)
        merged_val = CausalDataset.concat(self._seen_val) if self._seen_val else None
        # Retrain from scratch: a fresh model with the same configuration.
        self.model = BaselineCausalModel(self.n_features, self.config)
        history = self.model.fit(merged, epochs=epochs, val_dataset=merged_val)
        self.domains_seen += 1
        return history

    @property
    def stored_raw_units(self) -> int:
        """Raw units retained across observations (all of them, by design)."""
        return int(sum(len(d) for d in self._seen))


def make_strategy(
    name: str,
    n_features: int,
    model_config: Optional[ModelConfig] = None,
    continual_config: Optional[ContinualConfig] = None,
) -> ContinualEstimator:
    """Build a strategy or CERL learner by its paper name.

    Parameters
    ----------
    name:
        One of ``"CFR-A"``, ``"CFR-B"``, ``"CFR-C"``, ``"CERL"`` (case-insensitive).
    n_features:
        Covariate dimensionality.
    model_config, continual_config:
        Optional configurations; ``continual_config`` is only used by CERL.
    """
    key = name.strip().upper()
    if key == "CFR-A":
        return CFRStrategyA(n_features, model_config)
    if key == "CFR-B":
        return CFRStrategyB(n_features, model_config)
    if key == "CFR-C":
        return CFRStrategyC(n_features, model_config)
    if key == "CERL":
        return CERL(n_features, model_config, continual_config)
    raise ValueError(f"unknown strategy '{name}'; valid names: {STRATEGY_NAMES}")
