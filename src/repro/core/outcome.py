"""Two-headed potential-outcome network ``h_theta : R x T -> Y`` (Sec. III-A.1).

To avoid losing the influence of the treatment on the representation, the
outcome function is partitioned into two separate regression heads — one for
the treatment group and one for the control group — and each unit only
contributes to the head of its observed treatment.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import MLP, Module, Tensor, no_grad

__all__ = ["OutcomeHeads"]


class OutcomeHeads(Module):
    """Pair of MLP regression heads over the representation space.

    Parameters
    ----------
    representation_dim:
        Dimensionality of the representation space ``R``.
    hidden_sizes:
        Hidden widths of each head.
    """

    def __init__(
        self,
        representation_dim: int,
        hidden_sizes: Sequence[int] = (32,),
        activation: str = "elu",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.representation_dim = representation_dim
        self.control_head = MLP(
            in_features=representation_dim,
            hidden_sizes=hidden_sizes,
            out_features=1,
            activation=activation,
            rng=rng,
        )
        self.treated_head = MLP(
            in_features=representation_dim,
            hidden_sizes=hidden_sizes,
            out_features=1,
            activation=activation,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # forward passes
    # ------------------------------------------------------------------ #
    def forward(self, representations: Tensor, treatment: int) -> Tensor:
        """Predict outcomes for a batch that all received the same treatment."""
        head = self.treated_head if treatment == 1 else self.control_head
        return head(representations).reshape(-1)

    def factual(self, representations: Tensor, treatments: np.ndarray) -> Tensor:
        """Predict each unit's outcome under its observed treatment.

        Both heads are evaluated and the relevant one is selected per unit via
        a differentiable mask, so gradients flow only into the head matching
        each unit's observed treatment.
        """
        treatments = np.asarray(treatments).ravel()
        return self.factual_masked(representations, Tensor(treatments.astype(np.float64)))

    def factual_masked(self, representations: Tensor, mask: Tensor) -> Tensor:
        """:meth:`factual` with the treatment mask already lifted to a tensor.

        Loss programs use this entry point so the mask can be a per-step feed
        (eager) or a replayed leaf (tape) instead of a baked constant.
        """
        y1 = self.treated_head(representations).reshape(-1)
        y0 = self.control_head(representations).reshape(-1)
        return mask * y1 + (1.0 - mask) * y0

    def potential_outcomes(self, representations: Tensor) -> tuple:
        """Return ``(y0_hat, y1_hat)`` NumPy arrays without recording gradients."""
        with no_grad():
            y0 = self.control_head(representations).reshape(-1)
            y1 = self.treated_head(representations).reshape(-1)
        return y0.numpy().copy(), y1.numpy().copy()

    # ------------------------------------------------------------------ #
    # inference fast path (raw ndarrays, no graph, workspace-backed heads)
    # ------------------------------------------------------------------ #
    def infer_potential_outcomes(self, representations: np.ndarray) -> tuple:
        """Fast-path :meth:`potential_outcomes` on a raw representation array."""
        y0 = self.control_head.infer(representations).ravel().copy()
        y1 = self.treated_head.infer(representations).ravel().copy()
        return y0, y1

    def infer_factual(self, representations: np.ndarray, treatments: np.ndarray) -> np.ndarray:
        """Fast-path :meth:`factual`: same mask expression on raw ndarrays."""
        mask = np.asarray(treatments).ravel().astype(np.float64)
        y1 = self.treated_head.infer(representations).ravel()
        y0 = self.control_head.infer(representations).ravel()
        return mask * y1 + (1.0 - mask) * y0
