"""Checkpointing of estimators between domains.

In the deployment scenario the paper motivates (data arrive over days or from
different subsidiaries), the learner must be persisted between arrivals: the
whole point of CERL is that *only* the model and the representation memory are
kept, never the raw data.  This module serialises exactly that state — the
configurations, the current module parameters, the scalers and (for CERL) the
memory buffer — into a single ``.npz`` archive, and restores a fully
functional estimator from it.

Two layers:

* :func:`save_cerl` / :func:`load_cerl` — the historical CERL-specific format
  (kept verbatim for back-compat; archives written before the estimator API
  carry no kind marker and load as CERL).
* :func:`save_estimator` / :func:`load_estimator` — the generic path the
  model registry uses.  CERL round-trips through the CERL codec; every other
  registered estimator provides ``state_arrays()`` / ``load_state_arrays()``
  hooks, and the archive's ``meta_json`` records its registry name as
  ``estimator_kind`` so :func:`load_estimator` can rebuild it through
  :func:`repro.core.api.make_estimator` — which is what lets the serving
  stack version and hot-swap any registered estimator without knowing its
  type.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..memory import MemoryBuffer
from ..utils import Standardizer, atomic_write, load_npz_mapped
from .cerl import CERL
from .config import ContinualConfig, ModelConfig
from .outcome import OutcomeHeads
from .representation import RepresentationNetwork

__all__ = [
    "save_cerl",
    "load_cerl",
    "save_estimator",
    "load_estimator",
    "save_modules",
    "load_modules",
    "module_checkpointer",
]

_FORMAT_VERSION = 1


def _flatten_state(prefix: str, state: dict) -> dict:
    return {f"{prefix}{name}": value for name, value in state.items()}


def _npz_path(path: Union[str, Path]) -> Path:
    """Append the ``.npz`` suffix only when it is missing.

    ``Path.with_suffix`` *replaces* the last dotted component, so a stem like
    ``model.v1`` would silently become ``model.npz`` and collide with other
    checkpoints; appending preserves every dot the caller put in the name.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return path
    return path.with_name(path.name + ".npz")


def _atomic_savez(path: Path, arrays: dict, compressed: bool = True) -> None:
    """Write an ``.npz`` archive so the target is never partially written.

    A crash mid-save leaves either the previous checkpoint or none — never a
    truncated archive (see :func:`repro.utils.atomic_write`).  Saving through
    an open file handle also stops NumPy from appending its own ``.npz`` to
    the temporary name.  ``compressed=False`` stores members verbatim
    (``np.savez``), which is what makes them memory-mappable on load — see
    :func:`repro.utils.load_npz_mapped`.
    """
    savez = np.savez_compressed if compressed else np.savez
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            savez(handle, **arrays)


def save_modules(modules: dict, path: Union[str, Path]) -> Path:
    """Serialise named module state dicts to one ``.npz`` archive.

    ``modules`` maps a name to any :class:`repro.nn.Module`; the archive can
    be restored with :func:`load_modules`.  This is the primitive behind
    engine-level checkpointing (see :func:`module_checkpointer`).
    """
    path = _npz_path(path)
    arrays: dict = {}
    for name, module in modules.items():
        arrays.update(_flatten_state(f"{name}/", module.state_dict()))
    _atomic_savez(path, arrays)
    return path


def load_modules(modules: dict, path: Union[str, Path]) -> None:
    """Restore module parameters saved with :func:`save_modules` in place."""
    with np.load(Path(path), allow_pickle=False) as archive:
        for name, module in modules.items():
            module.load_state_dict(_extract(archive, f"{name}/"))


def module_checkpointer(modules: dict, directory: Union[str, Path], stem: str = "checkpoint"):
    """Build a ``save_fn`` for :class:`repro.engine.Checkpoint`.

    Returns a callable ``save_fn(epoch) -> Path`` writing
    ``<directory>/<stem>_epoch<k>.npz`` snapshots of the given modules, wiring
    the engine's checkpoint callback to this module's persistence format::

        trainer = Trainer(..., callbacks=[
            Checkpoint(module_checkpointer({"encoder": enc}, out_dir), every=10),
        ])
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    def save_fn(epoch: int) -> Path:
        return save_modules(modules, directory / f"{stem}_epoch{epoch:04d}.npz")

    return save_fn


def save_cerl(learner: CERL, path: Union[str, Path], compressed: bool = True) -> Path:
    """Serialise a fitted CERL learner to ``path`` (``.npz`` archive).

    ``compressed=False`` writes members uncompressed so a later
    ``load_cerl(path, mmap_mode='r')`` can memory-map the large state (the
    representation memory, the scalers) zero-copy instead of inflating it —
    the trade serving deployments want (the registry uses it for every saved
    version).

    Raises
    ------
    RuntimeError
        If the learner has not observed any domain yet.
    """
    if learner.domains_seen == 0 or learner.encoder is None or learner.heads is None:
        raise RuntimeError("cannot save a CERL learner that has not observed any domain")
    path = _npz_path(path)

    meta = {
        "format_version": _FORMAT_VERSION,
        "n_features": learner.n_features,
        "domains_seen": learner.domains_seen,
        "model_config": asdict(learner.model_config),
        "continual_config": asdict(learner.continual_config),
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    arrays.update(_flatten_state("encoder/", learner.encoder.state_dict()))
    arrays.update(_flatten_state("heads/", learner.heads.state_dict()))

    if learner.encoder.scaler.is_fitted:
        arrays["scaler/covariates/mean"] = learner.encoder.scaler.mean_
        arrays["scaler/covariates/std"] = learner.encoder.scaler.std_
    if learner.outcome_scaler.is_fitted:
        arrays["scaler/outcomes/mean"] = learner.outcome_scaler.mean_
        arrays["scaler/outcomes/std"] = learner.outcome_scaler.std_

    if learner.memory is not None and len(learner.memory):
        arrays["memory/representations"] = learner.memory.representations
        arrays["memory/outcomes"] = learner.memory.outcomes
        arrays["memory/treatments"] = learner.memory.treatments

    _atomic_savez(path, arrays, compressed=compressed)
    return path


def _read_archive(path: Path, mmap_mode) -> dict:
    """Materialise an archive as a plain ``{name: array}`` mapping.

    With ``mmap_mode=None`` every member is read eagerly through ``np.load``
    (the historical behaviour).  With a mode, uncompressed members become
    ``np.memmap`` views of the archive file — zero-copy, page-cache-shared
    across worker processes — via :func:`repro.utils.load_npz_mapped`;
    compressed members are read eagerly either way (``np.load`` itself
    silently ignores ``mmap_mode`` for zip archives, so this is the only
    honest mapping path).
    """
    if mmap_mode is not None:
        return load_npz_mapped(path, mode=mmap_mode)
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def load_cerl(path: Union[str, Path], mmap_mode: Optional[str] = None) -> CERL:
    """Restore a CERL learner saved with :func:`save_cerl`.

    The restored learner can continue observing new domains and predicting for
    all previously seen domains, exactly as the original instance could.

    Parameters
    ----------
    path:
        The ``.npz`` archive.
    mmap_mode:
        ``None`` (default) loads eagerly.  ``'r'`` memory-maps the archive's
        uncompressed members read-only — the representation memory and the
        scalers are *adopted* as mapped views (zero-copy; shard workers use
        this so N workers loading the same checkpoint share one page-cache
        copy), while module parameters are copied into the layers as always.
        Predictions are bit-identical either way; on POSIX a held mapping
        survives the archive being atomically replaced on disk.
    """
    archive, meta = _open_checkpoint(path, mmap_mode)
    return _load_cerl_from(archive, meta)


def _open_checkpoint(path: Union[str, Path], mmap_mode: Optional[str]) -> tuple:
    """Read an archive and its validated ``meta_json`` header."""
    archive = _read_archive(Path(path), mmap_mode)
    meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint format {meta.get('format_version')!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    return archive, meta


def _load_cerl_from(archive: dict, meta: dict) -> CERL:
    model_config = ModelConfig(**meta["model_config"])
    continual_config = ContinualConfig(**meta["continual_config"])
    learner = CERL(meta["n_features"], model_config, continual_config)

    rng = np.random.default_rng(model_config.seed)
    encoder = RepresentationNetwork(
        in_features=meta["n_features"],
        representation_dim=model_config.representation_dim,
        hidden_sizes=model_config.encoder_hidden,
        activation=model_config.activation,
        use_cosine_norm=model_config.use_cosine_norm,
        standardize=model_config.standardize_covariates,
        l1_ratio=model_config.elastic_net_l1_ratio,
        rng=rng,
    )
    heads = OutcomeHeads(
        representation_dim=model_config.representation_dim,
        hidden_sizes=model_config.outcome_hidden,
        activation=model_config.activation,
        rng=rng,
    )
    encoder.load_state_dict(_extract(archive, "encoder/"))
    heads.load_state_dict(_extract(archive, "heads/"))

    if "scaler/covariates/mean" in archive:
        encoder.scaler.mean_ = archive["scaler/covariates/mean"]
        encoder.scaler.std_ = archive["scaler/covariates/std"]
    outcome_scaler = Standardizer()
    if "scaler/outcomes/mean" in archive:
        outcome_scaler.mean_ = archive["scaler/outcomes/mean"]
        outcome_scaler.std_ = archive["scaler/outcomes/std"]

    memory = None
    if "memory/representations" in archive:
        memory = MemoryBuffer(
            archive["memory/representations"],
            archive["memory/outcomes"],
            archive["memory/treatments"],
        )

    learner.encoder = encoder
    learner.heads = heads
    learner.outcome_scaler = outcome_scaler
    learner.memory = memory
    learner.domains_seen = int(meta["domains_seen"])
    return learner


def _extract(archive: dict, prefix: str) -> dict:
    return {
        key[len(prefix):]: value
        for key, value in archive.items()
        if key.startswith(prefix)
    }


# --------------------------------------------------------------------------- #
# generic estimator checkpoints (the model-registry path)
# --------------------------------------------------------------------------- #
def save_estimator(learner, path: Union[str, Path], compressed: bool = True) -> Path:
    """Serialise any registered estimator to ``path`` (``.npz`` archive).

    CERL goes through :func:`save_cerl` unchanged (same archive layout as
    every checkpoint written before the estimator API existed).  Any other
    estimator must expose ``state_arrays()`` / ``load_state_arrays()`` plus
    the protocol attributes (``name``, ``n_features``, ``domains_seen``,
    ``model_config``); its archive records the registry name as
    ``estimator_kind`` so :func:`load_estimator` can rebuild it by name.

    ``compressed=False`` keeps members memory-mappable on load, exactly as
    for :func:`save_cerl`.
    """
    if isinstance(learner, CERL):
        return save_cerl(learner, path, compressed=compressed)
    if not hasattr(learner, "state_arrays") or not hasattr(learner, "load_state_arrays"):
        raise TypeError(
            f"{type(learner).__name__} does not implement the estimator "
            "checkpoint hooks (state_arrays/load_state_arrays)"
        )
    if learner.domains_seen == 0:
        raise RuntimeError(
            "cannot save an estimator that has not observed any domain"
        )
    path = _npz_path(path)

    continual_config = getattr(learner, "continual_config", None)
    meta = {
        "format_version": _FORMAT_VERSION,
        "estimator_kind": learner.name,
        "n_features": learner.n_features,
        "domains_seen": learner.domains_seen,
        "model_config": asdict(learner.model_config),
        "continual_config": asdict(continual_config) if continual_config else None,
    }
    arrays = {
        "meta_json": np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    }
    arrays.update(learner.state_arrays())
    _atomic_savez(path, arrays, compressed=compressed)
    return path


def load_estimator(path: Union[str, Path], mmap_mode: Optional[str] = None):
    """Restore any estimator saved with :func:`save_estimator`.

    The archive's ``estimator_kind`` selects the registry builder; archives
    without a kind marker predate the estimator API and load as CERL.
    ``mmap_mode`` behaves exactly as for :func:`load_cerl` (module parameters
    are copied into layers; large flat arrays are adopted as mapped views).
    """
    archive, meta = _open_checkpoint(path, mmap_mode)
    kind = meta.get("estimator_kind", "CERL")
    if kind.strip().upper() == "CERL":
        return _load_cerl_from(archive, meta)

    from .api import make_estimator

    model_config = ModelConfig(**meta["model_config"])
    continual_config = (
        ContinualConfig(**meta["continual_config"])
        if meta.get("continual_config")
        else None
    )
    learner = make_estimator(kind, meta["n_features"], model_config, continual_config)
    learner.load_state_arrays(archive)
    learner.domains_seen = int(meta["domains_seen"])
    return learner
