"""Classical (non-neural) treatment-effect estimators used as sanity baselines.

These estimators are not part of the paper's method, but a production causal
library needs cheap reference points: a naive difference-in-means estimator,
an inverse-propensity-weighting (IPW) ATE estimator, and a closed-form ridge
T-learner for heterogeneous effects.  The test suite and examples use them to
verify that the representation learners beat (or at least match) much simpler
alternatives, and they give downstream users a fast first answer on new data.

Iterative fitting goes through the engine layer like everything else: the
propensity model's Newton/IRLS iterations are driven by
``repro.engine.Trainer.converge`` rather than a hand-rolled loop (the ridge
T-learner is closed-form and needs no iteration at all).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import CausalDataset
from ..engine import Trainer
from ..metrics import EffectEstimate
from ..utils import Standardizer

__all__ = ["naive_ate", "ipw_ate", "RidgeTLearner", "LogisticPropensityModel"]


def naive_ate(dataset: CausalDataset) -> float:
    """Difference in mean observed outcomes between treated and control units.

    Biased under selection bias; included as the zero-effort reference point.
    """
    if dataset.n_treated == 0 or dataset.n_control == 0:
        raise ValueError("naive ATE requires both treated and control units")
    treated_mean = dataset.outcomes[dataset.treatments == 1].mean()
    control_mean = dataset.outcomes[dataset.treatments == 0].mean()
    return float(treated_mean - control_mean)


class LogisticPropensityModel:
    """L2-regularised logistic regression for propensity scores e(x) = P(T=1|x).

    Fitted with full-batch Newton/IRLS iterations; sufficient for the modest
    covariate dimensionalities of the benchmarks and dependency-free.
    """

    def __init__(self, l2: float = 1.0, max_iterations: int = 50, tol: float = 1e-6) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.l2 = l2
        self.max_iterations = max_iterations
        self.tol = tol
        self.coefficients_: Optional[np.ndarray] = None
        self._scaler = Standardizer()

    def fit(self, covariates: np.ndarray, treatments: np.ndarray) -> "LogisticPropensityModel":
        """Fit the propensity model on raw covariates and binary treatments."""
        covariates = np.asarray(covariates, dtype=np.float64)
        treatments = np.asarray(treatments, dtype=np.float64).ravel()
        if covariates.ndim != 2 or covariates.shape[0] != treatments.shape[0]:
            raise ValueError("covariates must be (n, p) and match treatments length")
        features = self._design(self._scaler.fit(covariates).transform(covariates))
        n, p = features.shape
        beta = np.zeros(p)
        regularizer = self.l2 * np.eye(p)
        regularizer[-1, -1] = 0.0  # do not penalise the intercept

        def newton_step(_iteration: int) -> float:
            nonlocal beta
            logits = features @ beta
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            gradient = features.T @ (probabilities - treatments) + regularizer @ beta
            weights = np.maximum(probabilities * (1.0 - probabilities), 1e-6)
            hessian = (features * weights[:, None]).T @ features + regularizer
            step = np.linalg.solve(hessian, gradient)
            beta = beta - step
            return float(np.linalg.norm(step))

        Trainer.converge(newton_step, max_iterations=self.max_iterations, tol=self.tol)
        self.coefficients_ = beta
        return self

    def predict_proba(self, covariates: np.ndarray) -> np.ndarray:
        """Return estimated propensity scores for raw covariates."""
        if self.coefficients_ is None:
            raise RuntimeError("LogisticPropensityModel used before fit()")
        features = self._design(self._scaler.transform(np.asarray(covariates, dtype=np.float64)))
        return 1.0 / (1.0 + np.exp(-(features @ self.coefficients_)))

    @staticmethod
    def _design(covariates: np.ndarray) -> np.ndarray:
        return np.hstack([covariates, np.ones((covariates.shape[0], 1))])


def ipw_ate(
    dataset: CausalDataset,
    propensity_model: Optional[LogisticPropensityModel] = None,
    clip: float = 0.05,
) -> float:
    """Inverse-propensity-weighted (Horvitz-Thompson) ATE estimate.

    Parameters
    ----------
    dataset:
        Observational data.
    propensity_model:
        Optional pre-fitted propensity model; a default logistic model is
        fitted on the dataset when omitted.
    clip:
        Propensity scores are clipped to ``[clip, 1 - clip]`` to bound the
        weights (standard practice to control variance under near-positivity
        violations).
    """
    if not 0.0 <= clip < 0.5:
        raise ValueError("clip must lie in [0, 0.5)")
    if propensity_model is None:
        propensity_model = LogisticPropensityModel().fit(dataset.covariates, dataset.treatments)
    propensity = np.clip(propensity_model.predict_proba(dataset.covariates), clip, 1.0 - clip)
    treated = dataset.treatments == 1
    weights_treated = 1.0 / propensity[treated]
    weights_control = 1.0 / (1.0 - propensity[~treated])
    treated_mean = np.sum(dataset.outcomes[treated] * weights_treated) / np.sum(weights_treated)
    control_mean = np.sum(dataset.outcomes[~treated] * weights_control) / np.sum(weights_control)
    return float(treated_mean - control_mean)


class RidgeTLearner:
    """T-learner with closed-form ridge regression per treatment arm.

    Fits one ridge regression on the treated units and one on the control
    units; the ITE estimate is the difference of the two predictions.  Fast,
    deterministic and a meaningful lower bar for the representation learners.
    """

    def __init__(self, l2: float = 1.0) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self._weights: dict[int, np.ndarray] = {}
        self._scaler = Standardizer()

    def fit(self, dataset: CausalDataset) -> "RidgeTLearner":
        """Fit both arm-specific ridge regressions."""
        if dataset.n_treated < 2 or dataset.n_control < 2:
            raise ValueError("RidgeTLearner needs at least two units per treatment arm")
        covariates = self._scaler.fit(dataset.covariates).transform(dataset.covariates)
        for arm in (0, 1):
            mask = dataset.treatments == arm
            features = self._design(covariates[mask])
            targets = dataset.outcomes[mask]
            gram = features.T @ features + self.l2 * np.eye(features.shape[1])
            self._weights[arm] = np.linalg.solve(gram, features.T @ targets)
        return self

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict both potential outcomes for raw covariates."""
        if not self._weights:
            raise RuntimeError("RidgeTLearner used before fit()")
        features = self._design(self._scaler.transform(np.asarray(covariates, dtype=np.float64)))
        return EffectEstimate(
            y0_hat=features @ self._weights[0],
            y1_hat=features @ self._weights[1],
        )

    def estimate_ate(self, covariates: np.ndarray) -> float:
        """Average treatment effect over the given population."""
        return self.predict(covariates).ate_hat

    @staticmethod
    def _design(covariates: np.ndarray) -> np.ndarray:
        return np.hstack([covariates, np.ones((covariates.shape[0], 1))])
