"""Core causal-effect learners: baseline model, CFR strategies, CERL, meta-learners.

The estimator surface (protocol, registry, factory) lives in
:mod:`repro.core.api`; the meta-learner zoo in :mod:`repro.core.learners`.
"""

from .config import ContinualConfig, ModelConfig
from .evaluation import evaluate_datasets
from .representation import RepresentationNetwork
from .outcome import OutcomeHeads
from .transform import FeatureTransform
from .baseline import BaselineCausalModel, EarlyStopping, TrainingHistory
from .cerl import CERL
from .api import (
    ESTIMATORS,
    ContinualEstimator,
    EstimatorRegistry,
    EstimatorSpec,
    estimator_names,
    estimator_specs,
    make_estimator,
)
from .strategies import (
    STRATEGY_NAMES,
    CFRStrategyA,
    CFRStrategyB,
    CFRStrategyC,
    make_strategy,
)
from .learners import RLearner, SLearner, TLearner, XLearner
from .classic import LogisticPropensityModel, RidgeTLearner, ipw_ate, naive_ate
from .persistence import (
    load_cerl,
    load_estimator,
    load_modules,
    module_checkpointer,
    save_cerl,
    save_estimator,
    save_modules,
)

__all__ = [
    "LogisticPropensityModel",
    "RidgeTLearner",
    "ipw_ate",
    "naive_ate",
    "save_cerl",
    "load_cerl",
    "save_estimator",
    "load_estimator",
    "save_modules",
    "load_modules",
    "module_checkpointer",
    "ModelConfig",
    "ContinualConfig",
    "evaluate_datasets",
    "RepresentationNetwork",
    "OutcomeHeads",
    "FeatureTransform",
    "BaselineCausalModel",
    "EarlyStopping",
    "TrainingHistory",
    "CERL",
    "ESTIMATORS",
    "EstimatorRegistry",
    "EstimatorSpec",
    "estimator_names",
    "estimator_specs",
    "make_estimator",
    "STRATEGY_NAMES",
    "CFRStrategyA",
    "CFRStrategyB",
    "CFRStrategyC",
    "ContinualEstimator",
    "make_strategy",
    "SLearner",
    "TLearner",
    "XLearner",
    "RLearner",
]
