"""Core causal-effect learners: the baseline model, CFR strategies and CERL."""

from .config import ContinualConfig, ModelConfig
from .evaluation import evaluate_datasets
from .representation import RepresentationNetwork
from .outcome import OutcomeHeads
from .transform import FeatureTransform
from .baseline import BaselineCausalModel, EarlyStopping, TrainingHistory
from .cerl import CERL
from .strategies import (
    STRATEGY_NAMES,
    CFRStrategyA,
    CFRStrategyB,
    CFRStrategyC,
    ContinualEstimator,
    make_strategy,
)
from .classic import LogisticPropensityModel, RidgeTLearner, ipw_ate, naive_ate
from .persistence import load_cerl, load_modules, module_checkpointer, save_cerl, save_modules

__all__ = [
    "LogisticPropensityModel",
    "RidgeTLearner",
    "ipw_ate",
    "naive_ate",
    "save_cerl",
    "load_cerl",
    "save_modules",
    "load_modules",
    "module_checkpointer",
    "ModelConfig",
    "ContinualConfig",
    "evaluate_datasets",
    "RepresentationNetwork",
    "OutcomeHeads",
    "FeatureTransform",
    "BaselineCausalModel",
    "EarlyStopping",
    "TrainingHistory",
    "CERL",
    "STRATEGY_NAMES",
    "CFRStrategyA",
    "CFRStrategyB",
    "CFRStrategyC",
    "ContinualEstimator",
    "make_strategy",
]
