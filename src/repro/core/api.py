"""The estimator surface: protocol, registry and factory.

This module is the one place that defines what an *estimator* is in this
codebase and which estimators exist.  Everything downstream — the stream
drivers in :mod:`repro.experiments`, the serving stack in :mod:`repro.serve`,
drift adaptation in :mod:`repro.monitor` and the SLO harness — programs
against :class:`ContinualEstimator` and builds instances through
:func:`make_estimator`, so registering a new estimator here makes it show up
in every table, stream, fleet and chaos replay without further call-site
changes.

Protocol
--------
A conforming estimator exposes:

* ``observe(dataset, epochs=None, val_dataset=None)`` — consume the next
  available domain (training happens here, on the shared
  :class:`repro.engine.Trainer`);
* ``predict(covariates) -> EffectEstimate`` — both potential outcomes;
* ``predict_ite(covariates) -> np.ndarray`` — the canonical point estimate
  of the individual treatment effect (``predict(x).ite_hat`` by default);
* ``evaluate(dataset)`` / ``evaluate_many(datasets)`` — effect-estimation
  metrics, with the batched form bit-identical to the per-dataset loop;

plus the attributes ``n_features`` (covariate dimensionality), ``name``
(registry name) and ``domains_seen`` (number of observed domains), which the
model registry records in its manifest.

Registry
--------
:data:`ESTIMATORS` is the process-wide default :class:`EstimatorRegistry`,
pre-populated with the paper's strategies (CFR-A/B/C, CERL) and the
meta-learner zoo (S/T/X and the DML-style R-learner).  Builders import their
implementation modules lazily, so importing this module stays cheap and free
of circular imports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from ..data.dataset import CausalDataset
from ..metrics import EffectEstimate
from .config import ContinualConfig, ModelConfig

__all__ = [
    "ContinualEstimator",
    "EstimatorSpec",
    "EstimatorRegistry",
    "ESTIMATORS",
    "make_estimator",
    "estimator_names",
    "estimator_specs",
]


@runtime_checkable
class ContinualEstimator(Protocol):
    """Protocol every registered estimator implements.

    Implementations additionally carry the attributes ``n_features``,
    ``name`` and ``domains_seen`` (kept out of the protocol members so
    ``isinstance`` checks stay cheap and purely method-based).
    """

    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> object:
        """Consume the next available domain."""

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict both potential outcomes for raw covariates."""

    def predict_ite(self, covariates: np.ndarray) -> np.ndarray:
        """Canonical ITE point estimate (``predict(x).ite_hat``)."""

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate effect-estimation metrics on a labelled dataset."""

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate several datasets with one batched forward pass."""


EstimatorBuilder = Callable[
    [int, Optional[ModelConfig], Optional[ContinualConfig]], ContinualEstimator
]


@dataclass(frozen=True)
class EstimatorSpec:
    """One registry entry: canonical name, builder, tags and a summary line."""

    name: str
    builder: EstimatorBuilder
    tags: Tuple[str, ...] = ()
    summary: str = ""


class EstimatorRegistry:
    """Ordered, case-insensitive name → builder registry.

    Registration order is meaningful: it is the column order of every
    registry-derived table (Table I/II, the confounding sweep, the README
    listing), so a newly registered estimator lands in all of them at once.
    """

    def __init__(self) -> None:
        self._specs: "OrderedDict[str, EstimatorSpec]" = OrderedDict()

    @staticmethod
    def _key(name: str) -> str:
        return name.strip().lower()

    def register(
        self,
        name: str,
        builder: EstimatorBuilder,
        tags: Sequence[str] = (),
        summary: str = "",
        overwrite: bool = False,
    ) -> None:
        """Register ``builder`` under ``name`` (case-insensitive, unique)."""
        if not name or not name.strip():
            raise ValueError("estimator name must be non-empty")
        key = self._key(name)
        if key in self._specs and not overwrite:
            raise ValueError(f"estimator '{name}' is already registered")
        self._specs[key] = EstimatorSpec(
            name=name.strip(), builder=builder, tags=tuple(tags), summary=summary
        )

    def names(self, tag: Optional[str] = None) -> Tuple[str, ...]:
        """Canonical names in registration order, optionally filtered by tag."""
        return tuple(spec.name for spec in self.specs(tag))

    def specs(self, tag: Optional[str] = None) -> Tuple[EstimatorSpec, ...]:
        """Registered specs in registration order, optionally filtered by tag."""
        return tuple(
            spec
            for spec in self._specs.values()
            if tag is None or tag in spec.tags
        )

    def spec(self, name: str) -> EstimatorSpec:
        """Look up one spec by (case-insensitive) name."""
        key = self._key(name)
        if key not in self._specs:
            raise ValueError(
                f"unknown estimator '{name}'; registered: {self.names()}"
            )
        return self._specs[key]

    def build(
        self,
        name: str,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> ContinualEstimator:
        """Construct a fresh estimator by name."""
        return self.spec(name).builder(n_features, model_config, continual_config)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self._key(name) in self._specs

    def __iter__(self) -> Iterator[EstimatorSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


# --------------------------------------------------------------------------- #
# built-in builders (lazy imports: keep this module import-light and acyclic)
# --------------------------------------------------------------------------- #
def _build_cfr_a(n_features, model_config, continual_config):
    from .strategies import CFRStrategyA

    return CFRStrategyA(n_features, model_config)


def _build_cfr_b(n_features, model_config, continual_config):
    from .strategies import CFRStrategyB

    return CFRStrategyB(n_features, model_config)


def _build_cfr_c(n_features, model_config, continual_config):
    from .strategies import CFRStrategyC

    return CFRStrategyC(n_features, model_config)


def _build_cerl(n_features, model_config, continual_config):
    from .cerl import CERL

    return CERL(n_features, model_config, continual_config)


def _build_s_learner(n_features, model_config, continual_config):
    from .learners import SLearner

    return SLearner(n_features, model_config, continual_config)


def _build_t_learner(n_features, model_config, continual_config):
    from .learners import TLearner

    return TLearner(n_features, model_config, continual_config)


def _build_x_learner(n_features, model_config, continual_config):
    from .learners import XLearner

    return XLearner(n_features, model_config, continual_config)


def _build_r_learner(n_features, model_config, continual_config):
    from .learners import RLearner

    return RLearner(n_features, model_config, continual_config)


#: Process-wide default registry; registration order is table column order.
ESTIMATORS = EstimatorRegistry()
ESTIMATORS.register(
    "CFR-A", _build_cfr_a, tags=("paper", "cfr"),
    summary="train on the first domain, freeze afterwards",
)
ESTIMATORS.register(
    "CFR-B", _build_cfr_b, tags=("paper", "cfr"),
    summary="fine-tune the previous model on each new domain",
)
ESTIMATORS.register(
    "CFR-C", _build_cfr_c, tags=("paper", "cfr"),
    summary="keep all raw data, retrain from scratch on the union",
)
ESTIMATORS.register(
    "CERL", _build_cerl, tags=("paper", "continual"),
    summary="continual representation learner with herded memory (the paper's method)",
)
ESTIMATORS.register(
    "S-learner", _build_s_learner, tags=("meta",),
    summary="single outcome regression on [X, T]; ITE = f(x,1) - f(x,0)",
)
ESTIMATORS.register(
    "T-learner", _build_t_learner, tags=("meta",),
    summary="per-arm outcome regressions; ITE = f1(x) - f0(x)",
)
ESTIMATORS.register(
    "X-learner", _build_x_learner, tags=("meta",),
    summary="imputed-effect regressions blended by the propensity score",
)
ESTIMATORS.register(
    "R-learner", _build_r_learner, tags=("meta", "orthogonal"),
    summary="DML residual-on-residual effect regression with crossfit nuisances",
)


def make_estimator(
    name: str,
    n_features: int,
    model_config: Optional[ModelConfig] = None,
    continual_config: Optional[ContinualConfig] = None,
) -> ContinualEstimator:
    """Build a registered estimator by name (case-insensitive).

    Parameters
    ----------
    name:
        A name registered in :data:`ESTIMATORS` — see :func:`estimator_names`.
    n_features:
        Covariate dimensionality.
    model_config, continual_config:
        Optional configurations; estimators that have no continual stage
        accept and ignore ``continual_config`` so all builders share one
        signature.
    """
    return ESTIMATORS.build(name, n_features, model_config, continual_config)


def estimator_names(tag: Optional[str] = None) -> Tuple[str, ...]:
    """Names of all registered estimators, in registration (column) order."""
    return ESTIMATORS.names(tag)


def estimator_specs(tag: Optional[str] = None) -> Tuple[EstimatorSpec, ...]:
    """Specs of all registered estimators, in registration (column) order."""
    return ESTIMATORS.specs(tag)
