"""Feature-representation transformation ``phi_{d-1 -> d}`` (Sec. III-A.3).

Stored representations from the previous feature space are not compatible
with the new encoder's space.  The transformation network maps old
representations into the new space; it is trained with the cosine alignment
loss of Eq. (7) on the *new* domain's data, for which both the old-encoder
and new-encoder representations are available.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn import MLP, Module, Tensor
from ..nn.infer import row_normalize_

__all__ = ["FeatureTransform"]


class FeatureTransform(Module):
    """MLP mapping representations from the previous space to the new space.

    Parameters
    ----------
    representation_dim:
        Dimensionality shared by the old and new representation spaces.
    hidden_sizes:
        Hidden widths of the transformation MLP.
    normalize_output:
        Whether to L2-normalise the transformed representations.  Enabled when
        the encoders use cosine normalisation, so transformed old
        representations live on the same (unit-norm) manifold as the new
        representation space.
    residual:
        Whether the transformation is parameterised as ``r + MLP(r)`` instead
        of ``MLP(r)``.  When the new encoder is warm-started from the old one
        (the default in CERL), the true old-to-new map starts near the
        identity; the residual parameterisation makes the transformation start
        there too, so rehearsal on transformed memory is well-behaved from the
        first epoch.
    """

    def __init__(
        self,
        representation_dim: int,
        hidden_sizes: Sequence[int] = (64,),
        activation: str = "elu",
        normalize_output: bool = False,
        residual: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if representation_dim <= 0:
            raise ValueError("representation_dim must be positive")
        self.representation_dim = representation_dim
        self.normalize_output = normalize_output
        self.residual = residual
        self.network = MLP(
            in_features=representation_dim,
            hidden_sizes=hidden_sizes,
            out_features=representation_dim,
            activation=activation,
            rng=rng,
        )
        if residual:
            # Shrink the initial correction so phi starts close to the identity map.
            for name, param in self.network.named_parameters():
                param.data = param.data * 0.1

    def forward(self, representations: Tensor) -> Tensor:
        """Transform a batch of old-space representations into the new space."""
        out = self.network(representations)
        if self.residual:
            out = representations + out
        if self.normalize_output:
            out = out / out.norm(axis=1, keepdims=True)
        return out

    def infer(self, representations: np.ndarray) -> np.ndarray:
        """Graph-free :meth:`forward` on a raw ndarray (workspace-backed)."""
        out = self.network.infer(representations)
        if self.residual:
            np.add(representations, out, out=out)
        if self.normalize_output:
            row_normalize_(self.workspace(), out)
        return out

    def transform_array(self, representations: np.ndarray) -> np.ndarray:
        """Transform a NumPy array of representations without recording gradients."""
        representations = np.asarray(representations, dtype=np.float64)
        if representations.ndim != 2 or representations.shape[1] != self.representation_dim:
            raise ValueError(
                f"expected representations of shape (n, {self.representation_dim})"
            )
        return self.infer(representations).copy()
