"""Baseline causal-effect learning model (Sec. III-A.1).

This is the learner CERL uses for the *first* domain, and it also serves as
the CFR-style baseline that the three adaptation strategies (Sec. IV-B) are
built on.  It combines:

* the selective representation network ``g_w`` with elastic-net feature
  selection and cosine normalisation (:class:`RepresentationNetwork`),
* the Wasserstein IPM between treated and control representations (Eq. 3),
* the two-headed factual-outcome regression (Eq. 4),

trained jointly with the objective of Eq. (5):
``L = L_Y + alpha * Wass(P, Q) + lambda * L_w``.

Training runs entirely on the shared engine layer: the Eq. (5) objective is
expressed as a :class:`repro.engine.LossBundle` and driven by a
:class:`repro.engine.Trainer` with :class:`~repro.engine.History` and
:class:`~repro.engine.EarlyStopping` callbacks — the epoch/minibatch loop
itself lives in ``repro.engine``, not here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..balance import ipm_distance
from ..data.dataset import CausalDataset
from ..engine import (
    EarlyStopping,
    History,
    LossBundle,
    TraceableLoss,
    Trainer,
    TrainingHistory,
    mse_validator,
)
from ..metrics import EffectEstimate, evaluate_effect_estimate
from ..nn import Adam, CosineAnnealingLR, StepLR, Tensor, mse_loss
from ..utils import Standardizer
from .config import ModelConfig
from .evaluation import evaluate_datasets
from .outcome import OutcomeHeads
from .representation import RepresentationNetwork

__all__ = ["BaselineCausalModel", "TrainingHistory", "EarlyStopping"]


def make_lr_scheduler(config: ModelConfig, optimizer, epochs: int):
    """Build the optional per-epoch LR schedule the Trainer advances.

    ``epochs`` is the *resolved* epoch budget of this fit call (callers may
    override ``config.epochs``), so the cosine schedule anneals over exactly
    the epochs that actually run.
    """
    if config.lr_schedule == "constant":
        return None
    if config.lr_schedule == "step":
        return StepLR(optimizer, step_size=config.lr_step_size, gamma=config.lr_gamma)
    if config.lr_schedule == "cosine":
        return CosineAnnealingLR(optimizer, total_steps=epochs)
    raise ValueError(f"unknown lr_schedule '{config.lr_schedule}'")


class BaselineCausalModel:
    """Selective & balanced representation learner for a single data source.

    Parameters
    ----------
    n_features:
        Covariate dimensionality.
    config:
        Model hyper-parameters (Eq. 5 weights, architecture, optimisation).
    """

    def __init__(self, n_features: int, config: Optional[ModelConfig] = None) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.config = config if config is not None else ModelConfig()
        self.n_features = n_features
        rng = np.random.default_rng(self.config.seed)
        self.encoder = RepresentationNetwork(
            in_features=n_features,
            representation_dim=self.config.representation_dim,
            hidden_sizes=self.config.encoder_hidden,
            activation=self.config.activation,
            use_cosine_norm=self.config.use_cosine_norm,
            standardize=self.config.standardize_covariates,
            l1_ratio=self.config.elastic_net_l1_ratio,
            rng=rng,
        )
        self.heads = OutcomeHeads(
            representation_dim=self.config.representation_dim,
            hidden_sizes=self.config.outcome_hidden,
            activation=self.config.activation,
            rng=rng,
        )
        self.outcome_scaler = Standardizer()
        self.history = TrainingHistory()
        self._rng = rng
        self._fitted = False

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Train the model from scratch on ``dataset`` (objective of Eq. 5).

        When ``val_dataset`` is given, training stops once the validation
        factual loss stops improving and the best parameters are restored
        (disabled when ``early_stopping_patience`` is 0).
        """
        self._validate_dataset(dataset)
        self.encoder.fit_scaler(dataset.covariates)
        if self.config.standardize_outcomes:
            self.outcome_scaler.fit(dataset.outcomes)
        self._fitted = True
        return self._train(dataset, epochs=epochs, val_dataset=val_dataset)

    def fine_tune(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Continue training on new data only (adaptation strategy CFR-B).

        The covariate and outcome scalers fitted on the original data are
        kept, so the model is genuinely updated rather than re-initialised —
        which is exactly what exposes it to catastrophic forgetting.
        """
        if not self._fitted:
            raise RuntimeError("fine_tune called before fit")
        self._validate_dataset(dataset)
        return self._train(dataset, epochs=epochs, val_dataset=val_dataset)

    def _train(
        self,
        dataset: CausalDataset,
        epochs: Optional[int],
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Assemble the Eq. (5) objective and hand the loop to the engine."""
        config = self.config
        epochs = epochs if epochs is not None else config.epochs
        inputs = self.encoder.prepare_inputs(dataset.covariates)
        outcomes = self._scale_outcomes(dataset.outcomes)
        treatments = dataset.treatments

        parameters = self.encoder.parameters() + self.heads.parameters()
        optimizer = Adam(parameters, lr=config.learning_rate, weight_decay=config.weight_decay)

        callbacks = [History(self.history)]
        validate = None
        if val_dataset is not None:
            callbacks.append(
                EarlyStopping(
                    [self.encoder, self.heads],
                    patience=config.early_stopping_patience,
                    min_delta=config.early_stopping_min_delta,
                )
            )
            validate = lambda: self.validation_loss(val_dataset)  # noqa: E731

        def feeds(batch: np.ndarray) -> dict:
            batch_treatments = treatments[batch]
            return {
                "inputs": inputs[batch],
                "outcomes": outcomes[batch],
                "treatments": batch_treatments,
                "treatment_mask": np.asarray(batch_treatments)
                .ravel()
                .astype(np.float64),
            }

        batch_loss = TraceableLoss(
            self._loss_program, feeds, parameters=lambda: parameters
        )

        trainer = Trainer(
            parameters,
            optimizer,
            batch_size=config.batch_size,
            grad_clip=config.grad_clip,
            rng=self._rng,
            scheduler=make_lr_scheduler(config, optimizer, epochs),
            callbacks=callbacks,
            backend=config.backend,
        )
        trainer.fit(len(dataset), batch_loss, epochs=epochs, validate=validate)
        return self.history

    def validation_loss(self, dataset: CausalDataset) -> float:
        """Factual mean squared error (on the standardised outcome scale)."""
        self._check_fitted()
        validate = mse_validator(
            lambda: self.heads.infer_factual(
                self.encoder.infer_representations(dataset.covariates), dataset.treatments
            ),
            self._scale_outcomes(dataset.outcomes),
        )
        return validate()

    def _loss_program(self, env) -> LossBundle:
        """Compose the Eq. (5) objective for one minibatch as a LossBundle.

        ``env`` is an :class:`~repro.engine.EagerEnv` (default backend, one
        immediate evaluation per step — the pre-backend expressions verbatim)
        or a :class:`~repro.engine.TraceEnv` (tape backend, recorded once and
        replayed).  The program is written once against the env protocol.
        """
        config = self.config
        y = env.tensor("outcomes")
        representations = self.encoder.forward(env.tensor("inputs"))
        predictions = self.heads.factual_masked(
            representations, env.tensor("treatment_mask")
        )
        factual = mse_loss(predictions, y)

        treatments = env.array("treatments")
        treated_idx = env.flatnonzero_eq(treatments, 1)
        control_idx = env.flatnonzero_eq(treatments, 0)
        if config.alpha > 0.0 and env.guard(
            lambda t, c: t.size > 1 and c.size > 1, treated_idx, control_idx
        ):
            imbalance = ipm_distance(
                env.take_rows(representations, treated_idx),
                env.take_rows(representations, control_idx),
                kind=config.ipm_kind,
                epsilon=config.sinkhorn_epsilon,
                num_iters=config.sinkhorn_iterations,
            )
        else:
            imbalance = Tensor(0.0)

        bundle = LossBundle()
        bundle.add("factual", factual)
        bundle.add("ipm", imbalance, weight=config.alpha)
        bundle.add("regularization", self.encoder.elastic_net(), weight=config.lambda_reg)
        return bundle

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Predict both potential outcomes for raw covariates.

        Runs entirely on the no-graph inference fast path: representations
        and head outputs are computed on raw ndarrays with reusable
        workspaces, bitwise identical to the Tensor forward under ``no_grad``.
        """
        self._check_fitted()
        representations = self.encoder.infer_representations(covariates)
        y0, y1 = self.heads.infer_potential_outcomes(representations)
        return EffectEstimate(
            y0_hat=self._unscale_outcomes(y0), y1_hat=self._unscale_outcomes(y1)
        )

    def predict_ite(self, covariates: np.ndarray) -> np.ndarray:
        """Canonical ITE point estimate (``predict(x).ite_hat``)."""
        return self.predict(covariates).ite_hat

    def extract_representations(self, covariates: np.ndarray) -> np.ndarray:
        """Return the learned representations ``g_w(x)`` of raw covariates."""
        self._check_fitted()
        return self.encoder.representations(covariates)

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate sqrt(PEHE), ATE error and factual RMSE on a dataset."""
        self._check_fitted()
        if not dataset.has_counterfactuals:
            raise ValueError("evaluation requires a dataset with true potential outcomes")
        estimate = self.predict(dataset.covariates)
        return evaluate_effect_estimate(
            estimate,
            dataset.true_ite,
            treatments=dataset.treatments,
            factual_outcomes=dataset.outcomes,
        )

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate several datasets with one batched forward pass.

        Covariates are concatenated into a single matrix, predicted in one
        forward (one GEMM per layer instead of one per dataset), and the
        metrics are split back per dataset — numerically identical to calling
        :meth:`evaluate` per dataset, but much faster for the seen-test-sets
        sweeps of the stream protocol.
        """
        self._check_fitted()
        return evaluate_datasets(self.predict, datasets)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _scale_outcomes(self, outcomes: np.ndarray) -> np.ndarray:
        if self.config.standardize_outcomes:
            return self.outcome_scaler.transform(outcomes)
        return np.asarray(outcomes, dtype=np.float64)

    def _unscale_outcomes(self, outcomes: np.ndarray) -> np.ndarray:
        if self.config.standardize_outcomes:
            return self.outcome_scaler.inverse_transform(outcomes)
        return outcomes

    def _validate_dataset(self, dataset: CausalDataset) -> None:
        if dataset.n_features != self.n_features:
            raise ValueError(
                f"dataset has {dataset.n_features} covariates, model expects {self.n_features}"
            )
        if len(dataset) < 4:
            raise ValueError("dataset too small to train on")
        if dataset.n_treated == 0 or dataset.n_control == 0:
            raise ValueError("training data must contain both treated and control units")

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("model used before fit()")
