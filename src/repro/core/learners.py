"""Meta-learner estimator zoo: S-, T-, X- and DML-style R-learner.

The paper compares CERL only against CFR adaptation strategies; ROADMAP open
item 1 calls for the standard meta-learner constructions as additional
columns.  All four learners here

* train every regression head on the shared :class:`repro.engine.Trainer`
  through :class:`~repro.engine.TraceableLoss` programs, so
  ``ModelConfig(backend="tape")`` applies to them unchanged;
* implement the :class:`repro.core.api.ContinualEstimator` protocol
  (``observe`` / ``predict`` / ``predict_ite`` / ``evaluate`` /
  ``evaluate_many``), so they drop into streams, serving, drift adaptation,
  the multiprocess fleet and the SLO harness with zero call-site changes;
* checkpoint through the generic ``state_arrays`` / ``load_state_arrays``
  hooks consumed by :func:`repro.core.persistence.save_estimator`.

Constructions (potential outcomes are reconstructed so ``predict`` returns a
full :class:`~repro.metrics.EffectEstimate`, not just the ITE):

* **S-learner** — one regression ``f(x, t)`` on the treatment-augmented
  covariates; ``mu_t(x) = f(x, t)``.
* **T-learner** — per-arm regressions ``f0``/``f1``; ``mu_t(x) = f_t(x)``.
* **X-learner** — T-nuisances plus imputed-effect regressions
  ``tau0`` (on ``f1(X0) - Y0``) and ``tau1`` (on ``Y1 - f0(X1)``), blended by
  the :class:`~repro.core.classic.LogisticPropensityModel` score ``g(x)``:
  ``tau(x) = g(x) tau0(x) + (1 - g(x)) tau1(x)``, anchored at ``mu0 = f0``.
* **R-learner** — DML/orthogonal construction: K-fold *crossfit* nuisances
  ``m(x) = E[Y|X]`` (engine-trained regression) and ``e(x) = P(T=1|X)`` (the
  existing logistic propensity), then the residual-on-residual objective
  ``min_tau mean(((Y - m(X)) - (T - e(X)) tau(X))^2)``.  Potential outcomes
  are reconstructed from full-data nuisances as ``mu0 = m - e tau`` and
  ``mu1 = m + (1 - e) tau``.  The fold loop runs through
  :func:`repro.experiments.parallel.parallel_map`; every fold task is a pure
  function of its payload and a :func:`derive_seed`-derived seed, so
  ``crossfit_workers=N`` is bit-identical to the serial loop (pinned by the
  test suite).

Continual behaviour: the first ``observe`` fits the scalers and trains from
scratch; every later ``observe`` keeps the scalers and warm-starts the
regression heads on the new domain only (CFR-B-style fine-tuning — the
meta-learners keep no raw data and no memory).  ``val_dataset`` is accepted
for protocol compatibility and ignored: the nuisance fits are short and the
meta-learner literature tunes them by crossfitting, not early stopping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import CausalDataset
from ..engine import History, LossBundle, TraceableLoss, Trainer, TrainingHistory
from ..metrics import EffectEstimate, evaluate_effect_estimate
from ..nn import MLP, Adam, mse_loss
from ..utils import Standardizer
from .baseline import make_lr_scheduler
from .classic import LogisticPropensityModel
from .config import ContinualConfig, ModelConfig
from .evaluation import evaluate_datasets
from .persistence import _extract, _flatten_state

__all__ = ["SLearner", "TLearner", "XLearner", "RLearner"]

#: Propensity scores are clipped to [eps, 1-eps] wherever they divide or
#: blend, the standard guard against near-positivity violations.
_PROPENSITY_CLIP = 0.05


class _EngineRegressor:
    """One MLP regression head trained on the shared engine.

    The building block of every meta-learner: standardises inputs (and
    optionally targets), expresses the squared-error objective as a
    ``program(env) -> LossBundle`` with RNG-free feeds, and hands the
    epoch/minibatch loop to :class:`repro.engine.Trainer` — so the tape
    backend, grad clipping and LR schedules all apply unchanged.

    ``fit_residual`` trains the same head against the R-learner objective
    ``mean((y_res - t_res * f(x))^2)`` instead of plain regression.
    """

    def __init__(
        self,
        in_features: int,
        config: ModelConfig,
        rng: np.random.Generator,
        scale_targets: bool = True,
    ) -> None:
        self.config = config
        self.net = MLP(
            in_features,
            config.outcome_hidden,
            1,
            activation=config.activation,
            rng=rng,
        )
        self.input_scaler = Standardizer()
        self.target_scaler = Standardizer()
        self.scale_targets = scale_targets and config.standardize_outcomes
        self._rng = rng
        self.fitted = False

    # -- training ------------------------------------------------------- #
    def fit(self, inputs: np.ndarray, targets: np.ndarray, epochs: int) -> TrainingHistory:
        """(Warm-start) fit against plain squared error."""
        inputs = np.asarray(inputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if not self.fitted:
            self.input_scaler.fit(inputs)
            if self.scale_targets:
                self.target_scaler.fit(targets)
        x = self.input_scaler.transform(inputs)
        y = self.target_scaler.transform(targets) if self.scale_targets else targets

        def program(env) -> LossBundle:
            predictions = self.net.forward(env.tensor("inputs"))
            bundle = LossBundle()
            bundle.add("mse", mse_loss(predictions, env.tensor("targets")))
            return bundle

        def feeds(batch: np.ndarray) -> dict:
            return {"inputs": x[batch], "targets": y[batch][:, None]}

        return self._run(program, feeds, len(x), epochs)

    def fit_residual(
        self,
        inputs: np.ndarray,
        y_residuals: np.ndarray,
        t_residuals: np.ndarray,
        epochs: int,
    ) -> TrainingHistory:
        """(Warm-start) fit against the R-loss ``mean((y_res - t_res f(x))^2)``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        y_res = np.asarray(y_residuals, dtype=np.float64).ravel()
        t_res = np.asarray(t_residuals, dtype=np.float64).ravel()
        if not self.fitted:
            self.input_scaler.fit(inputs)
        x = self.input_scaler.transform(inputs)

        def program(env) -> LossBundle:
            tau = self.net.forward(env.tensor("inputs"))
            predictions = tau * env.tensor("t_res")
            bundle = LossBundle()
            bundle.add("r_loss", mse_loss(predictions, env.tensor("y_res")))
            return bundle

        def feeds(batch: np.ndarray) -> dict:
            return {
                "inputs": x[batch],
                "t_res": t_res[batch][:, None],
                "y_res": y_res[batch][:, None],
            }

        return self._run(program, feeds, len(x), epochs)

    def _run(self, program, feeds, n_units: int, epochs: int) -> TrainingHistory:
        config = self.config
        parameters = self.net.parameters()
        optimizer = Adam(
            parameters, lr=config.learning_rate, weight_decay=config.weight_decay
        )
        history = TrainingHistory()
        batch_loss = TraceableLoss(program, feeds, parameters=lambda: parameters)
        trainer = Trainer(
            parameters,
            optimizer,
            batch_size=config.batch_size,
            grad_clip=config.grad_clip,
            rng=self._rng,
            scheduler=make_lr_scheduler(config, optimizer, epochs),
            callbacks=[History(history)],
            backend=config.backend,
        )
        trainer.fit(n_units, batch_loss, epochs=epochs)
        self.fitted = True
        return history

    # -- inference ------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Predict on the no-graph inference fast path."""
        if not self.fitted:
            raise RuntimeError("regressor used before fit()")
        x = self.input_scaler.transform(np.asarray(inputs, dtype=np.float64))
        out = self.net.infer(x).ravel()
        return self.target_scaler.inverse_transform(out) if self.scale_targets else out

    # -- checkpoint state ----------------------------------------------- #
    def state_arrays(self, prefix: str) -> dict:
        arrays = _flatten_state(f"{prefix}net/", self.net.state_dict())
        if self.input_scaler.is_fitted:
            arrays[f"{prefix}input_scaler/mean"] = self.input_scaler.mean_
            arrays[f"{prefix}input_scaler/std"] = self.input_scaler.std_
        if self.target_scaler.is_fitted:
            arrays[f"{prefix}target_scaler/mean"] = self.target_scaler.mean_
            arrays[f"{prefix}target_scaler/std"] = self.target_scaler.std_
        return arrays

    def load_state_arrays(self, archive: dict, prefix: str) -> None:
        self.net.load_state_dict(_extract(archive, f"{prefix}net/"))
        if f"{prefix}input_scaler/mean" in archive:
            self.input_scaler.mean_ = archive[f"{prefix}input_scaler/mean"]
            self.input_scaler.std_ = archive[f"{prefix}input_scaler/std"]
            self.fitted = True
        if f"{prefix}target_scaler/mean" in archive:
            self.target_scaler.mean_ = archive[f"{prefix}target_scaler/mean"]
            self.target_scaler.std_ = archive[f"{prefix}target_scaler/std"]


def _propensity_arrays(model: LogisticPropensityModel, prefix: str) -> dict:
    arrays = {}
    if model.coefficients_ is not None:
        arrays[f"{prefix}coefficients"] = model.coefficients_
        arrays[f"{prefix}scaler/mean"] = model._scaler.mean_
        arrays[f"{prefix}scaler/std"] = model._scaler.std_
    return arrays


def _load_propensity(model: LogisticPropensityModel, archive: dict, prefix: str) -> None:
    if f"{prefix}coefficients" in archive:
        model.coefficients_ = np.asarray(archive[f"{prefix}coefficients"])
        model._scaler.mean_ = archive[f"{prefix}scaler/mean"]
        model._scaler.std_ = archive[f"{prefix}scaler/std"]


class _MetaLearnerBase:
    """Shared machinery of the meta-learners (protocol + validation + eval)."""

    name = "meta"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        self.n_features = n_features
        self.model_config = model_config if model_config is not None else ModelConfig()
        # Accepted so every estimator shares one construction signature (and
        # one checkpoint meta layout); the meta-learners have no continual
        # stage and never read it.
        self.continual_config = (
            continual_config if continual_config is not None else ContinualConfig()
        )
        self._rng = np.random.default_rng(self.model_config.seed)
        self.domains_seen = 0
        self.histories: List[TrainingHistory] = []

    # -- protocol ------------------------------------------------------- #
    def observe(
        self,
        dataset: CausalDataset,
        epochs: Optional[int] = None,
        val_dataset: Optional[CausalDataset] = None,
    ) -> TrainingHistory:
        """Train on the next available domain (warm-started after the first)."""
        self._validate_dataset(dataset)
        epochs = epochs if epochs is not None else self.model_config.epochs
        history = self._fit_domain(dataset, epochs)
        self.domains_seen += 1
        self.histories.append(history)
        return history

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        raise NotImplementedError

    def predict_ite(self, covariates: np.ndarray) -> np.ndarray:
        """Canonical ITE point estimate."""
        return self.predict(covariates).ite_hat

    def evaluate(self, dataset: CausalDataset) -> Dict[str, float]:
        """Evaluate sqrt(PEHE), ATE error and factual RMSE on a dataset."""
        self._check_fitted()
        if not dataset.has_counterfactuals:
            raise ValueError("evaluation requires a dataset with true potential outcomes")
        estimate = self.predict(dataset.covariates)
        return evaluate_effect_estimate(
            estimate,
            dataset.true_ite,
            treatments=dataset.treatments,
            factual_outcomes=dataset.outcomes,
        )

    def evaluate_many(self, datasets: Sequence[CausalDataset]) -> List[Dict[str, float]]:
        """Evaluate several datasets with one batched forward pass."""
        self._check_fitted()
        return evaluate_datasets(self.predict, datasets)

    # -- subclass hooks -------------------------------------------------- #
    def _fit_domain(self, dataset: CausalDataset, epochs: int) -> TrainingHistory:
        raise NotImplementedError

    def state_arrays(self) -> dict:
        raise NotImplementedError

    def load_state_arrays(self, archive: dict) -> None:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------- #
    def _validate_dataset(self, dataset: CausalDataset) -> None:
        if dataset.n_features != self.n_features:
            raise ValueError(
                f"dataset has {dataset.n_features} covariates, model expects {self.n_features}"
            )
        if len(dataset) < 4:
            raise ValueError("dataset too small to train on")
        if dataset.n_treated == 0 or dataset.n_control == 0:
            raise ValueError("training data must contain both treated and control units")

    def _check_fitted(self) -> None:
        if self.domains_seen == 0:
            raise RuntimeError(f"{self.name} used before observing any domain")


class SLearner(_MetaLearnerBase):
    """Single-model meta-learner: one regression on treatment-augmented X."""

    name = "S-learner"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> None:
        super().__init__(n_features, model_config, continual_config)
        self._regressor = _EngineRegressor(n_features + 1, self.model_config, self._rng)

    def _fit_domain(self, dataset: CausalDataset, epochs: int) -> TrainingHistory:
        augmented = self._augment(dataset.covariates, dataset.treatments)
        return self._regressor.fit(augmented, dataset.outcomes, epochs)

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        self._check_fitted()
        covariates = np.asarray(covariates, dtype=np.float64)
        y0 = self._regressor.predict(self._augment(covariates, np.zeros(len(covariates))))
        y1 = self._regressor.predict(self._augment(covariates, np.ones(len(covariates))))
        return EffectEstimate(y0_hat=y0, y1_hat=y1)

    @staticmethod
    def _augment(covariates: np.ndarray, treatments: np.ndarray) -> np.ndarray:
        covariates = np.asarray(covariates, dtype=np.float64)
        column = np.asarray(treatments, dtype=np.float64).reshape(-1, 1)
        return np.hstack([covariates, column])

    def state_arrays(self) -> dict:
        return self._regressor.state_arrays("regressor/")

    def load_state_arrays(self, archive: dict) -> None:
        self._regressor.load_state_arrays(archive, "regressor/")


class TLearner(_MetaLearnerBase):
    """Two-model meta-learner: one outcome regression per treatment arm."""

    name = "T-learner"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> None:
        super().__init__(n_features, model_config, continual_config)
        # Fixed construction order (control, treated) pins the RNG draws.
        self._arms: Dict[int, _EngineRegressor] = {
            arm: _EngineRegressor(n_features, self.model_config, self._rng)
            for arm in (0, 1)
        }

    def _fit_domain(self, dataset: CausalDataset, epochs: int) -> TrainingHistory:
        history = TrainingHistory()
        for arm in (0, 1):
            mask = dataset.treatments == arm
            history = self._arms[arm].fit(
                dataset.covariates[mask], dataset.outcomes[mask], epochs
            )
        return history

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        self._check_fitted()
        return EffectEstimate(
            y0_hat=self._arms[0].predict(covariates),
            y1_hat=self._arms[1].predict(covariates),
        )

    def state_arrays(self) -> dict:
        arrays = self._arms[0].state_arrays("arm0/")
        arrays.update(self._arms[1].state_arrays("arm1/"))
        return arrays

    def load_state_arrays(self, archive: dict) -> None:
        self._arms[0].load_state_arrays(archive, "arm0/")
        self._arms[1].load_state_arrays(archive, "arm1/")


class XLearner(_MetaLearnerBase):
    """X-learner: imputed-effect regressions blended by the propensity score."""

    name = "X-learner"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
    ) -> None:
        super().__init__(n_features, model_config, continual_config)
        self._outcome: Dict[int, _EngineRegressor] = {
            arm: _EngineRegressor(n_features, self.model_config, self._rng)
            for arm in (0, 1)
        }
        # Effect targets are imputed ITEs (already roughly centred); leave
        # them unscaled so tau predictions stay on the outcome scale.
        self._effect: Dict[int, _EngineRegressor] = {
            arm: _EngineRegressor(
                n_features, self.model_config, self._rng, scale_targets=False
            )
            for arm in (0, 1)
        }
        self._propensity = LogisticPropensityModel()

    def _fit_domain(self, dataset: CausalDataset, epochs: int) -> TrainingHistory:
        control = dataset.treatments == 0
        treated = dataset.treatments == 1
        x0, y0 = dataset.covariates[control], dataset.outcomes[control]
        x1, y1 = dataset.covariates[treated], dataset.outcomes[treated]

        # Stage 1: per-arm outcome nuisances.
        self._outcome[0].fit(x0, y0, epochs)
        self._outcome[1].fit(x1, y1, epochs)

        # Stage 2: imputed individual effects, regressed per arm.
        d0 = self._outcome[1].predict(x0) - y0
        d1 = y1 - self._outcome[0].predict(x1)
        self._effect[0].fit(x0, d0, epochs)
        history = self._effect[1].fit(x1, d1, epochs)

        # Blend weights: the propensity reflects the newest domain.
        self._propensity.fit(dataset.covariates, dataset.treatments)
        return history

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        self._check_fitted()
        covariates = np.asarray(covariates, dtype=np.float64)
        g = np.clip(
            self._propensity.predict_proba(covariates),
            _PROPENSITY_CLIP,
            1.0 - _PROPENSITY_CLIP,
        )
        tau = g * self._effect[0].predict(covariates) + (1.0 - g) * self._effect[
            1
        ].predict(covariates)
        y0 = self._outcome[0].predict(covariates)
        return EffectEstimate(y0_hat=y0, y1_hat=y0 + tau)

    def state_arrays(self) -> dict:
        arrays = self._outcome[0].state_arrays("outcome0/")
        arrays.update(self._outcome[1].state_arrays("outcome1/"))
        arrays.update(self._effect[0].state_arrays("effect0/"))
        arrays.update(self._effect[1].state_arrays("effect1/"))
        arrays.update(_propensity_arrays(self._propensity, "propensity/"))
        return arrays

    def load_state_arrays(self, archive: dict) -> None:
        self._outcome[0].load_state_arrays(archive, "outcome0/")
        self._outcome[1].load_state_arrays(archive, "outcome1/")
        self._effect[0].load_state_arrays(archive, "effect0/")
        self._effect[1].load_state_arrays(archive, "effect1/")
        _load_propensity(self._propensity, archive, "propensity/")


def _crossfit_fold(task: tuple) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fit both nuisances on one fold's training split; predict its eval split.

    Module-level so :func:`parallel_map` can pickle it, and a pure function of
    the payload: the regressor draws every random number from the
    fold-derived seed, so the result is independent of which process (or
    order) executes the fold — that is what makes ``crossfit_workers=N``
    bit-identical to the serial loop.
    """
    (
        eval_indices,
        train_x,
        train_y,
        train_t,
        eval_x,
        config,
        epochs,
        fold_seed,
    ) = task
    regressor = _EngineRegressor(
        train_x.shape[1], config, np.random.default_rng(fold_seed)
    )
    regressor.fit(train_x, train_y, epochs)
    propensity = LogisticPropensityModel().fit(train_x, train_t)
    return eval_indices, regressor.predict(eval_x), propensity.predict_proba(eval_x)


class RLearner(_MetaLearnerBase):
    """DML-style R-learner with crossfit nuisances.

    Parameters
    ----------
    n_features, model_config, continual_config:
        As for every registered estimator (``continual_config`` unused).
    n_folds:
        Crossfitting folds K (adaptively reduced on tiny domains so every
        fold keeps something to train on).
    crossfit_workers:
        Fan the K fold fits over a process pool
        (:func:`~repro.experiments.parallel.parallel_map`); any value returns
        bit-identical nuisances because each fold seeds itself from
        :func:`~repro.experiments.parallel.derive_seed`.
    crossfit_force_parallel:
        Bypass the core-count clamp (determinism tests on small machines).
    """

    name = "R-learner"

    def __init__(
        self,
        n_features: int,
        model_config: Optional[ModelConfig] = None,
        continual_config: Optional[ContinualConfig] = None,
        n_folds: int = 3,
        crossfit_workers: int = 1,
        crossfit_force_parallel: bool = False,
    ) -> None:
        super().__init__(n_features, model_config, continual_config)
        if n_folds < 2:
            raise ValueError("crossfitting needs at least 2 folds")
        self.n_folds = n_folds
        self.crossfit_workers = crossfit_workers
        self.crossfit_force_parallel = crossfit_force_parallel
        # tau is an effect head: residual targets are centred, keep them raw.
        self._tau = _EngineRegressor(
            n_features, self.model_config, self._rng, scale_targets=False
        )
        # Full-data nuisances, kept for potential-outcome reconstruction.
        self._outcome = _EngineRegressor(n_features, self.model_config, self._rng)
        self._propensity = LogisticPropensityModel()

    def _fit_domain(self, dataset: CausalDataset, epochs: int) -> TrainingHistory:
        from ..experiments.parallel import derive_seed, parallel_map

        x = np.asarray(dataset.covariates, dtype=np.float64)
        y = np.asarray(dataset.outcomes, dtype=np.float64).ravel()
        t = np.asarray(dataset.treatments, dtype=np.float64).ravel()
        n = len(y)
        n_folds = max(2, min(self.n_folds, n // 4))
        if n < 8:
            raise ValueError("R-learner crossfitting needs at least 8 units")

        # Deterministic fold assignment: a seed-derived permutation split into
        # K near-equal chunks.  Derived (not drawn from self._rng) so the
        # serial and parallel paths consume identical randomness.
        assign_seed = derive_seed(
            self.model_config.seed, "rlearner", "folds", self.domains_seen
        )
        order = np.random.default_rng(assign_seed).permutation(n)
        folds = np.array_split(order, n_folds)

        tasks = []
        for k, eval_indices in enumerate(folds):
            train_mask = np.ones(n, dtype=bool)
            train_mask[eval_indices] = False
            tasks.append(
                (
                    eval_indices,
                    x[train_mask],
                    y[train_mask],
                    t[train_mask],
                    x[eval_indices],
                    self.model_config,
                    epochs,
                    derive_seed(
                        self.model_config.seed, "rlearner", "fold", self.domains_seen, k
                    ),
                )
            )
        fold_results = parallel_map(
            _crossfit_fold,
            tasks,
            workers=self.crossfit_workers,
            force_parallel=self.crossfit_force_parallel,
        )

        m_hat = np.empty(n, dtype=np.float64)
        e_hat = np.empty(n, dtype=np.float64)
        for eval_indices, fold_m, fold_e in fold_results:
            m_hat[eval_indices] = fold_m
            e_hat[eval_indices] = fold_e
        e_hat = np.clip(e_hat, _PROPENSITY_CLIP, 1.0 - _PROPENSITY_CLIP)

        # Residual-on-residual effect regression (the orthogonal objective).
        history = self._tau.fit_residual(x, y - m_hat, t - e_hat, epochs)

        # Full-data nuisances for mu0/mu1 reconstruction at predict time.
        self._outcome.fit(x, y, epochs)
        self._propensity.fit(x, t)
        return history

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        self._check_fitted()
        covariates = np.asarray(covariates, dtype=np.float64)
        m = self._outcome.predict(covariates)
        e = np.clip(
            self._propensity.predict_proba(covariates),
            _PROPENSITY_CLIP,
            1.0 - _PROPENSITY_CLIP,
        )
        tau = self._tau.predict(covariates)
        return EffectEstimate(y0_hat=m - e * tau, y1_hat=m + (1.0 - e) * tau)

    def state_arrays(self) -> dict:
        arrays = self._tau.state_arrays("tau/")
        arrays.update(self._outcome.state_arrays("outcome/"))
        arrays.update(_propensity_arrays(self._propensity, "propensity/"))
        return arrays

    def load_state_arrays(self, archive: dict) -> None:
        self._tau.load_state_arrays(archive, "tau/")
        self._outcome.load_state_arrays(archive, "outcome/")
        _load_propensity(self._propensity, archive, "propensity/")
