"""Traffic windows: the data side of drift monitoring.

Drift detection compares *what the model is being asked about now* against
*what it was trained on*.  :class:`RollingWindow` is a bounded ring buffer of
the most recent query rows; :class:`TrafficMonitor` pairs one rolling window
with a frozen **reference window** captured from the training domain and
plugs into :meth:`repro.serve.PredictionService.add_observer` so every row
flowing through the service is recorded as a side effect of serving it.

The monitor is thread-safe (client threads submit concurrently) but makes no
ordering promise under concurrency; the deterministic-replay guarantees of
``repro.experiments.autoadapt`` hold for sequential traffic tapes.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

__all__ = ["RollingWindow", "TrafficMonitor"]


class RollingWindow:
    """Bounded ring buffer of the most recent ``capacity`` covariate rows.

    Rows are stored in one preallocated ``(capacity, n_features)`` array, so
    steady-state recording performs no allocation; :meth:`values` materialises
    the contents in arrival order (oldest first) as a copy.
    """

    def __init__(self, capacity: int, n_features: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if n_features < 1:
            raise ValueError("n_features must be at least 1")
        self.capacity = capacity
        self.n_features = n_features
        self._buffer = np.empty((capacity, n_features), dtype=np.float64)
        self._cursor = 0
        self._count = 0
        self._total = 0

    def __len__(self) -> int:
        return self._count

    @property
    def total_seen(self) -> int:
        """Rows recorded over the window's lifetime (including evicted ones)."""
        return self._total

    @property
    def is_full(self) -> bool:
        """Whether the buffer holds ``capacity`` rows."""
        return self._count == self.capacity

    def extend(self, rows: np.ndarray) -> None:
        """Record a ``(k, n_features)`` block of rows (values are copied)."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows.reshape(1, -1)
        if rows.ndim != 2 or rows.shape[1] != self.n_features:
            raise ValueError(
                f"rows must have shape (k, {self.n_features}); got {rows.shape}"
            )
        self._total += rows.shape[0]
        if rows.shape[0] >= self.capacity:
            # Only the trailing ``capacity`` rows survive; reset the ring.
            self._buffer[:] = rows[-self.capacity :]
            self._cursor = 0
            self._count = self.capacity
            return
        first = min(rows.shape[0], self.capacity - self._cursor)
        self._buffer[self._cursor : self._cursor + first] = rows[:first]
        if first < rows.shape[0]:
            self._buffer[: rows.shape[0] - first] = rows[first:]
        self._cursor = (self._cursor + rows.shape[0]) % self.capacity
        self._count = min(self._count + rows.shape[0], self.capacity)

    def values(self) -> np.ndarray:
        """Contents in arrival order, oldest row first (copy)."""
        if self._count < self.capacity:
            return self._buffer[: self._count].copy()
        if self._cursor == 0:
            return self._buffer.copy()
        return np.concatenate(
            [self._buffer[self._cursor :], self._buffer[: self._cursor]], axis=0
        )

    def clear(self) -> None:
        """Drop the contents (``total_seen`` keeps counting)."""
        self._cursor = 0
        self._count = 0


class TrafficMonitor:
    """Frozen reference window + rolling window over live serving traffic.

    Parameters
    ----------
    reference:
        ``(n_ref, p)`` covariates of the domain the served model was trained
        on.  Copied and frozen; drift is always measured against it until
        :meth:`rebase` installs a post-adaptation reference.
    window_capacity:
        Size of the rolling traffic window.  Defaults to ``n_ref // 2``
        (at least 2) so the permutation calibration of
        :class:`~repro.monitor.detectors.DriftDetector` can split the
        reference into pseudo-windows of the serving-time size.
    """

    def __init__(self, reference: np.ndarray, window_capacity: Optional[int] = None) -> None:
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[0] < 2:
            raise ValueError("reference must be a 2-D array with at least two rows")
        if window_capacity is None:
            window_capacity = max(2, reference.shape[0] // 2)
        if window_capacity < 2:
            raise ValueError("window_capacity must be at least 2")
        self._reference = reference.copy()
        self._reference.setflags(write=False)
        self._window = RollingWindow(window_capacity, reference.shape[1])  # guarded-by: _lock
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording (the service observer hook)
    # ------------------------------------------------------------------ #
    def observe(self, rows: np.ndarray) -> None:
        """Record query rows; the signature of a ``PredictionService`` observer."""
        with self._lock:
            self._window.extend(rows)

    def attach(self, service) -> "TrafficMonitor":
        """Register :meth:`observe` on a :class:`~repro.serve.PredictionService`."""
        service.add_observer(self.observe)
        return self

    def detach(self, service) -> None:
        """Unregister from a previously attached service."""
        service.remove_observer(self.observe)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def reference(self) -> np.ndarray:
        """The frozen training-domain covariates (read-only array)."""
        return self._reference

    @property
    def n_features(self) -> int:
        """Covariate dimensionality of the monitored traffic."""
        return self._reference.shape[1]

    @property
    def window_capacity(self) -> int:
        """Rolling-window size used for drift scoring."""
        with self._lock:
            return self._window.capacity

    @property
    def is_warm(self) -> bool:
        """Whether the rolling window is full (drift scores are meaningful)."""
        with self._lock:
            return self._window.is_full

    @property
    def rows_seen(self) -> int:
        """Total rows recorded since construction (or the last rebase)."""
        with self._lock:
            return self._window.total_seen

    def window_values(self) -> np.ndarray:
        """Snapshot of the rolling window, oldest row first."""
        with self._lock:
            return self._window.values()

    # ------------------------------------------------------------------ #
    # adaptation support
    # ------------------------------------------------------------------ #
    def drain(self) -> np.ndarray:
        """Return the window contents and clear it (the adaptation hand-off)."""
        with self._lock:
            values = self._window.values()
            self._window.clear()
            return values

    def rebase(self, reference: np.ndarray) -> None:
        """Install a new frozen reference (after adapting to a new domain).

        The rolling window is cleared: traffic served before the swap was
        answered by the old model and must not count against the new
        reference.  The window capacity is preserved.
        """
        reference = np.asarray(reference, dtype=np.float64)
        if reference.ndim != 2 or reference.shape[1] != self.n_features:
            raise ValueError(
                f"new reference must have shape (n, {self.n_features}); got {reference.shape}"
            )
        if reference.shape[0] < 2:
            raise ValueError("reference must contain at least two rows")
        with self._lock:
            self._reference = reference.copy()
            self._reference.setflags(write=False)
            self._window = RollingWindow(self._window.capacity, self.n_features)
