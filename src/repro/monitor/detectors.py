"""Two-sample drift statistics with permutation-calibrated thresholds.

A drift check asks: *could the current traffic window plausibly have been
drawn from the training distribution?*  The statistics are the repo's own
balancing IPMs, computed graph-free on raw ndarrays (the no-graph inference
idiom — monitoring runs inside the serving loop and must never build autograd
graphs):

* ``mmd_linear`` / ``mmd_rbf`` — the :mod:`repro.balance` MMD estimators via
  their ndarray front-doors (bit-identical to the Tensor versions);
* ``wasserstein_1d`` — the exact 1-D Wasserstein distance per covariate
  (quantile-function form, :func:`repro.balance.wasserstein_1d_exact`),
  averaged over features.

There is no magic threshold constant: :meth:`DriftDetector.calibrate` builds
a null distribution by repeatedly splitting the *reference* window into
pseudo-(reference, window) pairs with a seeded permutation and takes a
quantile of the resulting statistics.  Detection is therefore a
deterministic, seeded decision — the same reference, window and seed always
breach at exactly the same point, which the replay tests pin.

Scoring against a frozen reference lets the reference-side work be computed
once at calibration time (the reference self-kernel term of the RBF MMD, the
reference mean, the per-feature sorted reference columns); :meth:`score`
reuses those cached terms and still returns bit-for-bit the same value as the
uncached :func:`drift_statistic` — pinned by the detector parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..balance import (
    mmd2_linear_np,
    mmd2_rbf_np,
    rbf_kernel_mean_np,
    wasserstein_1d_exact,
)

__all__ = ["DRIFT_STATISTICS", "DriftScore", "DriftDetector", "drift_statistic"]

DRIFT_STATISTICS = ("mmd_linear", "mmd_rbf", "wasserstein_1d")


def _as_window(values: np.ndarray, label: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] < 2:
        raise ValueError(f"{label} must be a 2-D array with at least two rows")
    return array


def _wasserstein_mean(reference: np.ndarray, window: np.ndarray) -> float:
    if reference.shape[1] != window.shape[1]:
        raise ValueError(
            "reference and window must share the covariate dimension; "
            f"got {reference.shape[1]} and {window.shape[1]}"
        )
    distances = [
        wasserstein_1d_exact(reference[:, feature], window[:, feature])
        for feature in range(reference.shape[1])
    ]
    return float(np.mean(distances))


def drift_statistic(
    reference: np.ndarray, window: np.ndarray, statistic: str, sigma: float = 1.0
) -> float:
    """Compute one two-sample drift statistic on raw ndarrays (no caching)."""
    reference = _as_window(reference, "reference")
    window = _as_window(window, "window")
    if statistic == "mmd_linear":
        return mmd2_linear_np(reference, window)
    if statistic == "mmd_rbf":
        return mmd2_rbf_np(reference, window, sigma=sigma)
    if statistic == "wasserstein_1d":
        return _wasserstein_mean(reference, window)
    raise ValueError(
        f"unknown drift statistic '{statistic}'; valid: {DRIFT_STATISTICS}"
    )


@dataclass(frozen=True)
class DriftScore:
    """Result of one drift check."""

    statistic: float
    threshold: float

    @property
    def breach(self) -> bool:
        """Whether the window's statistic exceeds the calibrated threshold."""
        return self.statistic > self.threshold


class DriftDetector:
    """Seeded, permutation-calibrated two-sample drift detector.

    Parameters
    ----------
    statistic:
        One of :data:`DRIFT_STATISTICS`.
    sigma:
        RBF bandwidth (``mmd_rbf`` only): a positive float, or ``"median"``
        (default) to resolve the bandwidth from the reference at calibration
        time via the median heuristic ``sigma^2 = median(||x - x'||^2) / 2``.
        A fixed bandwidth on raw covariates easily saturates the kernel (all
        pairwise values ~0 or ~1), which makes the statistic insensitive to
        the data; the heuristic keeps the kernel responsive at the
        reference's own length scale.  The resolved value is available as
        :attr:`bandwidth` after calibration.
    quantile:
        Null-distribution quantile used as the threshold; ``0.95`` targets a
        5% false-alarm rate per check under stationary traffic.
    n_permutations:
        Size of the permutation null sample.
    seed:
        Seed of the calibration permutations — the whole detection trajectory
        is a deterministic function of (reference, traffic, seed).
    """

    def __init__(
        self,
        statistic: str = "mmd_rbf",
        sigma: Union[float, str] = "median",
        quantile: float = 0.95,
        n_permutations: int = 100,
        seed: int = 0,
    ) -> None:
        if statistic not in DRIFT_STATISTICS:
            raise ValueError(
                f"unknown drift statistic '{statistic}'; valid: {DRIFT_STATISTICS}"
            )
        if isinstance(sigma, str):
            if sigma != "median":
                raise ValueError(f"sigma must be positive or 'median'; got '{sigma}'")
        elif sigma <= 0.0:
            raise ValueError("sigma must be positive")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must lie in (0, 1]")
        if n_permutations < 1:
            raise ValueError("n_permutations must be at least 1")
        self.statistic = statistic
        self.sigma = sigma
        self.quantile = quantile
        self.n_permutations = n_permutations
        self.seed = seed
        self._threshold: Optional[float] = None
        self._null: Optional[np.ndarray] = None
        self._reference: Optional[np.ndarray] = None
        # Cached reference-side terms (see _prepare_cache).
        self._bandwidth: Optional[float] = None if isinstance(sigma, str) else float(sigma)
        self._gamma: Optional[float] = None
        self._ref_kernel_mean: Optional[float] = None
        self._ref_mean: Optional[np.ndarray] = None
        self._ref_sorted: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(self, reference: np.ndarray, window_size: int) -> "DriftDetector":
        """Fit the detection threshold from the reference window alone.

        ``n_permutations`` seeded permutations split the reference into a
        pseudo-window of ``min(window_size, n_ref // 2)`` rows and a
        pseudo-reference of the remaining rows; the threshold is the
        configured quantile of the statistics over those null splits (the
        ``"higher"`` quantile, so it is always an actually-achieved null
        value).  When the reference is not larger than the serving window the
        pseudo-splits are smaller than the serving-time comparison, which
        inflates the null statistics slightly — a conservative threshold.
        """
        reference = _as_window(reference, "reference")
        if reference.shape[0] < 4:
            raise ValueError("calibration requires at least four reference rows")
        if window_size < 2:
            raise ValueError("window_size must be at least 2")
        if isinstance(self.sigma, str) and self.statistic == "mmd_rbf":
            self._bandwidth = _median_bandwidth(reference, self.seed)
        split = min(window_size, reference.shape[0] // 2)
        rng = np.random.default_rng(self.seed)
        null = np.empty(self.n_permutations)
        for index in range(self.n_permutations):
            permutation = rng.permutation(reference.shape[0])
            pseudo_window = reference[permutation[:split]]
            pseudo_reference = reference[permutation[split:]]
            null[index] = drift_statistic(
                pseudo_reference,
                pseudo_window,
                self.statistic,
                # The bandwidth is resolved only for the RBF statistic; the
                # other branches ignore sigma entirely.
                sigma=self._bandwidth if self._bandwidth is not None else 1.0,
            )
        self._threshold = float(np.quantile(null, self.quantile, method="higher"))
        self._null = null
        self._reference = reference.copy()
        self._prepare_cache()
        return self

    def _prepare_cache(self) -> None:
        """Precompute the reference-side terms reused by every score call."""
        reference = self._reference
        assert reference is not None
        self._ref_kernel_mean = None
        self._ref_mean = None
        self._ref_sorted = None
        if self.statistic == "mmd_rbf":
            self._gamma = 1.0 / (2.0 * self._bandwidth ** 2)
            self._ref_kernel_mean = rbf_kernel_mean_np(reference, reference, self._gamma)
        elif self.statistic == "mmd_linear":
            self._ref_mean = reference.sum(axis=0) * (1.0 / reference.shape[0])
        else:  # wasserstein_1d
            self._ref_sorted = np.sort(reference, axis=0)

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    @property
    def threshold(self) -> float:
        """The calibrated detection threshold."""
        self._check_calibrated()
        return self._threshold  # type: ignore[return-value]

    @property
    def bandwidth(self) -> float:
        """The resolved RBF bandwidth (after calibration when ``"median"``)."""
        if self._bandwidth is None:
            raise RuntimeError("bandwidth is resolved by calibrate()")
        return self._bandwidth

    @property
    def null_statistics(self) -> np.ndarray:
        """The permutation null sample the threshold was taken from (copy)."""
        self._check_calibrated()
        return self._null.copy()  # type: ignore[union-attr]

    def score(self, window: np.ndarray) -> DriftScore:
        """Score one traffic window against the calibrated reference.

        Uses the cached reference-side terms; the value is bit-identical to
        ``drift_statistic(reference, window, statistic)`` (the cached terms
        are the same deterministic subexpressions, computed once).
        """
        self._check_calibrated()
        window = _as_window(window, "window")
        reference = self._reference
        assert reference is not None
        if window.shape[1] != reference.shape[1]:
            raise ValueError(
                "window and reference must share the covariate dimension; "
                f"got {window.shape[1]} and {reference.shape[1]}"
            )
        if self.statistic == "mmd_rbf":
            value = (
                self._ref_kernel_mean
                + rbf_kernel_mean_np(window, window, self._gamma)
                - 2.0 * rbf_kernel_mean_np(reference, window, self._gamma)
            )
        elif self.statistic == "mmd_linear":
            diff = self._ref_mean - window.sum(axis=0) * (1.0 / window.shape[0])
            value = float((diff * diff).sum())
        else:  # wasserstein_1d
            value = float(
                np.mean(
                    [
                        _wasserstein_1d_presorted(
                            self._ref_sorted[:, feature], window[:, feature]
                        )
                        for feature in range(window.shape[1])
                    ]
                )
            )
        return DriftScore(statistic=float(value), threshold=self._threshold)

    def _check_calibrated(self) -> None:
        if self._threshold is None:
            raise RuntimeError("DriftDetector used before calibrate()")


def _median_bandwidth(reference: np.ndarray, seed: int, max_rows: int = 256) -> float:
    """Median-heuristic RBF bandwidth: ``sigma^2 = median(||x - x'||^2) / 2``.

    Computed over (a seeded subsample of) the reference's distinct row pairs,
    so the kernel evaluates to ``exp(-1)`` at the reference's median squared
    distance — responsive exactly at the data's own length scale.  Degenerate
    references (all rows identical) fall back to ``sigma = 1``.
    """
    rows = reference
    if rows.shape[0] > max_rows:
        picks = np.random.default_rng(seed).choice(rows.shape[0], size=max_rows, replace=False)
        rows = rows[picks]
    sq_norms = (rows * rows).sum(axis=1, keepdims=True)
    d2 = np.clip(sq_norms + sq_norms.T - 2.0 * (rows @ rows.T), 0.0, np.inf)
    median = float(np.median(d2[np.triu_indices(rows.shape[0], k=1)]))
    if median <= 0.0:
        return 1.0
    return float(np.sqrt(median / 2.0))


def _wasserstein_1d_presorted(a_sorted: np.ndarray, b: np.ndarray) -> float:
    """Exact 1-D Wasserstein with the first sample already sorted.

    Mirrors :func:`repro.balance.wasserstein_1d_exact` exactly: sorting is
    idempotent and the pooled mergesort of two samples yields the same order
    for the same multiset, so the result is bit-identical to the uncached
    function.
    """
    b_sorted = np.sort(b.ravel())
    all_points = np.concatenate([a_sorted, b_sorted])
    all_points.sort(kind="mergesort")
    deltas = np.diff(all_points)
    cdf_a = np.searchsorted(a_sorted, all_points[:-1], side="right") / a_sorted.size
    cdf_b = np.searchsorted(b_sorted, all_points[:-1], side="right") / b_sorted.size
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))
