"""Drift monitoring and automatic continual adaptation.

Turns the continual serving stack (:mod:`repro.serve`) into a closed loop:

* :class:`TrafficMonitor` / :class:`RollingWindow` — tap the rows flowing
  through a :class:`~repro.serve.PredictionService` (observer hook) into a
  bounded rolling window, next to a frozen reference window from the
  training domain;
* :class:`DriftDetector` — graph-free two-sample statistics (linear/RBF MMD
  via the :mod:`repro.balance` ndarray front-doors, exact per-feature 1-D
  Wasserstein) with a permutation-calibrated, seeded threshold;
* :class:`AdaptationController` — consecutive-breach trigger with cooldown;
  on confirmed drift it assembles the buffered traffic into a new domain,
  retrains the learner (one ordinary ``observe`` stage — CERL with memory
  herding), versions the result in the :class:`~repro.serve.ModelRegistry`,
  hot-swaps the live service, and rolls back if validation regresses.

The end-to-end loop is driven by
:func:`repro.experiments.run_auto_adaptation` and demonstrated by
``examples/auto_adaptation.py``.
"""

from .controller import (
    AdaptationController,
    AdaptationEvent,
    DriftCheck,
    TriggerPolicy,
    validation_factual_rmse,
)
from .detectors import DRIFT_STATISTICS, DriftDetector, DriftScore, drift_statistic
from .window import RollingWindow, TrafficMonitor

__all__ = [
    "AdaptationController",
    "AdaptationEvent",
    "DriftCheck",
    "TriggerPolicy",
    "validation_factual_rmse",
    "DRIFT_STATISTICS",
    "DriftDetector",
    "DriftScore",
    "drift_statistic",
    "RollingWindow",
    "TrafficMonitor",
]
