"""Automatic continual adaptation: the policy side of drift monitoring.

:class:`AdaptationController` closes the serving loop: a
:class:`~repro.monitor.window.TrafficMonitor` taps the rows flowing through a
:class:`~repro.serve.PredictionService`, a
:class:`~repro.monitor.detectors.DriftDetector` scores the rolling window
against the frozen training reference, and when drift is *confirmed* (a
consecutive-breach trigger, not a single noisy check) the controller:

1. drains the buffered traffic and asks a ``labeler`` to assemble it into a
   labelled :class:`~repro.data.dataset.CausalDataset` (in the experiment
   drivers the synthetic generator's structural functions play the role of
   the delayed ground-truth feedback a production system would collect);
2. retrains the held learner on the new domain through the ordinary
   ``ContinualEstimator.observe`` protocol — for CERL that is one continual
   stage with memory herding, exactly as if an experiment driver had advanced
   a stream;
3. compares a validation metric before/after; if the adapted model holds up,
   it is saved as the next version of the stream in the
   :class:`~repro.serve.ModelRegistry` and hot-swapped into the live service,
   and the monitor is rebased onto the new domain;
4. otherwise the adaptation is **rolled back**: the learner is restored from
   the registry's current head and the service keeps serving the old version.

A cooldown after every decision keeps a persistently drifting window from
re-triggering before fresh traffic has been observed.  ``check()`` is
synchronous and deterministic; drive it from the serving loop at whatever
cadence suits the deployment (the auto-adaptation driver checks once per
traffic tick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..data.dataset import CausalDataset
from ..metrics import factual_rmse
from .detectors import DriftDetector
from .window import TrafficMonitor

__all__ = [
    "AdaptationController",
    "AdaptationEvent",
    "DriftCheck",
    "TriggerPolicy",
    "validation_factual_rmse",
]


@dataclass(frozen=True)
class TriggerPolicy:
    """When a drift signal becomes an adaptation.

    Attributes
    ----------
    consecutive_breaches:
        Checks in a row that must breach before adapting; absorbs the
        false-alarm rate of a single check (``1`` adapts on first breach).
    cooldown_checks:
        Checks skipped after every adaptation decision (accepted or rolled
        back), giving the window time to refill with fresh traffic.
    """

    consecutive_breaches: int = 2
    cooldown_checks: int = 2

    def __post_init__(self) -> None:
        if self.consecutive_breaches < 1:
            raise ValueError("consecutive_breaches must be at least 1")
        if self.cooldown_checks < 0:
            raise ValueError("cooldown_checks must be non-negative")


@dataclass(frozen=True)
class DriftCheck:
    """Outcome of one :meth:`AdaptationController.check` call."""

    index: int
    #: Drift statistic of this check (``nan`` when the check was skipped).
    statistic: float
    threshold: float
    breach: bool
    #: Consecutive breaches including this check (0 when not breaching).
    consecutive: int
    #: ``"none" | "warming" | "cooldown" | "breach" | "adapted" | "rolled_back"``
    action: str


@dataclass(frozen=True)
class AdaptationEvent:
    """One confirmed-drift adaptation attempt (accepted or rolled back)."""

    check_index: int
    trigger_statistic: float
    threshold: float
    #: Validation metric of the serving model on the new domain, before/after.
    baseline_metric: float
    adapted_metric: float
    previous_version: int
    #: Registry version the adapted model was saved under (equals
    #: ``previous_version`` when the adaptation was rolled back).
    new_version: int
    accepted: bool


def validation_factual_rmse(learner, dataset: CausalDataset) -> float:
    """Default adaptation gate: factual-outcome RMSE on the validation split.

    Uses only observable quantities (treatments and factual outcomes), so it
    works when the labelled feedback has no counterfactuals.
    """
    estimate = learner.predict(dataset.covariates)
    return factual_rmse(dataset.outcomes, estimate.factual_predictions(dataset.treatments))


class AdaptationController:
    """Confirmed-drift trigger → retrain → version → hot-swap (or roll back).

    Parameters
    ----------
    learner:
        The live continual learner (must match the registry head — save it as
        the stream's current version before constructing the controller).
        Access the current learner via :attr:`learner`: a rolled-back
        adaptation replaces it with the checkpoint reloaded from the
        registry.
    monitor, detector:
        A warm :class:`TrafficMonitor` and a calibrated
        :class:`DriftDetector`.
    registry, stream_name:
        Destination of adapted versions; ``registry.head_version(stream_name)``
        must resolve (the pre-adaptation model is version 0 by convention).
    labeler:
        ``labeler(covariates) -> CausalDataset`` assembling drained traffic
        into a labelled domain (ground-truth feedback).  Must return one unit
        per input row, in input order.
    service:
        Optional live :class:`~repro.serve.PredictionService`; accepted
        adaptations are hot-swapped into it via ``service.reload``.
    epochs:
        Epoch budget of each adaptation stage (``None``: the learner's
        configured default).
    val_fraction:
        Fraction of the assembled domain held out for the accept/rollback
        gate.
    regression_tolerance:
        Relative slack of the gate: the adapted model is accepted when
        ``adapted <= baseline * (1 + regression_tolerance)``.
    metric_fn:
        ``metric_fn(learner, val_dataset) -> float`` (lower is better);
        defaults to :func:`validation_factual_rmse`.
    seed:
        Seeds the train/validation splits of the assembled domains.
    """

    def __init__(
        self,
        learner,
        monitor: TrafficMonitor,
        detector: DriftDetector,
        registry,
        stream_name: str,
        labeler: Callable[[np.ndarray], CausalDataset],
        service=None,
        policy: Optional[TriggerPolicy] = None,
        epochs: Optional[int] = None,
        val_fraction: float = 0.25,
        regression_tolerance: float = 0.05,
        metric_fn: Callable[[object, CausalDataset], float] = validation_factual_rmse,
        seed: int = 0,
    ) -> None:
        if not 0.0 < val_fraction < 1.0:
            raise ValueError("val_fraction must lie in (0, 1)")
        # The adaptation transaction must be able to finish once it starts:
        # after the validation hold-out, the drained window's training split
        # becomes the next reference and must still satisfy the detector's
        # calibration minimum.  Reject impossible geometries up front instead
        # of crashing after the registry save and hot-swap have committed.
        n_window = monitor.window_capacity
        n_train = n_window - max(1, int(round(val_fraction * n_window)))
        if n_train < 4:
            raise ValueError(
                f"window_capacity={n_window} with val_fraction={val_fraction:g} "
                f"leaves only {n_train} training rows per adaptation; at least "
                f"4 are needed to rebase and recalibrate the detector"
            )
        self._learner = learner
        self.monitor = monitor
        self.detector = detector
        self.registry = registry
        self.stream_name = stream_name
        self.labeler = labeler
        self.service = service
        self.policy = policy if policy is not None else TriggerPolicy()
        self.epochs = epochs
        self.val_fraction = val_fraction
        self.regression_tolerance = regression_tolerance
        self.metric_fn = metric_fn
        self.seed = seed
        # Fail fast if the serving lifecycle was not bootstrapped: the
        # rollback path restores the registry head, so one must exist.
        registry.head_version(stream_name)
        self.checks: List[DriftCheck] = []
        self.events: List[AdaptationEvent] = []
        self._consecutive = 0
        self._cooldown = 0
        self._adaptations = 0

    @property
    def learner(self):
        """The learner currently backing the stream (post-rollback aware)."""
        return self._learner

    # ------------------------------------------------------------------ #
    # the drift check
    # ------------------------------------------------------------------ #
    def check(self) -> DriftCheck:
        """Run one drift check; adapt when the trigger policy confirms drift."""
        index = len(self.checks)
        if self._cooldown > 0:
            self._cooldown -= 1
            result = self._skipped(index, "cooldown")
        elif not self.monitor.is_warm:
            result = self._skipped(index, "warming")
        else:
            score = self.detector.score(self.monitor.window_values())
            if score.breach:
                self._consecutive += 1
            else:
                self._consecutive = 0
            if score.breach and self._consecutive >= self.policy.consecutive_breaches:
                event = self._adapt(index, score.statistic, score.threshold)
                result = DriftCheck(
                    index=index,
                    statistic=score.statistic,
                    threshold=score.threshold,
                    breach=True,
                    consecutive=self._consecutive,
                    action="adapted" if event.accepted else "rolled_back",
                )
                self._consecutive = 0
                self._cooldown = self.policy.cooldown_checks
            else:
                result = DriftCheck(
                    index=index,
                    statistic=score.statistic,
                    threshold=score.threshold,
                    breach=score.breach,
                    consecutive=self._consecutive,
                    action="breach" if score.breach else "none",
                )
        self.checks.append(result)
        return result

    def _skipped(self, index: int, action: str) -> DriftCheck:
        return DriftCheck(
            index=index,
            statistic=float("nan"),
            threshold=self.detector.threshold,
            breach=False,
            consecutive=self._consecutive,
            action=action,
        )

    # ------------------------------------------------------------------ #
    # the adaptation transaction
    # ------------------------------------------------------------------ #
    def _adapt(self, check_index: int, statistic: float, threshold: float) -> AdaptationEvent:
        covariates = self.monitor.drain()
        dataset = self.labeler(covariates)
        if len(dataset) != covariates.shape[0]:
            raise ValueError(
                f"labeler returned {len(dataset)} units for {covariates.shape[0]} rows"
            )
        train, val = self._split(dataset)
        baseline_metric = self.metric_fn(self._learner, val)
        previous_version = int(self.registry.head_version(self.stream_name))

        self._learner.observe(train, epochs=self.epochs, val_dataset=val)
        adapted_metric = self.metric_fn(self._learner, val)
        accepted = adapted_metric <= baseline_metric * (1.0 + self.regression_tolerance)

        if accepted:
            new_version = previous_version + 1
            self.registry.save(
                self.stream_name,
                new_version,
                self._learner,
                metadata={
                    "trigger": "drift",
                    "check_index": check_index,
                    "statistic": statistic,
                    "threshold": threshold,
                },
            )
            if self.service is not None:
                self.service.reload(self.registry, self.stream_name)
            # Future drift is measured against the domain just adapted to.
            self.monitor.rebase(train.covariates)
            self.detector.calibrate(self.monitor.reference, self.monitor.window_capacity)
        else:
            # The observe() above mutated the learner in place; restore the
            # serving checkpoint.  The service may be wired to share that
            # very learner object, so it must be reloaded too — the registry
            # head never moved, making this a swap back to the same version.
            new_version = previous_version
            self._learner = self.registry.load(self.stream_name, previous_version)
            if self.service is not None:
                self.service.reload(self.registry, self.stream_name, previous_version)

        self._adaptations += 1
        event = AdaptationEvent(
            check_index=check_index,
            trigger_statistic=statistic,
            threshold=threshold,
            baseline_metric=baseline_metric,
            adapted_metric=adapted_metric,
            previous_version=previous_version,
            new_version=new_version,
            accepted=accepted,
        )
        self.events.append(event)
        return event

    def _split(self, dataset: CausalDataset):
        """Deterministic train/validation split of one assembled domain."""
        n = len(dataset)
        n_val = max(1, int(round(self.val_fraction * n)))
        if n_val >= n:
            raise ValueError(
                f"assembled domain of {n} units is too small to hold out "
                f"a validation split (val_fraction={self.val_fraction:g})"
            )
        rng = np.random.default_rng([self.seed, 1 + self._adaptations])
        permutation = rng.permutation(n)
        train = dataset.subset(permutation[n_val:], name=f"{dataset.name}/adapt-train")
        val = dataset.subset(permutation[:n_val], name=f"{dataset.name}/adapt-val")
        return train, val
