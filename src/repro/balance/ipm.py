"""Integral probability metrics for representation balancing (Eq. 3).

The CERL objective penalises the divergence between the representation
distributions of the treatment and control groups.  The paper uses the
Wasserstein distance from the 1-Lipschitz IPM family, following CFR
(Shalit et al., 2017).  This module provides:

* :func:`mmd2_linear` and :func:`mmd2_rbf` — maximum mean discrepancy
  estimates, cheap and fully differentiable (alternative IPMs, used in the
  extension ablation bench);
* :func:`sinkhorn_wasserstein` — entropic-regularised Wasserstein distance.
  The optimal transport plan is computed with Sinkhorn iterations on the
  *detached* cost matrix and treated as a constant, while gradients flow
  through the cost matrix itself (the "envelope" approximation used by the
  reference CFR implementation);
* :func:`wasserstein_1d_exact` — exact one-dimensional Wasserstein distance
  on raw NumPy arrays, used by tests to validate the Sinkhorn approximation;
* :func:`mmd2_linear_np` and :func:`mmd2_rbf_np` — ndarray front-doors of the
  MMD estimators for graph-free callers (drift monitoring, diagnostics).
  They evaluate exactly the floating-point expressions of the Tensor versions
  (including the Tensor idiom ``mean = sum * (1/n)``), so their results are
  bit-for-bit identical — pinned by a parity test — while never touching the
  autograd substrate.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..nn.tensor import Tensor, no_grad

__all__ = [
    "mmd2_linear",
    "mmd2_linear_np",
    "mmd2_rbf",
    "mmd2_rbf_np",
    "rbf_kernel_mean_np",
    "sinkhorn_wasserstein",
    "wasserstein_1d_exact",
    "ipm_distance",
]


def _validate_groups(treated: Tensor, control: Tensor) -> None:
    if treated.ndim != 2 or control.ndim != 2:
        raise ValueError("IPM inputs must be 2-D (n_units, representation_dim)")
    if treated.shape[1] != control.shape[1]:
        raise ValueError(
            "treated and control representations must share the same dimensionality; "
            f"got {treated.shape[1]} and {control.shape[1]}"
        )
    if treated.shape[0] == 0 or control.shape[0] == 0:
        raise ValueError("IPM inputs must contain at least one unit per group")


def mmd2_linear(treated: Tensor, control: Tensor) -> Tensor:
    """Squared linear-kernel MMD: squared distance between group means."""
    _validate_groups(treated, control)
    diff = treated.mean(axis=0) - control.mean(axis=0)
    return (diff * diff).sum()


def mmd2_rbf(treated: Tensor, control: Tensor, sigma: float = 1.0) -> Tensor:
    """Squared RBF-kernel MMD between treated and control representations.

    Uses the biased V-statistic estimator, which is non-negative and
    differentiable everywhere.
    """
    _validate_groups(treated, control)
    if sigma <= 0.0:
        raise ValueError("sigma must be positive")
    gamma = 1.0 / (2.0 * sigma ** 2)

    def kernel_mean(a: Tensor, b: Tensor) -> Tensor:
        # Squared pairwise distances via the expansion |a|^2 + |b|^2 - 2 a.b
        a_sq = (a * a).sum(axis=1, keepdims=True)
        b_sq = (b * b).sum(axis=1, keepdims=True)
        cross = a @ b.T
        d2 = a_sq + b_sq.T - 2.0 * cross
        d2 = d2.clip(0.0, np.inf)
        return (d2 * (-gamma)).exp().mean()

    return kernel_mean(treated, treated) + kernel_mean(control, control) - 2.0 * kernel_mean(treated, control)


def _as_group_array(values, label: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{label} must be a 2-D array (n_units, dim); got shape {array.shape}")
    return array


def _validate_groups_np(treated: np.ndarray, control: np.ndarray) -> None:
    if treated.shape[1] != control.shape[1]:
        raise ValueError(
            "treated and control samples must share the same dimensionality; "
            f"got {treated.shape[1]} and {control.shape[1]}"
        )
    if treated.shape[0] == 0 or control.shape[0] == 0:
        raise ValueError("IPM inputs must contain at least one unit per group")


def mmd2_linear_np(treated: np.ndarray, control: np.ndarray) -> float:
    """Squared linear-kernel MMD on raw ndarrays, bit-identical to :func:`mmd2_linear`.

    The Tensor version computes each group mean as ``sum(axis=0) * (1/n)``
    (not ``np.mean``); this front-door reproduces that expression exactly, so
    graph-free callers (the drift monitor, diagnostics) get the same float to
    the last bit without paying for Tensor wrappers.
    """
    treated = _as_group_array(treated, "treated")
    control = _as_group_array(control, "control")
    _validate_groups_np(treated, control)
    diff = treated.sum(axis=0) * (1.0 / treated.shape[0]) - control.sum(axis=0) * (
        1.0 / control.shape[0]
    )
    return float((diff * diff).sum())


def rbf_kernel_mean_np(a: np.ndarray, b: np.ndarray, gamma: float) -> float:
    """Mean RBF kernel value between all pairs of rows of ``a`` and ``b``.

    The shared building block of :func:`mmd2_rbf_np` and the drift monitor's
    cached scorer; evaluates exactly the expression sequence of the Tensor
    ``kernel_mean`` closure in :func:`mmd2_rbf` so composed results stay
    bitwise identical to the Tensor path.
    """
    a_sq = (a * a).sum(axis=1, keepdims=True)
    b_sq = (b * b).sum(axis=1, keepdims=True)
    cross = a @ b.T
    d2 = a_sq + b_sq.T - 2.0 * cross
    d2 = np.clip(d2, 0.0, np.inf)
    kernel = np.exp(d2 * (-gamma))
    return float(kernel.sum() * (1.0 / kernel.size))


def mmd2_rbf_np(treated: np.ndarray, control: np.ndarray, sigma: float = 1.0) -> float:
    """Squared RBF-kernel MMD on raw ndarrays, bit-identical to :func:`mmd2_rbf`."""
    treated = _as_group_array(treated, "treated")
    control = _as_group_array(control, "control")
    _validate_groups_np(treated, control)
    if sigma <= 0.0:
        raise ValueError("sigma must be positive")
    gamma = 1.0 / (2.0 * sigma ** 2)
    return (
        rbf_kernel_mean_np(treated, treated, gamma)
        + rbf_kernel_mean_np(control, control, gamma)
        - 2.0 * rbf_kernel_mean_np(treated, control, gamma)
    )


def _pairwise_sq_dists(a: Tensor, b: Tensor) -> Tensor:
    a_sq = (a * a).sum(axis=1, keepdims=True)
    b_sq = (b * b).sum(axis=1, keepdims=True)
    cross = a @ b.T
    return (a_sq + b_sq.T - 2.0 * cross).clip(0.0, np.inf)


def _sinkhorn_plan(cost: np.ndarray, epsilon: float, num_iters: int) -> np.ndarray:
    """Compute the entropic optimal transport plan between uniform marginals.

    Runs Sinkhorn iterations in the log domain for numerical stability.  The
    inner loop is fully vectorised over one pre-allocated ``(n, m)`` workspace:
    each half-update writes the kernel-plus-potential matrix, the shifted
    exponential and the row/column log-sum-exp into the same buffer, so no
    per-iteration arrays are allocated.  The arithmetic (operation order and
    associativity) is kept identical to the straightforward implementation, so
    the returned plan is bit-for-bit the same.
    """
    n, m = cost.shape
    log_mu = -np.log(n) * np.ones(n)
    log_nu = -np.log(m) * np.ones(m)
    log_k = -cost / epsilon
    f = np.zeros(n)
    g = np.zeros(m)
    workspace = np.empty((n, m))
    f_scaled = np.empty(n)
    g_scaled = np.empty(m)
    for _ in range(num_iters):
        # f_i = eps * (log mu_i - logsumexp_j((g_j - C_ij)/eps))
        np.divide(g, epsilon, out=g_scaled)
        np.add(log_k, g_scaled[None, :], out=workspace)
        f = epsilon * (log_mu - _logsumexp_inplace(workspace, axis=1))
        np.divide(f, epsilon, out=f_scaled)
        np.add(log_k, f_scaled[:, None], out=workspace)
        g = epsilon * (log_nu - _logsumexp_inplace(workspace, axis=0))
    np.divide(f, epsilon, out=f_scaled)
    np.add(log_k, f_scaled[:, None], out=workspace)
    np.divide(g, epsilon, out=g_scaled)
    np.add(workspace, g_scaled[None, :], out=workspace)
    return np.exp(workspace, out=workspace)


def _logsumexp_inplace(values: np.ndarray, axis: int) -> np.ndarray:
    """Log-sum-exp along ``axis``, scratching over ``values`` to avoid temporaries."""
    maxes = values.max(axis=axis, keepdims=True)
    np.subtract(values, maxes, out=values)
    np.exp(values, out=values)
    out = np.log(values.sum(axis=axis, keepdims=True)) + maxes
    return np.squeeze(out, axis=axis)


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    maxes = values.max(axis=axis, keepdims=True)
    out = np.log(np.exp(values - maxes).sum(axis=axis, keepdims=True)) + maxes
    return np.squeeze(out, axis=axis)


def sinkhorn_wasserstein(
    treated: Tensor,
    control: Tensor,
    epsilon: float = 0.1,
    num_iters: int = 50,
    squared_cost: bool = True,
) -> Tensor:
    """Entropic-regularised Wasserstein distance between the two groups.

    Parameters
    ----------
    treated, control:
        Representation matrices of shape ``(n_t, d)`` and ``(n_c, d)``.
    epsilon:
        Entropic-regularisation strength; smaller values approximate the true
        Wasserstein distance more closely but need more iterations.
    num_iters:
        Number of Sinkhorn iterations.
    squared_cost:
        If ``True`` the ground cost is the squared Euclidean distance
        (Wasserstein-2-like); otherwise the Euclidean distance.

    Notes
    -----
    The transport plan is computed on the detached cost matrix (no gradient
    flows through the Sinkhorn iterations); gradients flow only through the
    final ``<plan, cost>`` inner product.  This is the standard approximation
    used in CFR-Wass training and is exact at the optimum by the envelope
    theorem of the regularised OT objective.
    """
    _validate_groups(treated, control)
    if epsilon <= 0.0:
        raise ValueError("epsilon must be positive")
    if num_iters <= 0:
        raise ValueError("num_iters must be positive")

    cost = _pairwise_sq_dists(treated, control)
    if not squared_cost:
        cost = (cost + 1e-12).sqrt()

    plan_tensor = _transport_plan(cost, epsilon=epsilon, num_iters=num_iters)
    return (plan_tensor * cost).sum()


def _transport_plan(cost: Tensor, epsilon: float, num_iters: int) -> Tensor:
    """Sinkhorn transport plan of the detached cost, as a constant tensor.

    Under a tape trace the whole detach/scale/iterate block is recorded as a
    single host op (the plan depends only on the cost values, not on any
    traced structure), so replays recompute the plan from the current cost
    buffer without re-recording the Sinkhorn shape or index work.
    """

    def compute() -> np.ndarray:
        cost_detached = cost.data.copy()
        scale = max(float(cost_detached.max()), 1e-8)
        return _sinkhorn_plan(cost_detached / scale, epsilon=epsilon, num_iters=num_iters)

    trace = getattr(cost, "_trace", None)
    if trace is not None:
        return trace.host_tensor(compute, dynamic=True)
    with no_grad():
        plan = compute()
    return Tensor(plan)


def wasserstein_1d_exact(a: np.ndarray, b: np.ndarray) -> float:
    """Exact 1-Wasserstein (earth mover's) distance between 1-D samples.

    Computed from the quantile-function representation; used as a reference
    value in the test suite.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    all_points = np.concatenate([a, b])
    all_points.sort(kind="mergesort")
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    deltas = np.diff(all_points)
    cdf_a = np.searchsorted(a_sorted, all_points[:-1], side="right") / a.size
    cdf_b = np.searchsorted(b_sorted, all_points[:-1], side="right") / b.size
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def ipm_distance(
    treated: Tensor,
    control: Tensor,
    kind: Literal["wasserstein", "mmd_linear", "mmd_rbf"] = "wasserstein",
    epsilon: float = 0.1,
    num_iters: int = 30,
    sigma: float = 1.0,
) -> Tensor:
    """Dispatch to the configured IPM.

    ``wasserstein`` follows the paper (Eq. 3); the MMD variants are provided
    for the IPM-choice ablation bench documented in DESIGN.md.
    """
    if kind == "wasserstein":
        return sinkhorn_wasserstein(treated, control, epsilon=epsilon, num_iters=num_iters)
    if kind == "mmd_linear":
        return mmd2_linear(treated, control)
    if kind == "mmd_rbf":
        return mmd2_rbf(treated, control, sigma=sigma)
    raise ValueError(f"unknown IPM kind '{kind}'")
