"""Integral probability metrics used to balance treated/control representations."""

from .ipm import (
    ipm_distance,
    mmd2_linear,
    mmd2_rbf,
    sinkhorn_wasserstein,
    wasserstein_1d_exact,
)

__all__ = [
    "ipm_distance",
    "mmd2_linear",
    "mmd2_rbf",
    "sinkhorn_wasserstein",
    "wasserstein_1d_exact",
]
