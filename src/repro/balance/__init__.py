"""Integral probability metrics used to balance treated/control representations."""

from .ipm import (
    ipm_distance,
    mmd2_linear,
    mmd2_linear_np,
    mmd2_rbf,
    mmd2_rbf_np,
    rbf_kernel_mean_np,
    sinkhorn_wasserstein,
    wasserstein_1d_exact,
)

__all__ = [
    "ipm_distance",
    "mmd2_linear",
    "mmd2_linear_np",
    "mmd2_rbf",
    "mmd2_rbf_np",
    "rbf_kernel_mean_np",
    "sinkhorn_wasserstein",
    "wasserstein_1d_exact",
]
