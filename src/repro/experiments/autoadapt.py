"""End-to-end auto-adaptation: serve → drift → detect → retrain → swap → verify.

:func:`run_auto_adaptation` wires the whole closed loop together:

1. train a learner (any registered estimator; CERL by default) on the base
   domain and save it as version 0 of a stream in a
   :class:`~repro.serve.ModelRegistry`;
2. serve it through a :class:`~repro.serve.PredictionService`, with a
   :class:`~repro.monitor.TrafficMonitor` attached as a traffic observer and
   a permutation-calibrated :class:`~repro.monitor.DriftDetector`;
3. replay a :class:`~repro.data.drift.DriftScenario` traffic tape through
   the service tick by tick, running one
   :meth:`~repro.monitor.AdaptationController.check` per tick;
4. on confirmed drift the controller retrains (one continual ``observe``
   stage over the buffered traffic), versions the adapted model, hot-swaps
   the service and rebases the monitor — or rolls back when validation
   regresses.

Everything is a deterministic function of ``seed``: replaying the same tape
yields identical detection ticks, identical registry versions and
bit-identical post-adaptation predictions (pinned by
``tests/monitor/test_replay.py``).
"""

from __future__ import annotations

import tempfile
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.api import make_estimator
from ..data.drift import DriftConfig, DriftScenario
from ..data.streams import DomainStream
from ..data.synthetic import SyntheticDomainGenerator
from ..monitor import (
    AdaptationController,
    AdaptationEvent,
    DriftCheck,
    DriftDetector,
    TrafficMonitor,
    TriggerPolicy,
)
from ..serve import ModelRegistry, PredictionService, ServiceStats
from .profiles import SMOKE, ExperimentProfile

__all__ = ["AutoAdaptationResult", "TickTrace", "run_auto_adaptation"]


@dataclass(frozen=True)
class TickTrace:
    """One traffic tick of the closed loop, as observed from outside."""

    tick: int
    drift_fraction: float
    check: DriftCheck
    #: Version the service reports after this tick's check.
    served_version: int


@dataclass
class AutoAdaptationResult:
    """Full trajectory of one auto-adaptation run."""

    stream_name: str
    statistic: str
    ticks: List[TickTrace] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)
    registry_versions: List[int] = field(default_factory=list)
    head_version: int = 0
    #: Final served model's ITE predictions on the fixed probe set.
    final_predictions: np.ndarray = field(default_factory=lambda: np.empty(0))
    service_stats: Optional[ServiceStats] = None

    @property
    def detection_ticks(self) -> List[int]:
        """Ticks whose check ended in an accepted adaptation."""
        return [t.tick for t in self.ticks if t.check.action == "adapted"]

    @property
    def rollback_ticks(self) -> List[int]:
        """Ticks whose adaptation was rolled back by the validation gate."""
        return [t.tick for t in self.ticks if t.check.action == "rolled_back"]

    def summary_rows(self) -> List[dict]:
        """Per-tick rows for :func:`repro.experiments.reporting.format_table`."""
        return [
            {
                "tick": trace.tick,
                "drift %": round(100.0 * trace.drift_fraction, 1),
                "statistic": float("nan")
                if np.isnan(trace.check.statistic)
                else round(trace.check.statistic, 5),
                "threshold": round(trace.check.threshold, 5),
                "action": trace.check.action,
                "served": f"v{trace.served_version}",
            }
            for trace in self.ticks
        ]


def run_auto_adaptation(
    drift: Optional[DriftConfig] = None,
    profile: ExperimentProfile = SMOKE,
    n_ticks: int = 12,
    rows_per_tick: int = 40,
    drift_at: int = 4,
    window_capacity: Optional[int] = None,
    statistic: str = "mmd_rbf",
    quantile: float = 0.95,
    n_permutations: int = 100,
    policy: Optional[TriggerPolicy] = None,
    registry_root: Optional[Union[str, Path]] = None,
    stream_name: str = "autoadapt",
    estimator: str = "CERL",
    seed: int = 0,
    epochs: Optional[int] = None,
    adapt_epochs: Optional[int] = None,
    memory_budget: Optional[int] = None,
) -> AutoAdaptationResult:
    """Run the serve → drift → detect → retrain → swap loop over one tape.

    Parameters
    ----------
    drift:
        Scenario shape (default: abrupt covariate shift at full magnitude).
    profile:
        Scale of the base-domain training (units, epochs, model size).
    n_ticks, rows_per_tick, drift_at:
        Tape geometry: total ticks, queries per tick, first drifted tick.
    window_capacity:
        Rolling-window size (default ``2 * rows_per_tick``).
    statistic, quantile, n_permutations:
        Drift-detector configuration (see :class:`DriftDetector`).
    policy:
        Trigger policy (default: 2 consecutive breaches, cooldown 2).
    registry_root:
        Registry directory; when omitted an ephemeral temporary directory is
        used and deleted on return (pass a path to keep the checkpoints).
    estimator:
        Registered estimator name to train, serve and adapt (default
        ``"CERL"``; the controller only needs the ``observe``/``predict``
        protocol, so any :func:`~repro.core.api.estimator_names` entry works).
    epochs, adapt_epochs:
        Epoch budgets of the base fit and of each adaptation stage
        (defaults: the profile's epochs, and ``epochs`` respectively).
    memory_budget:
        CERL memory budget (default: the profile's Table-I budget).

    Returns
    -------
    AutoAdaptationResult
        Per-tick traces, adaptation events, the registry trajectory, and the
        final served model's predictions on a fixed probe set.
    """
    drift = drift if drift is not None else DriftConfig()
    epochs = epochs if epochs is not None else profile.epochs
    adapt_epochs = adapt_epochs if adapt_epochs is not None else epochs
    window_capacity = window_capacity if window_capacity is not None else 2 * rows_per_tick
    memory_budget = (
        memory_budget if memory_budget is not None else profile.memory_budget_table1
    )

    with ExitStack() as stack:
        if registry_root is None:
            # Ephemeral registry: the result carries everything callers
            # need, so the checkpoints are deleted on exit, not leaked.
            registry_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="cerl_autoadapt_")
            )
        return _run_auto_adaptation(
            drift,
            profile,
            n_ticks,
            rows_per_tick,
            drift_at,
            window_capacity,
            statistic,
            quantile,
            n_permutations,
            policy,
            registry_root,
            stream_name,
            estimator,
            seed,
            epochs,
            adapt_epochs,
            memory_budget,
        )


def _run_auto_adaptation(
    drift: DriftConfig,
    profile: ExperimentProfile,
    n_ticks: int,
    rows_per_tick: int,
    drift_at: int,
    window_capacity: int,
    statistic: str,
    quantile: float,
    n_permutations: int,
    policy: Optional[TriggerPolicy],
    registry_root: Union[str, Path],
    stream_name: str,
    estimator: str,
    seed: int,
    epochs: int,
    adapt_epochs: int,
    memory_budget: int,
) -> AutoAdaptationResult:
    """The loop body, with all defaults resolved by :func:`run_auto_adaptation`."""
    generator = SyntheticDomainGenerator(profile.synthetic_config(), seed=seed)
    scenario = DriftScenario(generator, drift, seed=seed)
    stream = DomainStream([scenario.base_dataset()], seed=seed)
    train, val, probe = stream[0].train, stream[0].val, stream[0].test

    learner = make_estimator(
        estimator,
        stream.n_features,
        profile.model_config(seed=seed, epochs=epochs),
        profile.continual_config(memory_budget=memory_budget),
    )
    learner.observe(train, epochs=epochs, val_dataset=val)

    registry = ModelRegistry(registry_root)
    registry.save(stream_name, 0, learner, metadata={"trigger": "initial"})

    monitor = TrafficMonitor(train.covariates, window_capacity=window_capacity)
    detector = DriftDetector(
        statistic,
        quantile=quantile,
        n_permutations=n_permutations,
        seed=seed,
    ).calibrate(monitor.reference, monitor.window_capacity)

    tape = scenario.make_tape(n_ticks, rows_per_tick, drift_at)
    result = AutoAdaptationResult(stream_name=stream_name, statistic=statistic)

    with PredictionService.from_registry(
        registry, stream_name, max_batch=rows_per_tick
    ) as service:
        monitor.attach(service)
        controller = AdaptationController(
            learner,
            monitor,
            detector,
            registry,
            stream_name,
            labeler=scenario.make_labeler(),
            service=service,
            policy=policy,
            epochs=adapt_epochs,
            seed=seed,
        )
        for tick in tape:
            pendings = [service.submit(row) for row in tick.dataset.covariates]
            for pending in pendings:
                pending.result(timeout=120.0)
            check = controller.check()
            result.ticks.append(
                TickTrace(
                    tick=tick.index,
                    drift_fraction=tick.drift_fraction,
                    check=check,
                    served_version=service.model_version,
                )
            )
        # The probe is evaluation, not traffic: stop recording before it.
        monitor.detach(service)
        result.final_predictions = service.predict(probe.covariates).ite_hat.copy()
        result.service_stats = service.stats()

    result.events = list(controller.events)
    result.registry_versions = registry.list_versions(stream_name)
    result.head_version = registry.head_version(stream_name)
    return result
