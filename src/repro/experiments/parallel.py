"""Deterministic process-pool execution for experiment grids.

Table I iterates dataset × scenario cells, Table II iterates repetitions and
the stream suite iterates strategies — all embarrassingly parallel, because
every task is a *pure function of its arguments*: data generation, splits and
model initialisation are driven by seeds carried in the task payload, never
by shared mutable RNG state.  :func:`parallel_map` exploits that: with
``workers <= 1`` it is a plain loop (the default experiment path), with
``workers > 1`` it fans the same task list over a process pool and returns
results in task order, so the two paths produce **identical** tables and the
parallel one is purely a wall-clock optimisation.

:func:`derive_seed` is the companion utility for building per-task seeds in
new experiment grids: a stable hash of the base seed and the task identity,
independent of task ordering, worker count and Python hash randomisation.
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["effective_workers", "parallel_map", "derive_seed", "seeded_tasks"]

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def derive_seed(base_seed: int, *components) -> int:
    """Derive a stable 32-bit seed from a base seed and task components.

    The derivation hashes the string form of every component with SHA-256, so
    it is reproducible across processes and Python versions (``hash()`` is
    randomised per process and must not be used for this).  Distinct
    component tuples give independent, well-separated seeds even when the
    base seeds are consecutive integers.
    """
    payload = repr((int(base_seed),) + tuple(str(c) for c in components))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def seeded_tasks(base_seed: int, keys: Iterable) -> List[tuple]:
    """Pair every task key with its :func:`derive_seed` seed.

    Convenience for new experiment grids: ``seeded_tasks(0, cells)`` yields
    ``(key, seed)`` tuples whose seeds do not depend on the order or number
    of cells, so adding a cell never reshuffles the seeds of existing ones.
    """
    return [(key, derive_seed(base_seed, key)) for key in keys]


def _pool_context(start_method: Optional[str]) -> mp.context.BaseContext:
    if start_method is not None:
        return mp.get_context(start_method)
    # fork is the cheap path (no interpreter re-exec, no re-import of the
    # scientific stack) but is only reliably safe on Linux: macOS made spawn
    # its default because forking after Accelerate/Objective-C threads start
    # can crash or hang the children.  Elsewhere use the platform default.
    if sys.platform == "linux" and "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def effective_workers(workers: int, n_tasks: int, force_parallel: bool = False) -> int:
    """Worker count :func:`parallel_map` will actually use.

    Requested workers are clamped to the task count and — unless
    ``force_parallel`` — to ``os.cpu_count()``: on a 1-core CI runner a
    2-worker pool cannot express any parallelism, it only adds pool start-up
    and pickling cost, so a request that oversubscribes every core falls back
    toward serial instead of producing a misleading sub-1.0 "speedup".
    ``force_parallel=True`` keeps the requested count (capped by the task
    count only) — the determinism tests use it to exercise the real pool
    path regardless of the machine.

    Start-method caveat: the count says nothing about *how* workers start.
    ``fork`` from a parent that already runs threads (a live
    ``PredictionService`` or fleet front door) can inherit locks frozen in
    a held state — callers in that position must use ``spawn`` (as
    ``FleetManager`` does) and accept its per-worker start-up cost.
    """
    effective = min(int(workers), max(n_tasks, 0))
    if force_parallel:
        return effective
    return min(effective, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int = 1,
    start_method: Optional[str] = None,
    force_parallel: bool = False,
) -> List[ResultT]:
    """Order-preserving map over ``tasks``, optionally across processes.

    Parameters
    ----------
    fn:
        Task function.  Must be a module-level callable (picklable) when
        ``workers > 1``; must be a pure function of its argument for the
        serial/parallel equivalence guarantee to hold.
    tasks:
        Task payloads, each fully describing one unit of work (including any
        seeds — workers share no RNG state with the parent or each other).
    workers:
        ``<= 1`` runs a plain serial loop in-process (the default);
        ``> 1`` dispatches to a process pool of at most
        :func:`effective_workers` workers — the request is clamped to the
        core count (see there), and a clamp down to one worker falls back to
        the serial loop entirely, so a 1-core machine never pays pool
        overhead for zero achievable parallelism.
    start_method:
        Optional multiprocessing start method override (``"fork"``,
        ``"spawn"``, ``"forkserver"``); defaults to fork when available.
        Fork is only safe because experiment parents are single-threaded at
        dispatch time — forking a threaded process (e.g. one hosting a
        serving stack) can deadlock on locks captured mid-hold, which is
        why the fleet layer spawns its workers instead.
    force_parallel:
        Bypass the core-count clamp (not the task-count one): always spin up
        the requested pool.  For tests that must exercise the process-pool
        path on any machine.

    Returns
    -------
    list
        ``[fn(task) for task in tasks]`` — same values, same order, on both
        paths.  A task that raises propagates its exception either way.
    """
    tasks = list(tasks)
    workers = effective_workers(workers, len(tasks), force_parallel=force_parallel)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    context = _pool_context(start_method)
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, tasks))
