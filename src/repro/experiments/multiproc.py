"""Out-of-process fleet deployment: worker kill/restart under live load.

:func:`run_fleet_deployment` proves the multi-tenant story *inside* one
process.  :func:`run_multiproc_fleet` proves it across process boundaries —
and proves the failure-isolation claim that motivates paying for processes at
all:

1. ``n_streams`` independent streams are trained and registered as version 0
   in one shared :class:`~repro.serve.ModelRegistry` (exactly as the
   in-process fleet experiment does, with the same derived seeds);
2. a :class:`~repro.serve.fleet.MultiprocGateway` fronts the registry —
   every stream's checkpoint is loaded **memory-mapped** inside its
   digest-assigned worker *process*, and queries travel the pickle-free wire
   protocol;
3. a warm wave verifies every stream's responses **bitwise** against the
   direct batched ``predict`` of the version each response reports;
4. one worker is **SIGKILLed mid-load**: concurrent survivor clients (every
   stream on another worker) must complete without a single error while the
   victim's queries fail with *typed* errors only
   (:class:`~repro.serve.fleet.WorkerUnavailable` /
   :class:`~repro.serve.fleet.RemoteError`);
5. the dead worker is **restarted**; the victim stream must answer again,
   bitwise, from the version it served before the crash;
6. the victim stream is then **adapted** end-to-end — observe the next
   domain, save version 1, hot-swap through the controller-compatible
   ``gateway.service(stream).reload(...)`` hook — and a deterministic
   post-swap wave checks the adapted stream answers bitwise from version 1
   while every other stream still answers from version 0.

Per-stream seeds derive exactly as in the in-process fleet, so the trained
models (and therefore all references) are reproducible.
"""

from __future__ import annotations

import tempfile
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.api import ContinualEstimator, make_estimator
from ..data.streams import DomainStream
from ..data.synthetic import SyntheticDomainGenerator
from ..serve import GatewayStats, ModelRegistry, ShardRouter
from ..serve.fleet import FleetError, MultiprocGateway
from .parallel import derive_seed
from .profiles import SMOKE, ExperimentProfile

__all__ = ["MultiprocFleetResult", "MultiprocStreamReport", "run_multiproc_fleet"]


def _spanning_names(prefix: str, n_streams: int, n_workers: int) -> List[str]:
    """Deterministic stream names whose digests span at least two workers.

    Digest routing may happen to place every ``prefix-00..`` name on one
    worker, which would make the kill experiment vacuous (no survivors).
    The first ``n_streams - 1`` names are taken in index order; the last one
    keeps scanning indices until it lands on a different worker than the
    rest, so the fleet always has a survivor — still a pure function of
    ``(prefix, n_streams, n_workers)``, so runs stay reproducible.
    """
    router = ShardRouter(n_workers)
    names = [f"{prefix}-{index:02d}" for index in range(n_streams - 1)]
    workers = {router.shard_for(name) for name in names}
    for index in range(n_streams - 1, n_streams + 999):
        candidate = f"{prefix}-{index:02d}"
        if len(workers | {router.shard_for(candidate)}) >= 2:
            names.append(candidate)
            return names
    raise RuntimeError(
        f"could not find a stream name spanning a second worker for prefix "
        f"{prefix!r} with {n_workers} workers"
    )


@dataclass
class MultiprocStreamReport:
    """One stream's view of the multiprocess fleet run."""

    name: str
    worker: int
    versions: List[int]
    versions_served: List[int]
    queries: int
    #: Query indices whose response diverged from the reference of the
    #: version it reported (empty == bitwise healthy).
    mismatches: List[int] = field(default_factory=list)

    @property
    def parity(self) -> bool:
        return not self.mismatches


@dataclass
class MultiprocFleetResult:
    """Full outcome of one multiprocess fleet deployment."""

    streams: List[MultiprocStreamReport] = field(default_factory=list)
    victim_stream: str = ""
    victim_worker: int = -1
    #: Streams on other workers that served through the outage.
    survivors: List[str] = field(default_factory=list)
    #: Victim queries failing with typed fleet errors during the outage.
    outage_typed_failures: int = 0
    #: Victim queries failing with anything else (must stay 0).
    outage_untyped_failures: int = 0
    #: Victim queries answered from the front-door cache during the outage
    #: (possible only for rows cached before the kill; kept out of the
    #: failure counters — a cached answer is a correct answer).
    outage_cache_hits: int = 0
    #: Survivor queries that failed during the outage (must stay 0).
    survivor_errors: int = 0
    #: Whether the victim stream answered (bitwise) after the restart.
    recovered: bool = False
    adapted_stream: str = ""
    adapted_version: int = 0
    stats: Optional[GatewayStats] = None
    elapsed_s: float = 0.0

    @property
    def parity(self) -> bool:
        """Whether every response matched its version's batched reference."""
        return all(report.parity for report in self.streams)

    @property
    def isolated(self) -> bool:
        """Whether the worker kill was invisible to every other tenant."""
        return (
            self.survivor_errors == 0
            and self.outage_untyped_failures == 0
            and self.recovered
        )

    @property
    def total_queries(self) -> int:
        return sum(report.queries for report in self.streams)

    @property
    def throughput_qps(self) -> float:
        return self.total_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary_rows(self) -> List[dict]:
        """Per-stream rows for :func:`repro.experiments.reporting.format_table`."""
        return [
            {
                "stream": report.name,
                "worker": report.worker,
                "versions": str(report.versions),
                "served": str(report.versions_served),
                "queries": report.queries,
                "role": (
                    "victim"
                    if report.name == self.victim_stream
                    else "survivor"
                    if report.name in self.survivors
                    else "co-tenant"
                ),
                "parity": "exact" if report.parity else "DIVERGED",
            }
            for report in self.streams
        ]


def run_multiproc_fleet(
    n_streams: int = 3,
    profile: ExperimentProfile = SMOKE,
    n_workers: int = 2,
    queries_per_stream: int = 32,
    clients_per_stream: int = 2,
    registry_root: Optional[Union[str, Path]] = None,
    stream_prefix: str = "stream",
    cache_capacity: int = 1024,
    max_pending_per_worker: Optional[int] = None,
    estimator: str = "CERL",
    seed: int = 0,
    epochs: Optional[int] = None,
) -> MultiprocFleetResult:
    """Train, serve out-of-process, kill/restart one worker, adapt its stream.

    Parameters
    ----------
    n_streams, n_workers:
        Fleet size and worker process count.  The victim is chosen as the
        first stream that leaves at least one other stream on a *different*
        worker, so the survivor claim is never vacuous (requires
        ``n_workers >= 2`` and a stream assignment that spans workers —
        true for the defaults).
    queries_per_stream, clients_per_stream:
        Per-phase load: each survivor client submits ``queries_per_stream``
        seeded queries during the outage; waves use smaller seeded rounds.
    registry_root:
        Registry directory; an ephemeral temporary directory when omitted.
    cache_capacity, max_pending_per_worker:
        Front-door knobs (see :class:`~repro.serve.fleet.MultiprocGateway`).
    estimator:
        Registered estimator name to train and serve fleet-wide (default
        ``"CERL"``).
    seed, epochs:
        Base seed for derived per-stream seeds; per-domain epoch budget
        (default: the profile's).

    Returns
    -------
    MultiprocFleetResult
        Bitwise parity verdicts, outage isolation counters, recovery and
        adaptation outcomes, fleet stats.
    """
    if n_workers < 2:
        raise ValueError("the kill/restart experiment needs at least 2 workers")
    if n_streams < 2:
        raise ValueError("the kill/restart experiment needs at least 2 streams")
    epochs = epochs if epochs is not None else profile.epochs

    with ExitStack() as stack:
        if registry_root is None:
            registry_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="cerl_mpfleet_")
            )
        return _run_multiproc_fleet(
            n_streams,
            profile,
            n_workers,
            queries_per_stream,
            clients_per_stream,
            registry_root,
            stream_prefix,
            cache_capacity,
            max_pending_per_worker,
            estimator,
            seed,
            epochs,
        )


def _run_multiproc_fleet(
    n_streams: int,
    profile: ExperimentProfile,
    n_workers: int,
    queries_per_stream: int,
    clients_per_stream: int,
    registry_root: Union[str, Path],
    stream_prefix: str,
    cache_capacity: int,
    max_pending_per_worker: Optional[int],
    estimator: str,
    seed: int,
    epochs: int,
) -> MultiprocFleetResult:
    registry = ModelRegistry(registry_root)
    names = _spanning_names(stream_prefix, n_streams, n_workers)

    # --- train one lineage per stream, register version 0 ----------------- #
    # Seeds derive identically to run_fleet_deployment so the two experiments
    # train byte-identical models from the same (seed, name) pair.
    learners: Dict[str, ContinualEstimator] = {}
    streams: Dict[str, DomainStream] = {}
    for name in names:
        stream_seed = derive_seed(seed, "fleet", name)
        generator = SyntheticDomainGenerator(profile.synthetic_config(), seed=stream_seed)
        stream = DomainStream(
            [generator.generate_domain(0), generator.generate_domain(1)],
            seed=stream_seed,
        )
        learner = make_estimator(
            estimator,
            stream.n_features,
            profile.model_config(seed=stream_seed, epochs=epochs),
            profile.continual_config(memory_budget=profile.memory_budget_table1),
        )
        learner.observe(stream.train_data(0), epochs=epochs)
        registry.save(name, 0, learner, metadata={"trigger": "initial"})
        learners[name] = learner
        streams[name] = stream

    banks = {name: streams[name][0].test.covariates for name in names}
    bank_size = {len(bank) for bank in banks.values()}
    assert len(bank_size) == 1, "profile splits must give equal test sizes"
    max_batch = bank_size.pop()
    references = {(name, 0): learners[name].predict(banks[name]) for name in names}

    result = MultiprocFleetResult()
    responses: Dict[str, List[tuple]] = {name: [] for name in names}
    response_lock = threading.Lock()

    with MultiprocGateway(
        registry_root,
        names,
        n_workers=n_workers,
        max_batch=max_batch,
        cache_capacity=cache_capacity,
        max_pending_per_worker=max_pending_per_worker,
    ) as gateway:
        # Victim: first stream with at least one survivor on another worker.
        victim = next(
            (
                name
                for name in names
                if any(
                    gateway.worker_for(other) != gateway.worker_for(name)
                    for other in names
                )
            ),
            None,
        )
        if victim is None:
            raise RuntimeError(
                "every stream digest-routed onto one worker; add streams or "
                "workers so the outage has survivors to observe"
            )
        victim_worker = gateway.worker_for(victim)
        survivors = [
            name for name in names if gateway.worker_for(name) != victim_worker
        ]
        result.victim_stream = victim
        result.victim_worker = victim_worker
        result.survivors = survivors

        start = time.perf_counter()

        used_rows: Dict[str, set] = {name: set() for name in names}

        def wave(name: str, label: str, count: int) -> None:
            rng = np.random.default_rng(derive_seed(seed, label, name))
            indices = rng.integers(0, max_batch, size=count)
            used_rows[name].update(int(i) for i in indices)
            pendings = [
                (int(i), gateway.submit(name, banks[name][i])) for i in indices
            ]
            collected = [(i, p.result(timeout=120.0)) for i, p in pendings]
            with response_lock:
                responses[name].extend(collected)

        # --- phase 1: warm wave, every stream, bitwise -------------------- #
        for name in names:
            wave(name, "warm", min(8, queries_per_stream))

        # --- phase 2: kill the victim's worker mid-load ------------------- #
        gateway.kill_worker(victim_worker)

        survivor_errors = [0]
        barrier = threading.Barrier(len(survivors) * clients_per_stream + 1)

        def survivor_client(name: str, client_index: int) -> None:
            rng = np.random.default_rng(
                derive_seed(seed, "outage", name, client_index)
            )
            indices = rng.integers(0, max_batch, size=queries_per_stream)
            barrier.wait()
            collected = []
            for i in indices:
                try:
                    collected.append(
                        (int(i), gateway.predict_one(name, banks[name][i], timeout=120.0))
                    )
                except Exception:
                    with response_lock:
                        survivor_errors[0] += 1
            with response_lock:
                responses[name].extend(collected)

        threads = [
            threading.Thread(
                target=survivor_client, args=(name, c), name=f"mpfleet-{name}-{c}"
            )
            for name in survivors
            for c in range(clients_per_stream)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()

        # While survivors hammer their live workers, the victim's queries
        # must fail *typed* — never hang, never corrupt another tenant.
        # Rows already served (and therefore possibly cached) before the kill
        # are avoided so the failures genuinely exercise the dead socket; any
        # residual cache-served answer is counted separately, not as failure.
        victim_rng = np.random.default_rng(derive_seed(seed, "victim", victim))
        fresh = [i for i in range(max_batch) if i not in used_rows[victim]]
        picks = victim_rng.choice(
            fresh if fresh else np.arange(max_batch),
            size=min(8, queries_per_stream),
            replace=True,
        )
        for i in picks:
            try:
                gateway.predict_one(victim, banks[victim][int(i)], timeout=120.0)
                result.outage_cache_hits += 1
            except FleetError:
                result.outage_typed_failures += 1
            except Exception:
                result.outage_untyped_failures += 1

        for thread in threads:
            thread.join()
        result.survivor_errors = survivor_errors[0]

        # --- phase 3: restart the worker; the victim must recover --------- #
        gateway.restart_worker(victim_worker)
        gateway.manager.wait_port(victim_worker)
        before = len(responses[victim])
        wave(victim, "recovery", min(8, queries_per_stream))
        result.recovered = len(responses[victim]) > before

        # --- phase 4: adapt the recovered stream, deterministic post-swap - #
        adapted = learners[victim]
        adapted.observe(streams[victim].train_data(1), epochs=epochs)
        registry.save(victim, 1, adapted, metadata={"trigger": "mpfleet-adapt"})
        # The controller-compatible hook: AdaptationController calls
        # service.reload(registry, stream) — the handle forwards it to the
        # owning worker, which re-loads (memory-mapped) from the registry.
        result.adapted_stream = victim
        result.adapted_version = gateway.service(victim).reload(registry, victim)
        references[(victim, 1)] = adapted.predict(banks[victim])

        for name in names:
            wave(name, "post-swap", min(8, queries_per_stream))

        result.elapsed_s = time.perf_counter() - start
        result.stats = gateway.stats()

        # --- verify every response against its version's reference -------- #
        for name in names:
            mismatches = []
            served_versions = set()
            for index, response in responses[name]:
                served_versions.add(response.model_version)
                reference = references[(name, response.model_version)]
                if (
                    response.mu0 != reference.y0_hat[index]
                    or response.mu1 != reference.y1_hat[index]
                    or response.ite != reference.ite_hat[index]
                ):
                    mismatches.append(index)
            result.streams.append(
                MultiprocStreamReport(
                    name=name,
                    worker=gateway.worker_for(name),
                    versions=registry.list_versions(name),
                    versions_served=sorted(served_versions),
                    queries=len(responses[name]),
                    mismatches=mismatches,
                )
            )
    return result
