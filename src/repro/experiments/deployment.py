"""End-to-end continual deployment: train → checkpoint → reload → verify.

This driver runs the paper's deployment story as one protocol: a learner (any
registered estimator, CERL by default)
observes a :class:`~repro.data.streams.DomainStream` domain by domain; after
every domain advance the engine's :class:`~repro.engine.Checkpoint` callback
(driven here at domain granularity) persists the learner into a
:class:`~repro.serve.ModelRegistry`; and once the stream is exhausted every
stored version is reloaded and re-evaluated on the test sets it had seen, to
prove the serving path returns exactly what the live learner returned.

The parity check is deliberately exact (``==`` on the metric floats): the
persistence layer round-trips float64 arrays losslessly and evaluation runs
the same inference fast path, so a reloaded version has no excuse to differ
in even one bit from the learner at the moment it was saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.api import make_estimator
from ..core.config import ContinualConfig, ModelConfig
from ..data.dataset import CausalDataset
from ..data.streams import DomainStream
from ..engine import Checkpoint, TrainerState
from ..serve import ModelRegistry

__all__ = ["DeploymentStage", "DeploymentResult", "run_continual_deployment"]


@dataclass
class DeploymentStage:
    """One domain advance: what the live learner scored and where it was saved."""

    domain_index: int
    checkpoint: str
    #: ``live_metrics[d]`` — live learner's metrics on domain ``d``'s test set
    #: right after training on this stage's domain.
    live_metrics: List[Dict[str, float]] = field(default_factory=list)
    #: Same protocol re-run from the reloaded checkpoint (filled by the
    #: verification sweep).
    reloaded_metrics: List[Dict[str, float]] = field(default_factory=list)

    @property
    def parity(self) -> bool:
        """Whether the reloaded version reproduced the live metrics exactly."""
        return self.live_metrics == self.reloaded_metrics


@dataclass
class DeploymentResult:
    """Full trajectory of one continual deployment over a stream."""

    stream_name: str
    stages: List[DeploymentStage] = field(default_factory=list)

    @property
    def parity(self) -> bool:
        """Whether *every* reloaded version matched its live counterpart."""
        return all(stage.parity for stage in self.stages)

    def mismatches(self) -> List[int]:
        """Domain indices whose reloaded metrics diverged (empty == healthy)."""
        return [stage.domain_index for stage in self.stages if not stage.parity]

    def live_pehe_trajectory(self) -> List[float]:
        """Mean sqrt(PEHE) over seen test sets after each domain (Fig. 3 style)."""
        return [
            sum(m["sqrt_pehe"] for m in stage.live_metrics) / len(stage.live_metrics)
            for stage in self.stages
        ]


def run_continual_deployment(
    datasets: Union[Sequence[CausalDataset], DomainStream],
    registry: ModelRegistry,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    stream_name: str = "stream",
    estimator: str = "CERL",
    seed: int = 0,
    epochs: Optional[int] = None,
    verify: bool = True,
) -> DeploymentResult:
    """Train over a stream, checkpoint every domain, reload and verify.

    Parameters
    ----------
    datasets:
        The per-domain datasets (or a pre-built, pre-split stream).
    registry:
        Destination for the per-domain checkpoints; one version per domain
        advance under ``stream_name``.
    estimator:
        Registered estimator name to train and checkpoint (default
        ``"CERL"``).
    verify:
        When ``True`` (default), after the stream is exhausted every stored
        version is reloaded from the registry and re-evaluated on the test
        sets of the domains it had seen; the reloaded metrics are stored next
        to the live ones for the exact-parity check.

    Returns
    -------
    DeploymentResult
        Per-stage live/reloaded metrics; ``result.parity`` is the round-trip
        guarantee the serving layer is built on.
    """
    stream = (
        datasets
        if isinstance(datasets, DomainStream)
        else DomainStream(datasets, seed=seed)
    )
    learner = make_estimator(estimator, stream.n_features, model_config, continual_config)

    # The engine's Checkpoint callback drives save-on-domain-advance: one
    # "epoch" of this callback is one domain.  every=1 saves each advance;
    # the callback's dedup bookkeeping keeps the final on_train_end no-op.
    checkpointer = Checkpoint(registry.saver(stream_name, learner), every=1)
    callback_state = TrainerState()

    result = DeploymentResult(stream_name=stream_name)
    for domain_index in range(len(stream)):
        learner.observe(
            stream.train_data(domain_index),
            epochs=epochs,
            val_dataset=stream.val_data(domain_index),
        )
        callback_state.epoch = domain_index
        checkpointer.on_epoch_end(callback_state)
        entry = registry.entry(stream_name, domain_index)
        result.stages.append(
            DeploymentStage(
                domain_index=domain_index,
                checkpoint=str(entry.path),
                live_metrics=learner.evaluate_many(
                    stream.test_sets_seen(domain_index)
                ),
            )
        )
    checkpointer.on_train_end(callback_state)

    if verify:
        for stage in result.stages:
            restored = registry.load(stream_name, stage.domain_index)
            stage.reloaded_metrics = restored.evaluate_many(
                stream.test_sets_seen(stage.domain_index)
            )
    return result
