"""Table II driver: synthetic two-domain comparison with CERL ablations.

The paper's Table II evaluates CFR-A, CFR-B, CFR-C, CERL and three CERL
ablations — without the feature-representation transformation (w/o FRT), with
random memory instead of herding (w/o herding) and without cosine
normalisation (w/o cosine norm) — on two sequential synthetic domains with a
memory budget of M = 10000, averaged over repeated simulations.

The strategy column set is derived from the estimator registry (never
duplicated as string literals), so the default table carries one column per
registered estimator plus the CERL ablations, and registering a new estimator
extends the table automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import estimator_names
from ..data.synthetic import SyntheticConfig, SyntheticDomainGenerator
from .parallel import parallel_map
from .profiles import ExperimentProfile, QUICK
from .reporting import format_table
from .runner import StrategyResult, run_two_domain_comparison

__all__ = [
    "Table2Result",
    "run_table2",
    "TABLE2_STRATEGIES",
    "TABLE2_ESTIMATORS",
    "TABLE2_ABLATIONS",
]

#: The paper's original column set (registry-derived, not duplicated).
TABLE2_STRATEGIES: Tuple[str, ...] = estimator_names(tag="paper")
#: The extended column set: every registered estimator, in registry order.
TABLE2_ESTIMATORS: Tuple[str, ...] = estimator_names()
TABLE2_ABLATIONS: Tuple[str, ...] = (
    "CERL (w/o FRT)",
    "CERL (w/o herding)",
    "CERL (w/o cosine norm)",
)


@dataclass
class Table2Result:
    """Structured Table II output (averaged over repetitions)."""

    profile: str
    repetitions: int
    #: results[strategy] -> averaged metrics {"prev_sqrt_pehe", "prev_ate_error", ...}
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Flatten into report rows, one per strategy/ablation."""
        rows: List[Dict[str, object]] = []
        for strategy, metrics in self.results.items():
            row: Dict[str, object] = {"strategy": strategy}
            row.update(metrics)
            rows.append(row)
        return rows

    def report(self) -> str:
        """Formatted text table mirroring the paper's Table II layout."""
        return format_table(
            self.rows(),
            title=(
                f"Table II — synthetic two-domain comparison "
                f"(profile: {self.profile}, {self.repetitions} repetition(s))"
            ),
        )

    def get(self, strategy: str) -> Dict[str, float]:
        """Averaged metrics for one strategy."""
        return self.results[strategy]


def _average_results(per_rep: List[List[StrategyResult]]) -> Dict[str, Dict[str, float]]:
    """Average per-repetition strategy results into one row per strategy."""
    averaged: Dict[str, Dict[str, float]] = {}
    strategies = [result.strategy for result in per_rep[0]]
    for position, strategy in enumerate(strategies):
        rows = [rep[position].row() for rep in per_rep]
        averaged[strategy] = {
            "prev_sqrt_pehe": float(np.mean([row["prev_sqrt_pehe"] for row in rows])),
            "prev_ate_error": float(np.mean([row["prev_ate_error"] for row in rows])),
            "new_sqrt_pehe": float(np.mean([row["new_sqrt_pehe"] for row in rows])),
            "new_ate_error": float(np.mean([row["new_ate_error"] for row in rows])),
        }
    return averaged


def _table2_repetition(task: tuple) -> List[StrategyResult]:
    """Run one simulation repetition of Table II (all strategies/ablations).

    A pure function of its payload: the generator is rebuilt from ``seed``
    and the repetition index drives both the simulated domains and the model
    seeds, exactly as the serial loop always derived them.
    """
    profile, synthetic_config, all_names, seed, repetition, budget = task
    generator = SyntheticDomainGenerator(synthetic_config, seed=seed)
    first_domain = generator.generate_domain(0, repetition=repetition)
    second_domain = generator.generate_domain(1, repetition=repetition)
    return run_two_domain_comparison(
        first_domain,
        second_domain,
        strategies=all_names,
        model_config=profile.model_config(seed=seed + repetition),
        continual_config=profile.continual_config(memory_budget=budget),
        seed=seed + repetition,
    )


def run_table2(
    profile: ExperimentProfile = QUICK,
    strategies: Sequence[str] = TABLE2_ESTIMATORS,
    ablations: Sequence[str] = TABLE2_ABLATIONS,
    seed: int = 0,
    repetitions: Optional[int] = None,
    memory_budget: Optional[int] = None,
    synthetic_config: Optional[SyntheticConfig] = None,
    workers: int = 1,
) -> Table2Result:
    """Regenerate (a scaled version of) Table II.

    Parameters
    ----------
    profile:
        Scale/training profile.
    strategies, ablations:
        Estimator names (any registered name; defaults to every registered
        estimator — pass :data:`TABLE2_STRATEGIES` for the paper's original
        four columns) and CERL ablation names to include.
    repetitions:
        Number of independent simulation repetitions (defaults to the profile).
    memory_budget:
        Memory budget M (defaults to the profile's Table II budget).
    synthetic_config:
        Override of the synthetic generator configuration; the number of units
        always comes from the profile unless explicitly set here.
    workers:
        Number of processes to fan the repetitions over.  ``1`` (the default)
        runs serially; any value yields identical averaged tables because
        every repetition is independently seeded.
    """
    repetitions = repetitions if repetitions is not None else profile.repetitions
    budget = memory_budget if memory_budget is not None else profile.memory_budget_table2
    all_names = tuple(strategies) + tuple(ablations)

    if synthetic_config is None:
        synthetic_config = profile.synthetic_config()

    tasks = [
        (profile, synthetic_config, all_names, seed, repetition, budget)
        for repetition in range(repetitions)
    ]
    per_rep: List[List[StrategyResult]] = parallel_map(
        _table2_repetition, tasks, workers=workers
    )

    return Table2Result(
        profile=profile.name,
        repetitions=repetitions,
        results=_average_results(per_rep),
    )
