"""Table I driver: News and BlogCatalog under three domain-shift scenarios.

The paper's Table I reports sqrt(PEHE) and the ATE error on the *previous* and
*new* test sets for the strategies CFR-A, CFR-B, CFR-C and CERL, on the News
and BlogCatalog benchmarks, under substantial / moderate / no domain shift,
with a memory budget of M = 500.

:func:`run_table1` regenerates those rows (at a configurable profile scale)
and returns both the structured results and a formatted text report.  The
column sets are derived from the estimator registry — never duplicated as
string literals — so the default table carries one column per registered
estimator (the paper strategies plus the S/T/X/R meta-learner zoo), and
registering a new estimator extends the table automatically.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.api import estimator_names
from ..data.blogcatalog import BlogCatalogBenchmark
from ..data.news import NewsBenchmark
from ..data.semisynthetic import SemiSyntheticBenchmark, ShiftScenario
from .parallel import parallel_map
from .profiles import ExperimentProfile, QUICK
from .reporting import format_table
from .runner import StrategyResult, run_two_domain_comparison

__all__ = [
    "Table1Result",
    "run_table1",
    "TABLE1_STRATEGIES",
    "TABLE1_ESTIMATORS",
    "TABLE1_SCENARIOS",
]

#: The paper's original column set (registry-derived, not duplicated).
TABLE1_STRATEGIES: Tuple[str, ...] = estimator_names(tag="paper")
#: The extended column set: every registered estimator, in registry order.
TABLE1_ESTIMATORS: Tuple[str, ...] = estimator_names()
TABLE1_SCENARIOS: Tuple[ShiftScenario, ...] = ("substantial", "moderate", "none")


@dataclass
class Table1Result:
    """Structured Table I output."""

    profile: str
    #: results[(dataset, scenario)] -> list of per-strategy results
    results: Dict[Tuple[str, str], List[StrategyResult]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Flatten into report rows (one per dataset × scenario × strategy)."""
        rows: List[Dict[str, object]] = []
        for (dataset, scenario), strategy_results in self.results.items():
            for result in strategy_results:
                row: Dict[str, object] = {"dataset": dataset, "shift": scenario}
                row.update(result.row())
                rows.append(row)
        return rows

    def report(self) -> str:
        """Formatted text table mirroring the paper's Table I layout."""
        return format_table(
            self.rows(), title=f"Table I — two sequential domains (profile: {self.profile})"
        )

    def get(self, dataset: str, scenario: str, strategy: str) -> StrategyResult:
        """Look up one strategy's result for a dataset/scenario pair."""
        for result in self.results[(dataset, scenario)]:
            if result.strategy == strategy:
                return result
        raise KeyError(f"no result for strategy '{strategy}' on ({dataset}, {scenario})")


#: Cache bound: both Table I corpora of one run, and no more.  A paper-scale
#: population holds a ~5000 x 3477 counts matrix, so hoarding more would pin
#: hundreds of MB.
_BENCHMARK_CACHE_SIZE = 2

_benchmark_cache: "OrderedDict[Tuple[str, float, int], SemiSyntheticBenchmark]" = OrderedDict()


def _make_benchmark(key: str, scale: float, seed: int) -> SemiSyntheticBenchmark:
    if key == "news":
        return NewsBenchmark(scale=scale, seed=seed)
    if key == "blogcatalog":
        return BlogCatalogBenchmark(scale=scale, seed=seed)
    raise ValueError(f"unknown Table I dataset '{key}' (expected 'news' or 'blogcatalog')")


def _benchmark(dataset: str, profile: ExperimentProfile, seed: int) -> SemiSyntheticBenchmark:
    # Process-local cache: cells of one dataset share the simulated population
    # (it is read-only once built), whether they run serially or in a worker.
    # Unlike a plain lru_cache, eviction actively releases the evicted
    # benchmark's population — the bounded mechanism/summary survive on the
    # object, so anything still holding it keeps its fast paths.
    key = (dataset.lower(), profile.corpus_scale, seed)
    benchmark = _benchmark_cache.get(key)
    if benchmark is not None:
        _benchmark_cache.move_to_end(key)
        return benchmark
    benchmark = _make_benchmark(*key)
    _benchmark_cache[key] = benchmark
    while len(_benchmark_cache) > _BENCHMARK_CACHE_SIZE:
        _, evicted = _benchmark_cache.popitem(last=False)
        evicted.release_population()
    return benchmark


def _clear_benchmarks() -> None:
    """Release every cached population and empty the cache."""
    while _benchmark_cache:
        _, evicted = _benchmark_cache.popitem(last=False)
        evicted.release_population()


_benchmark.cache_clear = _clear_benchmarks


def _table1_cell(task: tuple) -> List[StrategyResult]:
    """Run one (dataset, scenario) cell of Table I.

    The cell is a pure function of its payload: the benchmark population is
    simulated from ``seed`` alone and the domain split from ``seed + 1`` per
    scenario, so cells can execute in any order or process and produce the
    same rows.
    """
    dataset, scenario, profile, strategies, seed, budget = task
    benchmark = _benchmark(dataset, profile, seed)
    first_domain, second_domain = benchmark.generate_domain_pair(scenario)
    return run_two_domain_comparison(
        first_domain,
        second_domain,
        strategies=strategies,
        model_config=profile.model_config(seed=seed),
        continual_config=profile.continual_config(memory_budget=budget),
        seed=seed,
    )


def run_table1(
    profile: ExperimentProfile = QUICK,
    datasets: Sequence[str] = ("news", "blogcatalog"),
    scenarios: Sequence[ShiftScenario] = TABLE1_SCENARIOS,
    strategies: Sequence[str] = TABLE1_ESTIMATORS,
    seed: int = 0,
    memory_budget: Optional[int] = None,
    workers: int = 1,
    force_parallel: bool = False,
) -> Table1Result:
    """Regenerate (a scaled version of) Table I.

    Parameters
    ----------
    profile:
        Scale/training profile; ``PAPER`` reproduces the paper's sizes.
    datasets:
        Subset of ``("news", "blogcatalog")`` to run.
    scenarios:
        Subset of the three shift scenarios.
    strategies:
        Estimator names (any registered name; defaults to every registered
        estimator — pass :data:`TABLE1_STRATEGIES` for the paper's original
        four columns).
    seed:
        Seed for data generation, splits and model initialisation.
    memory_budget:
        Memory budget M; defaults to the profile's Table I budget.
    workers:
        Number of processes to fan the dataset × scenario cells over.
        ``1`` (the default) runs serially; any value produces identical
        tables because each cell is seeded independently.  Requests beyond
        the core count clamp back toward serial (see
        :func:`~repro.experiments.parallel.parallel_map`).
    force_parallel:
        Bypass the core-count clamp (determinism tests on small machines).
    """
    # Unknown dataset names fail fast (and in the parent process).
    for dataset in datasets:
        _benchmark(dataset, profile, seed)
    budget = memory_budget if memory_budget is not None else profile.memory_budget_table1
    cells = [(dataset, scenario) for dataset in datasets for scenario in scenarios]
    tasks = [
        (dataset, scenario, profile, tuple(strategies), seed, budget)
        for dataset, scenario in cells
    ]
    cell_results = parallel_map(
        _table1_cell, tasks, workers=workers, force_parallel=force_parallel
    )
    output = Table1Result(profile=profile.name)
    for cell, results in zip(cells, cell_results):
        output.results[cell] = results
    # The sweep is done with the raw populations; drop them (mechanism and
    # summary stay cached) so a following chunked/SLO phase in the same
    # process never holds two copies of a corpus resident.
    for benchmark in _benchmark_cache.values():
        benchmark.release_population()
    return output
