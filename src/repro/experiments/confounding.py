"""Confounding-strength sweep: estimator zoo vs. selection-bias severity.

The synthetic generator's probit propensity (Sec. IV-C) admits a single scale
knob, :attr:`~repro.data.synthetic.SyntheticConfig.confounding_strength`:
``0`` collapses treatment assignment to a fair coin (a randomised trial),
``1`` is the paper's design, and larger values add selection on the baseline
outcome surface (sicker units get treated).  Sweeping that knob across the
registered estimators separates the methods that model selection bias (the orthogonal
R-learner, the propensity-blended X-learner, the balancing CFR/CERL
representations) from the plain outcome regressions (S/T) whose ATE error
grows with the strength.

The sweep reuses the Table II machinery: every (strength, estimator-set) cell
is a pure function of its payload and fans over
:func:`~repro.experiments.parallel.parallel_map`, so ``workers > 1`` returns
bit-identical tables.  Column sets are derived from the estimator registry —
registering a new estimator extends the sweep automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.api import estimator_names
from ..data.synthetic import SyntheticConfig, SyntheticDomainGenerator
from .parallel import parallel_map
from .profiles import ExperimentProfile, QUICK
from .reporting import format_table
from .runner import StrategyResult, run_two_domain_comparison

__all__ = [
    "ConfoundingSweepResult",
    "run_confounding_sweep",
    "CONFOUNDING_STRENGTHS",
    "CONFOUNDING_ESTIMATORS",
]

#: Default sweep grid: randomised trial, the paper's design, and strong bias.
CONFOUNDING_STRENGTHS: Tuple[float, ...] = (0.0, 1.0, 2.5)
#: Default column set: every registered estimator, in registry order.
CONFOUNDING_ESTIMATORS: Tuple[str, ...] = estimator_names()


@dataclass
class ConfoundingSweepResult:
    """Structured sweep output: one row per strength x estimator."""

    profile: str
    #: results[strength] -> list of per-strategy results, in column order.
    results: Dict[float, List[StrategyResult]] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Flatten into report rows (one per strength x strategy)."""
        rows: List[Dict[str, object]] = []
        for strength, strategy_results in self.results.items():
            for result in strategy_results:
                row: Dict[str, object] = {"confounding": strength}
                row.update(result.row())
                rows.append(row)
        return rows

    def report(self) -> str:
        """Formatted text table of the sweep."""
        return format_table(
            self.rows(),
            title=f"Confounding-strength sweep (profile: {self.profile})",
        )

    def get(self, strength: float, strategy: str) -> StrategyResult:
        """Look up one estimator's result at one confounding strength."""
        for result in self.results[strength]:
            if result.strategy == strategy:
                return result
        raise KeyError(f"no result for strategy '{strategy}' at strength {strength}")


def _confounding_cell(task: tuple) -> List[StrategyResult]:
    """Run one confounding-strength cell (all estimators, two domains).

    A pure function of its payload: the generator is rebuilt from ``seed`` and
    the strength only reshapes the propensity z-score, so the covariate draws
    (and hence the true effects) are shared across the whole sweep — cells
    differ *only* in how strongly treatment selects on the units.
    """
    profile, synthetic_config, strategies, seed, strength, budget = task
    config = replace(synthetic_config, confounding_strength=strength)
    generator = SyntheticDomainGenerator(config, seed=seed)
    first_domain = generator.generate_domain(0)
    second_domain = generator.generate_domain(1)
    return run_two_domain_comparison(
        first_domain,
        second_domain,
        strategies=strategies,
        model_config=profile.model_config(seed=seed),
        continual_config=profile.continual_config(memory_budget=budget),
        seed=seed,
    )


def run_confounding_sweep(
    profile: ExperimentProfile = QUICK,
    strengths: Sequence[float] = CONFOUNDING_STRENGTHS,
    strategies: Sequence[str] = CONFOUNDING_ESTIMATORS,
    seed: int = 0,
    memory_budget: Optional[int] = None,
    synthetic_config: Optional[SyntheticConfig] = None,
    workers: int = 1,
    force_parallel: bool = False,
) -> ConfoundingSweepResult:
    """Sweep confounding strength across the registered estimators.

    Parameters
    ----------
    profile:
        Scale/training profile.
    strengths:
        Confounding strengths to sweep (``0`` = randomised trial,
        ``1`` = the paper's design, ``>1`` = added outcome-based selection).
    strategies:
        Estimator names (any registered name; defaults to every registered
        estimator, in registry order).
    seed:
        Seed for data generation, splits and model initialisation; shared
        across strengths so the covariate draws are identical cell to cell.
    memory_budget:
        Memory budget M (defaults to the profile's Table II budget).
    synthetic_config:
        Override of the synthetic generator configuration; its
        ``confounding_strength`` is replaced per cell by the sweep value.
    workers:
        Number of processes to fan the strength cells over.  ``1`` (the
        default) runs serially; any value yields identical tables because
        every cell is a pure function of its payload.
    force_parallel:
        Bypass the core-count clamp (determinism tests on small machines).
    """
    if not strengths:
        raise ValueError("run_confounding_sweep requires at least one strength")
    budget = memory_budget if memory_budget is not None else profile.memory_budget_table2
    if synthetic_config is None:
        synthetic_config = profile.synthetic_config()
    tasks = [
        (profile, synthetic_config, tuple(strategies), seed, float(strength), budget)
        for strength in strengths
    ]
    cell_results = parallel_map(
        _confounding_cell, tasks, workers=workers, force_parallel=force_parallel
    )
    output = ConfoundingSweepResult(profile=profile.name)
    for strength, results in zip(strengths, cell_results):
        output.results[float(strength)] = results
    return output
