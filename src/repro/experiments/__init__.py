"""Experiment drivers regenerating the paper's tables and figures."""

from .autoadapt import AutoAdaptationResult, TickTrace, run_auto_adaptation
from .confounding import (
    CONFOUNDING_ESTIMATORS,
    CONFOUNDING_STRENGTHS,
    ConfoundingSweepResult,
    run_confounding_sweep,
)
from .deployment import DeploymentResult, DeploymentStage, run_continual_deployment
from .fleet import FleetDeploymentResult, FleetStreamReport, run_fleet_deployment
from .multiproc import (
    MultiprocFleetResult,
    MultiprocStreamReport,
    run_multiproc_fleet,
)
from .parallel import derive_seed, effective_workers, parallel_map, seeded_tasks
from .profiles import PAPER, QUICK, SMOKE, ExperimentProfile
from .slo import SloSuiteResult, run_slo_suite
from .runner import (
    StrategyResult,
    StreamResult,
    cerl_variant,
    run_stream,
    run_stream_suite,
    run_two_domain_comparison,
)
from .reporting import format_series, format_table, summarize_two_domain_results
from .table1 import (
    TABLE1_ESTIMATORS,
    TABLE1_SCENARIOS,
    TABLE1_STRATEGIES,
    Table1Result,
    run_table1,
)
from .table2 import (
    TABLE2_ABLATIONS,
    TABLE2_ESTIMATORS,
    TABLE2_STRATEGIES,
    Table2Result,
    run_table2,
)
from .figure3 import (
    MemoryCurveResult,
    SensitivityResult,
    run_cosine_ablation_stream,
    run_figure3_memory,
    run_figure3_sensitivity,
)

__all__ = [
    "AutoAdaptationResult",
    "TickTrace",
    "run_auto_adaptation",
    "DeploymentResult",
    "DeploymentStage",
    "run_continual_deployment",
    "FleetDeploymentResult",
    "FleetStreamReport",
    "run_fleet_deployment",
    "MultiprocFleetResult",
    "MultiprocStreamReport",
    "run_multiproc_fleet",
    "SloSuiteResult",
    "run_slo_suite",
    "derive_seed",
    "effective_workers",
    "parallel_map",
    "seeded_tasks",
    "ExperimentProfile",
    "SMOKE",
    "QUICK",
    "PAPER",
    "StrategyResult",
    "StreamResult",
    "cerl_variant",
    "run_stream",
    "run_stream_suite",
    "run_two_domain_comparison",
    "format_series",
    "format_table",
    "summarize_two_domain_results",
    "Table1Result",
    "run_table1",
    "TABLE1_STRATEGIES",
    "TABLE1_ESTIMATORS",
    "TABLE1_SCENARIOS",
    "Table2Result",
    "run_table2",
    "TABLE2_STRATEGIES",
    "TABLE2_ESTIMATORS",
    "TABLE2_ABLATIONS",
    "ConfoundingSweepResult",
    "run_confounding_sweep",
    "CONFOUNDING_STRENGTHS",
    "CONFOUNDING_ESTIMATORS",
    "MemoryCurveResult",
    "SensitivityResult",
    "run_figure3_memory",
    "run_figure3_sensitivity",
    "run_cosine_ablation_stream",
]
