"""SLO suite: million-row production-shaped replay with chaos, against the fleet.

:func:`run_slo_suite` is the top of the :mod:`repro.slo` stack.  One run

1. trains ``n_streams`` lineages of any registered estimator (CERL by
   default; seeds derive exactly as in the fleet experiments, so the models —
   and therefore the bitwise references — are reproducible) and registers
   them as version 0 in a shared :class:`~repro.serve.ModelRegistry`;
2. builds a seeded :class:`~repro.slo.TrafficTape` sized to at least
   ``total_rows`` queries, and a deterministic **chunked** row source per
   stream (:meth:`~repro.data.synthetic.SyntheticDomainGenerator` via
   :class:`~repro.data.streams.ChunkedPopulation`) — row content is
   regenerated per tick from ``(stream seed, chunk key)``, so a million-row
   replay never materialises any full population;
3. replays the tape through a :class:`~repro.slo.LoadRunner` against a
   spawned :class:`~repro.serve.fleet.MultiprocGateway` (or the in-process
   :class:`~repro.serve.ServingGateway` in ``mode="inproc"``), injecting a
   :class:`~repro.slo.FaultSchedule` of worker-kill, straggler and
   registry-outage faults mid-replay and measuring recovery-time-to-SLO for
   each;
4. **bitwise-verifies** the runner's deterministic response sample: every
   sampled response is compared against the canonical-batch reference of the
   model version it reports (the row tiled to ``max_batch`` — exactly the
   execution shape the serving stack pads to);
5. assembles the ``BENCH_slo.json`` payload for the CI perf gate.

Honest gating: a multiprocess fleet on a 1-core runner cannot express
concurrent serving, so ``mode="multiproc"`` *falls back* to the in-process
gateway there and the report's gateable sections carry ``"gated": true`` with
the reason — the perf gate skips them loudly instead of comparing noise
against multi-core floors.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.api import ContinualEstimator, make_estimator
from ..data.streams import ChunkedPopulation, DomainStream
from ..data.synthetic import SyntheticDomainGenerator
from ..serve import ModelRegistry, ServingGateway
from ..serve.fleet import MultiprocGateway
from ..slo import (
    FaultSchedule,
    FleetChaosOps,
    LoadReport,
    LoadRunner,
    SloTargets,
    TapeConfig,
    TrafficTape,
    build_slo_report,
    default_fault_schedule,
    write_slo_report,
)
from .multiproc import _spanning_names
from .parallel import derive_seed
from .profiles import SMOKE, ExperimentProfile

__all__ = ["SloSuiteResult", "run_slo_suite"]


@dataclass
class SloSuiteResult:
    """Everything one SLO suite run produced."""

    mode: str
    gated: bool
    gate_reason: str
    estimator: str = "CERL"
    streams: List[str] = field(default_factory=list)
    tape_rows: int = 0
    tape_fingerprint: str = ""
    load: Optional[LoadReport] = None
    verified_samples: int = 0
    mismatched_samples: int = 0
    report: Dict[str, object] = field(default_factory=dict)
    report_path: Optional[Path] = None
    elapsed_s: float = 0.0

    @property
    def sample_parity(self) -> bool:
        """Whether every verified sampled response was bitwise exact."""
        return self.mismatched_samples == 0

    @property
    def all_faults_recovered(self) -> bool:
        return self.load is not None and self.load.all_faults_recovered


def _sized_tape(
    tenants: List[str], total_rows: int, mean_rows_per_tick: int, seed: int
) -> TrafficTape:
    """A tape carrying at least ``total_rows`` queries (O(n_ticks) to size).

    The heavy-tailed row draws make the total random, so the tape is built
    from the expected tick count, measured (one O(1)-memory pass), and grown
    proportionally until it clears the floor — still a pure function of the
    inputs, so two calls produce the identical tape.
    """
    n_ticks = max(20, round(total_rows / mean_rows_per_tick))
    for _ in range(8):
        tape = TrafficTape(
            tenants,
            TapeConfig(n_ticks=n_ticks, mean_rows_per_tick=mean_rows_per_tick),
            seed=seed,
        )
        measured = tape.total_rows()
        if measured >= total_rows:
            return tape
        shortfall = total_rows / max(measured, 1)
        n_ticks = max(n_ticks + 1, int(n_ticks * shortfall * 1.05) + 1)
    raise RuntimeError(
        f"could not size a tape to {total_rows} rows in 8 attempts"
    )


def run_slo_suite(
    total_rows: int = 1_000_000,
    profile: ExperimentProfile = SMOKE,
    mode: str = "multiproc",
    n_streams: int = 3,
    n_workers: int = 2,
    n_clients: int = 4,
    mean_rows_per_tick: int = 256,
    max_batch: int = 64,
    sample_per_tick: int = 1,
    inject_faults: bool = True,
    straggler_delay_ms: float = 25.0,
    registry_root: Optional[Union[str, Path]] = None,
    stream_prefix: str = "slo",
    cache_capacity: int = 0,
    estimator: str = "CERL",
    seed: int = 0,
    epochs: Optional[int] = None,
    targets: Optional[SloTargets] = None,
    out_path: Optional[Union[str, Path]] = None,
    force_multiproc: bool = False,
) -> SloSuiteResult:
    """Replay a production-shaped tape with chaos; emit the SLO report.

    Parameters
    ----------
    total_rows:
        Floor on the tape's total query count (the acceptance scale is one
        million; CI smoke passes a few thousand).
    mode:
        ``"multiproc"`` (spawned worker fleet; falls back to in-process with
        honest gating on machines without a second core) or ``"inproc"``.
    n_streams, n_workers, n_clients:
        Fleet shape and client thread count.
    mean_rows_per_tick, max_batch, sample_per_tick:
        Tape density, canonical serving batch, and per-tick bitwise-sample
        budget.
    inject_faults:
        Run the default worker-kill / straggler / registry-outage schedule
        (multiprocess mode only — the in-process gateway has no workers to
        kill, so the fallback path reports the chaos sections gated).
    cache_capacity:
        Front-door response cache (0 keeps every query on the serving path,
        which is what a latency SLO should measure).
    estimator:
        Registered estimator name to train and serve (default ``"CERL"``;
        any :func:`~repro.core.api.estimator_names` entry works — the
        serving stack never special-cases the model family).
    seed, epochs:
        Base seed for derived per-stream seeds; per-domain epoch budget.
    out_path:
        When given, the ``BENCH_slo.json`` payload is atomically written
        there.
    force_multiproc:
        Spawn the fleet even on a single core (tests exercising the chaos
        path on 1-core CI; the report still carries the honest gate so the
        timings are never compared against multi-core floors).
    """
    if total_rows < 1:
        raise ValueError("total_rows must be at least 1")
    if mode not in ("multiproc", "inproc"):
        raise ValueError(f"unknown mode {mode!r} (multiproc or inproc)")
    if n_streams < 2 or n_workers < 2:
        raise ValueError("the SLO suite needs at least 2 streams and 2 workers")
    epochs = epochs if epochs is not None else profile.epochs
    targets = targets if targets is not None else SloTargets()

    gated = False
    gate_reason = ""
    cpu_count = os.cpu_count() or 1
    if mode == "multiproc" and cpu_count < 2:
        # A spawned fleet on one core measures scheduler thrash, not serving.
        gated = True
        gate_reason = (
            f"multiproc SLO run needs >= 2 cores; this machine has {cpu_count}"
        )
        if not force_multiproc:
            mode = "inproc"

    with ExitStack() as stack:
        if registry_root is None:
            registry_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="cerl_slo_")
            )
        registry = ModelRegistry(registry_root)
        names = _spanning_names(stream_prefix, n_streams, n_workers)

        # --- train + register one lineage per stream (fleet-identical seeds) --- #
        learners: Dict[str, ContinualEstimator] = {}
        sources: Dict[str, ChunkedPopulation] = {}
        for name in names:
            stream_seed = derive_seed(seed, "fleet", name)
            generator = SyntheticDomainGenerator(
                profile.synthetic_config(), seed=stream_seed
            )
            stream = DomainStream(
                [generator.generate_domain(0), generator.generate_domain(1)],
                seed=stream_seed,
            )
            learner = make_estimator(
                estimator,
                stream.n_features,
                profile.model_config(seed=stream_seed, epochs=epochs),
                profile.continual_config(memory_budget=profile.memory_budget_table1),
            )
            learner.observe(stream.train_data(0), epochs=epochs)
            registry.save(name, 0, learner, metadata={"trigger": "slo-initial"})
            learners[name] = learner
            # Row content is regenerated per (stream seed, chunk key): the
            # replay touches millions of rows but holds one chunk at a time.
            sources[name] = ChunkedPopulation(
                lambda key, rows, g=generator: g.generate_domain(
                    0, n_units=rows, repetition=1 + key
                ),
                min_rows=10,
                name=f"{name}/domain0",
            )

        tape = _sized_tape(names, total_rows, mean_rows_per_tick, seed)
        result = SloSuiteResult(
            mode=mode, gated=gated, gate_reason=gate_reason, estimator=estimator
        )
        result.streams = names
        result.tape_rows = tape.total_rows()
        result.tape_fingerprint = tape.fingerprint()

        started = time.perf_counter()
        if mode == "multiproc":
            gateway = stack.enter_context(
                MultiprocGateway(
                    registry_root,
                    names,
                    n_workers=n_workers,
                    max_batch=max_batch,
                    cache_capacity=cache_capacity,
                )
            )
        else:
            gateway = stack.enter_context(
                ServingGateway(
                    registry=registry,
                    max_batch=max_batch,
                    cache_capacity=cache_capacity,
                )
            )

        faults = FaultSchedule([])
        chaos_ops = None
        if inject_faults and mode == "multiproc":
            victim = next(
                name
                for name in names
                if any(
                    gateway.worker_for(other) != gateway.worker_for(name)
                    for other in names
                )
            )
            faults = default_fault_schedule(
                len(tape), victim, straggler_delay_ms=straggler_delay_ms
            )
            chaos_ops = FleetChaosOps(
                gateway,
                registry_root,
                probe_rows={
                    name: sources[name].rows_for(0, max(10, 1))[0] for name in names
                },
            )

        runner = LoadRunner(
            gateway,
            tape,
            sources,
            n_clients=n_clients,
            sample_per_tick=sample_per_tick,
            sample_seed=seed,
            faults=faults,
            chaos_ops=chaos_ops,
            targets=targets,
        )
        result.load = runner.run()
        result.elapsed_s = time.perf_counter() - started

        # --- bitwise-verify the deterministic response sample --------------- #
        # Reference: the sampled row tiled to the canonical batch — the exact
        # execution shape the serving stack pads every micro-batch to, so a
        # healthy response must match it bit for bit.
        by_tick: Dict[int, List[Tuple[int, Tuple[float, float, float, Optional[int]]]]] = {}
        for (tick_index, row_index), response in result.load.samples.items():
            by_tick.setdefault(tick_index, []).append((row_index, response))
        tick_tenant = {
            tick.index: (tick.tenant, tick.chunk_key, tick.rows)
            for tick in tape.ticks()
            if tick.index in by_tick
        }
        for tick_index, sampled in by_tick.items():
            tenant, chunk_key, rows = tick_tenant[tick_index]
            chunk = sources[tenant].rows_for(chunk_key, rows)
            learner = learners[tenant]
            for row_index, (mu0, mu1, ite, version) in sampled:
                reference = learner.predict(
                    np.tile(chunk[row_index], (max_batch, 1))
                )
                exact = (
                    version == 0
                    and mu0 == float(reference.y0_hat[0])
                    and mu1 == float(reference.y1_hat[0])
                    and ite == float(reference.ite_hat[0])
                )
                if exact:
                    result.verified_samples += 1
                else:
                    result.mismatched_samples += 1

        result.report = build_slo_report(
            result.load,
            mode=mode,
            total_rows=result.tape_rows,
            verified_samples=result.verified_samples,
            mismatched_samples=result.mismatched_samples,
            gated=gated,
            gate_reason=gate_reason,
            tape_fingerprint=result.tape_fingerprint,
        )
        if out_path is not None:
            result.report_path = write_slo_report(result.report, out_path)
    return result
