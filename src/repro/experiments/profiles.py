"""Experiment profiles: paper-scale and quick (CI / benchmark) parameterisations.

The paper trains on 5000-10000 units per domain for many epochs and averages
over 10 repetitions.  The experiment drivers accept a profile so the same code
can run at paper scale (documented in EXPERIMENTS.md) or at a reduced scale
that finishes in seconds for tests and pytest-benchmark runs, while keeping
every code path identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import ContinualConfig, ModelConfig
from ..data.synthetic import SyntheticConfig

__all__ = ["ExperimentProfile", "QUICK", "SMOKE", "PAPER"]


@dataclass
class ExperimentProfile:
    """Scale and training parameters shared by the experiment drivers.

    Attributes
    ----------
    name:
        Profile label, reported in the generated tables.
    corpus_scale:
        Fraction of the semi-synthetic corpus size (News/BlogCatalog).
    synthetic_units:
        Units per synthetic domain.
    epochs:
        Training epochs per domain.
    memory_budget_table1:
        Memory budget M for the Table I experiments (paper: 500).
    memory_budget_table2:
        Memory budget M for the Table II experiments (paper: 10000).
    repetitions:
        Number of simulation repetitions to average over (paper: 10).
    """

    name: str
    corpus_scale: float
    synthetic_units: int
    epochs: int
    memory_budget_table1: int
    memory_budget_table2: int
    repetitions: int
    representation_dim: int = 32
    encoder_hidden: tuple = (64,)
    outcome_hidden: tuple = (32,)
    batch_size: int = 128
    learning_rate: float = 1e-2
    #: Covariate-block sizes of the synthetic generator
    #: (confounders, instruments, irrelevant, adjustment).  The paper uses
    #: (35, 10, 20, 35); the quick profiles shrink the dimensionality so the
    #: outcome surface stays learnable from far fewer units.
    synthetic_blocks: tuple = (35, 10, 20, 35)
    synthetic_domain_shift: float = 1.0

    def model_config(self, seed: int = 0, **overrides) -> ModelConfig:
        """Build a :class:`ModelConfig` consistent with the profile."""
        config = ModelConfig(
            representation_dim=self.representation_dim,
            encoder_hidden=self.encoder_hidden,
            outcome_hidden=self.outcome_hidden,
            batch_size=self.batch_size,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            seed=seed,
        )
        return config.with_updates(**overrides) if overrides else config

    def continual_config(self, memory_budget: int, **overrides) -> ContinualConfig:
        """Build a :class:`ContinualConfig` with the given memory budget."""
        config = ContinualConfig(memory_budget=memory_budget)
        return config.with_updates(**overrides) if overrides else config

    def synthetic_config(self, **overrides) -> SyntheticConfig:
        """Build the synthetic-generator configuration for this profile."""
        confounders, instruments, irrelevant, adjustment = self.synthetic_blocks
        config = SyntheticConfig(
            n_confounders=confounders,
            n_instruments=instruments,
            n_irrelevant=irrelevant,
            n_adjustment=adjustment,
            n_units=self.synthetic_units,
            domain_mean_shift=self.synthetic_domain_shift,
        )
        if overrides:
            config = replace(config, **overrides)
        return config


#: Very small profile used by integration tests: every code path, minimal time.
SMOKE = ExperimentProfile(
    name="smoke",
    corpus_scale=0.04,
    synthetic_units=240,
    epochs=8,
    memory_budget_table1=60,
    memory_budget_table2=120,
    repetitions=1,
    representation_dim=16,
    encoder_hidden=(32,),
    outcome_hidden=(16,),
    batch_size=64,
    synthetic_blocks=(8, 3, 5, 8),
    synthetic_domain_shift=1.5,
)

#: Benchmark profile: large enough for the paper's qualitative ordering to
#: emerge, small enough for pytest-benchmark runs on a laptop.
QUICK = ExperimentProfile(
    name="quick",
    corpus_scale=0.16,
    synthetic_units=2000,
    epochs=80,
    memory_budget_table1=250,
    memory_budget_table2=1000,
    repetitions=1,
    representation_dim=32,
    encoder_hidden=(64,),
    outcome_hidden=(32,),
    batch_size=128,
    synthetic_blocks=(15, 5, 10, 15),
    synthetic_domain_shift=1.5,
)

#: Paper-scale profile (hours of CPU time); documented for completeness.
PAPER = ExperimentProfile(
    name="paper",
    corpus_scale=1.0,
    synthetic_units=10000,
    epochs=120,
    memory_budget_table1=500,
    memory_budget_table2=10000,
    repetitions=10,
    representation_dim=64,
    encoder_hidden=(128, 64),
    outcome_hidden=(64, 32),
    batch_size=256,
    learning_rate=5e-3,
)
