"""Shared experiment machinery: running strategies over domain streams.

All drivers feed learners through the engine-backed ``observe`` protocol;
:func:`run_stream` accepts either a list of datasets or a pre-built
:class:`~repro.data.streams.DomainStream` and can drive *several* strategies
through one shared stream iterator, so the train/val/test splits are computed
once per experiment instead of once per strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.cerl import CERL
from ..core.config import ContinualConfig, ModelConfig
from ..core.strategies import ContinualEstimator, make_strategy
from ..data.dataset import CausalDataset
from ..data.streams import DomainStream

__all__ = [
    "StrategyResult",
    "StreamResult",
    "run_two_domain_comparison",
    "run_stream",
    "run_stream_suite",
    "cerl_variant",
]


@dataclass
class StrategyResult:
    """Result of one strategy on a two-domain experiment (one table row)."""

    strategy: str
    previous: Dict[str, float]
    new: Dict[str, float]
    needs_previous_raw_data: bool
    stores_all_raw_data: bool

    def row(self) -> Dict[str, float | str]:
        """Flatten into a report row with the paper's column names."""
        return {
            "strategy": self.strategy,
            "prev_sqrt_pehe": self.previous["sqrt_pehe"],
            "prev_ate_error": self.previous["ate_error"],
            "new_sqrt_pehe": self.new["sqrt_pehe"],
            "new_ate_error": self.new["ate_error"],
            "needs_previous_raw_data": self.needs_previous_raw_data,
        }


@dataclass
class StreamResult:
    """Result of one learner over a multi-domain stream (Figure 3 style)."""

    strategy: str
    #: ``per_stage[t]`` holds the metrics averaged over the test sets of all
    #: domains seen after training on domain ``t``.
    per_stage: List[Dict[str, float]] = field(default_factory=list)
    #: ``per_domain[t][d]`` holds the metrics on domain ``d``'s test set after
    #: training on domain ``t``.
    per_domain: List[List[Dict[str, float]]] = field(default_factory=list)


def _strategy_flags(name: str) -> tuple:
    """Return (needs_previous_raw_data, stores_all_raw_data) for a strategy name."""
    key = name.upper()
    if key.startswith("CFR-C"):
        return True, True
    return False, False


def cerl_variant(
    variant: str,
    n_features: int,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
) -> CERL:
    """Build a CERL ablation variant by its paper name.

    Supported variants: ``"CERL"``, ``"CERL (w/o FRT)"``, ``"CERL (w/o herding)"``,
    ``"CERL (w/o cosine norm)"``.
    """
    key = variant.lower()
    if "w/o frt" in key:
        continual_config = continual_config.with_updates(use_feature_transformation=False)
    if "w/o herding" in key:
        continual_config = continual_config.with_updates(memory_strategy="random")
    if "w/o cosine" in key:
        model_config = model_config.with_updates(use_cosine_norm=False)
    return CERL(n_features, model_config, continual_config)


def _build(
    name: str,
    n_features: int,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
) -> ContinualEstimator:
    if name.upper().startswith("CERL"):
        return cerl_variant(name, n_features, model_config, continual_config)
    return make_strategy(name, n_features, model_config, continual_config)


def run_two_domain_comparison(
    first_domain: CausalDataset,
    second_domain: CausalDataset,
    strategies: Sequence[str],
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> List[StrategyResult]:
    """Run the Table I / Table II protocol: two sequential domains, several strategies.

    Every strategy observes the training split of domain 1 and then of
    domain 2, and is evaluated on the held-out test splits of both domains.
    """
    stream = DomainStream([first_domain, second_domain], seed=seed)
    previous_test, new_test = stream.previous_and_new_test(1)

    results: List[StrategyResult] = []
    for name in strategies:
        learner = _build(name, stream.n_features, model_config, continual_config)
        learner.observe(stream.train_data(0), epochs=epochs, val_dataset=stream.val_data(0))
        learner.observe(stream.train_data(1), epochs=epochs, val_dataset=stream.val_data(1))
        needs_raw, stores_raw = _strategy_flags(name)
        results.append(
            StrategyResult(
                strategy=name,
                previous=learner.evaluate(previous_test),
                new=learner.evaluate(new_test),
                needs_previous_raw_data=needs_raw,
                stores_all_raw_data=stores_raw,
            )
        )
    return results


def _as_stream(
    datasets_or_stream: Union[Sequence[CausalDataset], DomainStream], seed: int
) -> DomainStream:
    if isinstance(datasets_or_stream, DomainStream):
        return datasets_or_stream
    return DomainStream(datasets_or_stream, seed=seed)


def run_stream(
    datasets: Union[Sequence[CausalDataset], DomainStream],
    strategy: str,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> StreamResult:
    """Run one learner over a multi-domain stream, evaluating after every domain.

    After training on domain ``t`` the learner is evaluated on the test sets
    of every domain seen so far; this is the protocol behind Figure 3 (a)/(b).
    ``datasets`` may be a pre-built :class:`DomainStream`, in which case its
    existing splits are reused (``seed`` is ignored).
    """
    return run_stream_suite(
        datasets,
        [strategy],
        model_config,
        continual_config,
        seed=seed,
        epochs=epochs,
    )[0]


def run_stream_suite(
    datasets: Union[Sequence[CausalDataset], DomainStream],
    strategies: Sequence[str],
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> List[StreamResult]:
    """Drive several strategies through one shared multi-domain stream.

    The stream is split exactly once; every strategy observes the same
    train/validation data domain by domain and is evaluated on the same test
    sets, which makes the per-strategy numbers directly comparable (and saves
    the repeated splitting work of building one stream per strategy).
    """
    if not strategies:
        raise ValueError("run_stream_suite requires at least one strategy")
    stream = _as_stream(datasets, seed)
    learners = [
        _build(name, stream.n_features, model_config, continual_config) for name in strategies
    ]
    results = [StreamResult(strategy=name) for name in strategies]
    for domain_index in range(len(stream)):
        train = stream.train_data(domain_index)
        val = stream.val_data(domain_index)
        seen_tests = stream.test_sets_seen(domain_index)
        for learner, result in zip(learners, results):
            learner.observe(train, epochs=epochs, val_dataset=val)
            per_domain = [learner.evaluate(test_set) for test_set in seen_tests]
            result.per_domain.append(per_domain)
            averaged = {
                key: float(sum(metrics[key] for metrics in per_domain) / len(per_domain))
                for key in per_domain[0]
            }
            result.per_stage.append(averaged)
    return results
