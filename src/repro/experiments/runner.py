"""Shared experiment machinery: running strategies over domain streams.

All drivers feed learners through the engine-backed ``observe`` protocol;
:func:`run_stream` accepts either a list of datasets or a pre-built
:class:`~repro.data.streams.DomainStream` and can drive *several* strategies
through one shared stream iterator, so the train/val/test splits are computed
once per experiment instead of once per strategy.

Two execution properties keep the Figure-3 protocol fast: the seen-test-sets
sweep after every domain uses the learners' batched ``evaluate_many`` (one
concatenated forward pass instead of one per seen domain), and
:func:`run_stream_suite` accepts ``workers`` to fan independent strategies
over a process pool — every strategy is a pure function of the shared stream
and its configs, so the parallel path returns bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.api import ContinualEstimator, make_estimator
from ..core.cerl import CERL
from ..core.config import ContinualConfig, ModelConfig
from ..data.dataset import CausalDataset
from ..data.streams import DomainStream
from .parallel import parallel_map

__all__ = [
    "StrategyResult",
    "StreamResult",
    "run_two_domain_comparison",
    "run_stream",
    "run_stream_suite",
    "cerl_variant",
]


@dataclass
class StrategyResult:
    """Result of one strategy on a two-domain experiment (one table row)."""

    strategy: str
    previous: Dict[str, float]
    new: Dict[str, float]
    needs_previous_raw_data: bool
    stores_all_raw_data: bool

    def row(self) -> Dict[str, float | str]:
        """Flatten into a report row with the paper's column names."""
        return {
            "strategy": self.strategy,
            "prev_sqrt_pehe": self.previous["sqrt_pehe"],
            "prev_ate_error": self.previous["ate_error"],
            "new_sqrt_pehe": self.new["sqrt_pehe"],
            "new_ate_error": self.new["ate_error"],
            "needs_previous_raw_data": self.needs_previous_raw_data,
        }


@dataclass
class StreamResult:
    """Result of one learner over a multi-domain stream (Figure 3 style)."""

    strategy: str
    #: ``per_stage[t]`` holds the metrics averaged over the test sets of all
    #: domains seen after training on domain ``t``.
    per_stage: List[Dict[str, float]] = field(default_factory=list)
    #: ``per_domain[t][d]`` holds the metrics on domain ``d``'s test set after
    #: training on domain ``t``.
    per_domain: List[List[Dict[str, float]]] = field(default_factory=list)


def _strategy_flags(name: str) -> tuple:
    """Return (needs_previous_raw_data, stores_all_raw_data) for a strategy name."""
    key = name.upper()
    if key.startswith("CFR-C"):
        return True, True
    return False, False


def cerl_variant(
    variant: str,
    n_features: int,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
) -> CERL:
    """Build a CERL ablation variant by its paper name.

    Supported variants: ``"CERL"``, ``"CERL (w/o FRT)"``, ``"CERL (w/o herding)"``,
    ``"CERL (w/o cosine norm)"``.
    """
    key = variant.lower()
    if "w/o frt" in key:
        continual_config = continual_config.with_updates(use_feature_transformation=False)
    if "w/o herding" in key:
        continual_config = continual_config.with_updates(memory_strategy="random")
    if "w/o cosine" in key:
        model_config = model_config.with_updates(use_cosine_norm=False)
    return CERL(n_features, model_config, continual_config)


def _build(
    name: str,
    n_features: int,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
) -> ContinualEstimator:
    if name.upper().startswith("CERL"):
        # Ablation names like "CERL (w/o FRT)" are config variants of the one
        # registered CERL estimator, not separate registry entries.
        return cerl_variant(name, n_features, model_config, continual_config)
    return make_estimator(name, n_features, model_config, continual_config)


def run_two_domain_comparison(
    first_domain: CausalDataset,
    second_domain: CausalDataset,
    strategies: Sequence[str],
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> List[StrategyResult]:
    """Run the Table I / Table II protocol: two sequential domains, several strategies.

    Every strategy observes the training split of domain 1 and then of
    domain 2, and is evaluated on the held-out test splits of both domains.
    """
    stream = DomainStream([first_domain, second_domain], seed=seed)
    previous_test, new_test = stream.previous_and_new_test(1)

    results: List[StrategyResult] = []
    for name in strategies:
        learner = _build(name, stream.n_features, model_config, continual_config)
        learner.observe(stream.train_data(0), epochs=epochs, val_dataset=stream.val_data(0))
        learner.observe(stream.train_data(1), epochs=epochs, val_dataset=stream.val_data(1))
        needs_raw, stores_raw = _strategy_flags(name)
        # One batched forward over both test sets (identical numbers to two
        # separate evaluate calls; see repro.core.evaluation).
        previous_metrics, new_metrics = learner.evaluate_many([previous_test, new_test])
        results.append(
            StrategyResult(
                strategy=name,
                previous=previous_metrics,
                new=new_metrics,
                needs_previous_raw_data=needs_raw,
                stores_all_raw_data=stores_raw,
            )
        )
    return results


def _as_stream(
    datasets_or_stream: Union[Sequence[CausalDataset], DomainStream], seed: int
) -> DomainStream:
    if isinstance(datasets_or_stream, DomainStream):
        return datasets_or_stream
    return DomainStream(datasets_or_stream, seed=seed)


def run_stream(
    datasets: Union[Sequence[CausalDataset], DomainStream],
    strategy: str,
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> StreamResult:
    """Run one learner over a multi-domain stream, evaluating after every domain.

    After training on domain ``t`` the learner is evaluated on the test sets
    of every domain seen so far; this is the protocol behind Figure 3 (a)/(b).
    ``datasets`` may be a pre-built :class:`DomainStream`, in which case its
    existing splits are reused (``seed`` is ignored).
    """
    return run_stream_suite(
        datasets,
        [strategy],
        model_config,
        continual_config,
        seed=seed,
        epochs=epochs,
    )[0]


def _run_strategy_through_stream(task: tuple) -> StreamResult:
    """Drive one strategy through the full stream (the unit of suite work).

    Module-level so :func:`parallel_map` can pickle it; the payload carries
    everything the run depends on, making the result independent of which
    process executes it.
    """
    stream, name, model_config, continual_config, epochs = task
    learner = _build(name, stream.n_features, model_config, continual_config)
    result = StreamResult(strategy=name)
    for domain_index in range(len(stream)):
        learner.observe(
            stream.train_data(domain_index),
            epochs=epochs,
            val_dataset=stream.val_data(domain_index),
        )
        # Batched sweep over all seen test sets: one concatenated forward
        # pass, metrics split back per domain (identical numbers to a
        # per-dataset evaluate loop).
        per_domain = learner.evaluate_many(stream.test_sets_seen(domain_index))
        result.per_domain.append(per_domain)
        averaged = {
            key: float(sum(metrics[key] for metrics in per_domain) / len(per_domain))
            for key in per_domain[0]
        }
        result.per_stage.append(averaged)
    return result


def run_stream_suite(
    datasets: Union[Sequence[CausalDataset], DomainStream],
    strategies: Sequence[str],
    model_config: ModelConfig,
    continual_config: ContinualConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
    workers: int = 1,
) -> List[StreamResult]:
    """Drive several strategies through one shared multi-domain stream.

    The stream is split exactly once; every strategy observes the same
    train/validation data domain by domain and is evaluated on the same test
    sets, which makes the per-strategy numbers directly comparable (and saves
    the repeated splitting work of building one stream per strategy).

    ``workers > 1`` fans the strategies over a process pool.  Each strategy's
    learner owns its RNG (seeded from ``model_config.seed``) and the shared
    stream is read-only, so the parallel path is bit-identical to the serial
    default — pinned by the determinism test suite.
    """
    if not strategies:
        raise ValueError("run_stream_suite requires at least one strategy")
    stream = _as_stream(datasets, seed)
    tasks = [
        (stream, name, model_config, continual_config, epochs) for name in strategies
    ]
    return parallel_map(_run_strategy_through_stream, tasks, workers=workers)
