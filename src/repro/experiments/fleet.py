"""Fleet deployment: many streams, one gateway, adaptation under live load.

The single-stream drivers (:mod:`.deployment`, :mod:`.autoadapt`) prove the
serving stack for one model lineage.  :func:`run_fleet_deployment` proves the
*multi-tenant* story the gateway exists for:

1. ``n_streams`` independent streams are trained (one learner per stream —
   any registered estimator, CERL by default — each on its own synthetic
   domain sequence with a derived seed) and registered as version 0 of their
   stream in one shared :class:`~repro.serve.ModelRegistry`;
2. a :class:`~repro.serve.ServingGateway` fronts the registry — every
   stream's service is spun up lazily by its first query, placed on its
   digest-routed shard;
3. concurrent client threads hammer all streams at once with single-unit ITE
   queries; **while they are serving**, one stream is adapted end-to-end
   (observe the next domain → save version 1 → hot-swap through the
   gateway), and the other streams keep answering undisturbed;
4. every response is verified bitwise against the direct batched ``predict``
   of the model version it reports — across shards, cache hits, and the
   mid-flight swap.

The per-stream seeds come from :func:`~.parallel.derive_seed`, so a fleet is
reproducible regardless of how many streams it has or which one adapts.
"""

from __future__ import annotations

import tempfile
import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..core.api import ContinualEstimator, make_estimator
from ..data.streams import DomainStream
from ..data.synthetic import SyntheticDomainGenerator
from ..serve import GatewayStats, ModelRegistry, ServingGateway
from .parallel import derive_seed
from .profiles import SMOKE, ExperimentProfile

__all__ = ["FleetDeploymentResult", "FleetStreamReport", "run_fleet_deployment"]


@dataclass
class FleetStreamReport:
    """One stream's view of the fleet run."""

    name: str
    shard: int
    #: Registry versions existing for the stream when the run ended.
    versions: List[int]
    #: Distinct model versions observed in this stream's responses.
    versions_served: List[int]
    queries: int
    #: Query indices whose response diverged from the reference of the
    #: version it reported (empty == bitwise healthy).
    mismatches: List[int] = field(default_factory=list)

    @property
    def parity(self) -> bool:
        return not self.mismatches


@dataclass
class FleetDeploymentResult:
    """Full outcome of one fleet deployment."""

    streams: List[FleetStreamReport] = field(default_factory=list)
    adapted_stream: str = ""
    #: Version the adapted stream's gateway service reported after the swap.
    adapted_version: int = 0
    stats: Optional[GatewayStats] = None
    elapsed_s: float = 0.0

    @property
    def parity(self) -> bool:
        """Whether every response matched its version's batched reference."""
        return all(report.parity for report in self.streams)

    @property
    def total_queries(self) -> int:
        return sum(report.queries for report in self.streams)

    @property
    def throughput_qps(self) -> float:
        return self.total_queries / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary_rows(self) -> List[dict]:
        """Per-stream rows for :func:`repro.experiments.reporting.format_table`."""
        return [
            {
                "stream": report.name,
                "shard": report.shard,
                "versions": str(report.versions),
                "served": str(report.versions_served),
                "queries": report.queries,
                "parity": "exact" if report.parity else "DIVERGED",
            }
            for report in self.streams
        ]


def run_fleet_deployment(
    n_streams: int = 3,
    profile: ExperimentProfile = SMOKE,
    n_shards: Optional[int] = None,
    queries_per_stream: int = 48,
    clients_per_stream: int = 2,
    adapt_stream: int = 0,
    registry_root: Optional[Union[str, Path]] = None,
    stream_prefix: str = "stream",
    cache_capacity: int = 1024,
    max_pending_per_shard: Optional[int] = None,
    estimator: str = "CERL",
    seed: int = 0,
    epochs: Optional[int] = None,
) -> FleetDeploymentResult:
    """Train, register, and concurrently serve a fleet; adapt one stream live.

    Parameters
    ----------
    n_streams, n_shards:
        Fleet size and routing-target count (default: one shard per stream,
        capped at 4 — several streams sharing a shard is part of the test).
    queries_per_stream, clients_per_stream:
        Serving load: each client thread submits ``queries_per_stream``
        queries drawn (with replacement, seeded) from its stream's test set.
    adapt_stream:
        Index of the stream that is adapted mid-serving (observe the next
        domain, save version 1, hot-swap through the gateway).
    registry_root:
        Registry directory; an ephemeral temporary directory when omitted.
    cache_capacity, max_pending_per_shard:
        Gateway knobs (see :class:`~repro.serve.ServingGateway`).
    estimator:
        Registered estimator name to train and serve fleet-wide (default
        ``"CERL"``).
    seed, epochs:
        Base seed for the per-stream derived seeds, and the per-domain epoch
        budget (default: the profile's).

    Returns
    -------
    FleetDeploymentResult
        Per-stream bitwise parity verdicts, gateway stats, and throughput.
    """
    if not 0 <= adapt_stream < n_streams:
        raise ValueError(f"adapt_stream must be in [0, {n_streams}); got {adapt_stream}")
    epochs = epochs if epochs is not None else profile.epochs
    n_shards = n_shards if n_shards is not None else min(n_streams, 4)

    with ExitStack() as stack:
        if registry_root is None:
            registry_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="cerl_fleet_")
            )
        return _run_fleet_deployment(
            n_streams,
            profile,
            n_shards,
            queries_per_stream,
            clients_per_stream,
            adapt_stream,
            registry_root,
            stream_prefix,
            cache_capacity,
            max_pending_per_shard,
            estimator,
            seed,
            epochs,
        )


def _run_fleet_deployment(
    n_streams: int,
    profile: ExperimentProfile,
    n_shards: int,
    queries_per_stream: int,
    clients_per_stream: int,
    adapt_stream: int,
    registry_root: Union[str, Path],
    stream_prefix: str,
    cache_capacity: int,
    max_pending_per_shard: Optional[int],
    estimator: str,
    seed: int,
    epochs: int,
) -> FleetDeploymentResult:
    """The run body, with all defaults resolved by :func:`run_fleet_deployment`."""
    registry = ModelRegistry(registry_root)
    names = [f"{stream_prefix}-{index:02d}" for index in range(n_streams)]

    # --- train one lineage per stream, register version 0 ----------------- #
    learners: Dict[str, ContinualEstimator] = {}
    streams: Dict[str, DomainStream] = {}
    for name in names:
        stream_seed = derive_seed(seed, "fleet", name)
        generator = SyntheticDomainGenerator(profile.synthetic_config(), seed=stream_seed)
        stream = DomainStream(
            [generator.generate_domain(0), generator.generate_domain(1)],
            seed=stream_seed,
        )
        learner = make_estimator(
            estimator,
            stream.n_features,
            profile.model_config(seed=stream_seed, epochs=epochs),
            profile.continual_config(memory_budget=profile.memory_budget_table1),
        )
        learner.observe(stream.train_data(0), epochs=epochs)
        registry.save(name, 0, learner, metadata={"trigger": "initial"})
        learners[name] = learner
        streams[name] = stream

    # Query banks and per-version batched references.  The canonical batch
    # equals the bank size, so every micro-batched response must be bitwise
    # one row of these reference arrays.
    banks = {name: streams[name][0].test.covariates for name in names}
    bank_size = {len(bank) for bank in banks.values()}
    assert len(bank_size) == 1, "profile splits must give equal test sizes"
    max_batch = bank_size.pop()
    references = {(name, 0): learners[name].predict(banks[name]) for name in names}

    adapted_name = names[adapt_stream]
    result = FleetDeploymentResult(adapted_stream=adapted_name)

    with ServingGateway(
        registry=registry,
        n_shards=n_shards,
        max_batch=max_batch,
        cache_capacity=cache_capacity,
        max_pending_per_shard=max_pending_per_shard,
    ) as gateway:
        responses: Dict[str, List[tuple]] = {name: [] for name in names}
        response_lock = threading.Lock()
        barrier = threading.Barrier(n_streams * clients_per_stream + 1)

        def client(name: str, client_index: int) -> None:
            rng = np.random.default_rng(derive_seed(seed, "client", name, client_index))
            indices = rng.integers(0, max_batch, size=queries_per_stream)
            barrier.wait()
            pendings = [(int(i), gateway.submit(name, banks[name][i])) for i in indices]
            collected = [(i, pending.result(timeout=120.0)) for i, pending in pendings]
            with response_lock:
                responses[name].extend(collected)

        threads = [
            threading.Thread(target=client, args=(name, c), name=f"fleet-{name}-{c}")
            for name in names
            for c in range(clients_per_stream)
        ]
        for thread in threads:
            thread.start()
        start = time.perf_counter()
        barrier.wait()

        # --- adapt one stream while the whole fleet keeps serving --------- #
        adapted = learners[adapted_name]
        adapted.observe(streams[adapted_name].train_data(1), epochs=epochs)
        registry.save(adapted_name, 1, adapted, metadata={"trigger": "fleet-adapt"})
        result.adapted_version = gateway.reload(adapted_name)
        references[(adapted_name, 1)] = adapted.predict(banks[adapted_name])

        for thread in threads:
            thread.join()

        # Post-swap wave: under a light load the concurrent clients may all
        # finish before the swap lands, so drive one more seeded round per
        # stream — the adapted stream must now answer from version 1, the
        # others still from version 0.
        wave_rng = np.random.default_rng(derive_seed(seed, "post-swap"))
        for name in names:
            indices = wave_rng.integers(0, max_batch, size=min(8, queries_per_stream))
            pendings = [(int(i), gateway.submit(name, banks[name][i])) for i in indices]
            responses[name].extend(
                (i, pending.result(timeout=120.0)) for i, pending in pendings
            )
        result.elapsed_s = time.perf_counter() - start
        result.stats = gateway.stats()

        # --- verify every response against its version's reference -------- #
        for name in names:
            mismatches = []
            served_versions = set()
            for index, response in responses[name]:
                served_versions.add(response.model_version)
                reference = references[(name, response.model_version)]
                if (
                    response.mu0 != reference.y0_hat[index]
                    or response.mu1 != reference.y1_hat[index]
                    or response.ite != reference.ite_hat[index]
                ):
                    mismatches.append(index)
            result.streams.append(
                FleetStreamReport(
                    name=name,
                    shard=gateway.shard_for(name),
                    versions=registry.list_versions(name),
                    versions_served=sorted(served_versions),
                    queries=len(responses[name]),
                    mismatches=mismatches,
                )
            )
    return result
