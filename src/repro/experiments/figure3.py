"""Figure 3 driver: memory-budget curves and hyper-parameter sensitivity.

The paper's Figure 3 has four panels:

* (a), (b) — sqrt(PEHE) and the ATE error on the test sets of *all seen*
  domains after training on each of five sequential synthetic domains, for
  CERL with memory budgets M ∈ {1000, 5000, 10000} and for the ideal learner
  that keeps all raw data (CFR-C);
* (c), (d) — sensitivity of the final performance to the hyper-parameters
  ``alpha`` (representation balance) and ``delta`` (representation
  transformation), which the paper reports as stable over a large range.

Section IV-C additionally reports an in-text cosine-normalisation ablation on
the five-domain stream (sqrt(PEHE) 1.80 → 1.92, ATE error 0.55 → 0.61), which
:func:`run_cosine_ablation_stream` regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..data.streams import DomainStream
from ..data.synthetic import SyntheticConfig, SyntheticDomainGenerator
from .profiles import ExperimentProfile, QUICK
from .reporting import format_series, format_table
from .runner import run_stream

__all__ = [
    "MemoryCurveResult",
    "SensitivityResult",
    "run_figure3_memory",
    "run_figure3_sensitivity",
    "run_cosine_ablation_stream",
]


@dataclass
class MemoryCurveResult:
    """Figure 3 (a)/(b): per-stage metrics for several memory budgets plus the ideal."""

    profile: str
    n_domains: int
    #: curves[label][t] -> averaged metrics over all seen test sets after domain t
    curves: Dict[str, List[Dict[str, float]]] = field(default_factory=dict)

    def series(self, metric: str) -> Dict[str, List[float]]:
        """Extract one metric ('sqrt_pehe' or 'ate_error') as named series."""
        return {
            label: [stage[metric] for stage in stages] for label, stages in self.curves.items()
        }

    def report(self) -> str:
        """Text rendering of panels (a) and (b)."""
        domains = list(range(1, self.n_domains + 1))
        pehe = format_series(
            self.series("sqrt_pehe"),
            x_label="domains_seen",
            x_values=domains,
            title=f"Figure 3(a) — sqrt(PEHE) over seen domains (profile: {self.profile})",
        )
        ate = format_series(
            self.series("ate_error"),
            x_label="domains_seen",
            x_values=domains,
            title=f"Figure 3(b) — ATE error over seen domains (profile: {self.profile})",
        )
        return pehe + "\n\n" + ate


@dataclass
class SensitivityResult:
    """Figure 3 (c)/(d): final averaged metric as a function of one hyper-parameter."""

    profile: str
    parameter: str
    values: List[float] = field(default_factory=list)
    sqrt_pehe: List[float] = field(default_factory=list)
    ate_error: List[float] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Report rows, one per parameter value."""
        return [
            {self.parameter: value, "sqrt_pehe": pehe, "ate_error": ate}
            for value, pehe, ate in zip(self.values, self.sqrt_pehe, self.ate_error)
        ]

    def report(self) -> str:
        """Text rendering of one sensitivity panel."""
        return format_table(
            self.rows(),
            title=f"Figure 3 sensitivity of {self.parameter} (profile: {self.profile})",
        )

    @property
    def relative_spread(self) -> float:
        """Max/min ratio of sqrt(PEHE) across the sweep (stability indicator)."""
        low = min(self.sqrt_pehe)
        high = max(self.sqrt_pehe)
        return float(high / low) if low > 0 else float("inf")


def _synthetic_stream(
    profile: ExperimentProfile,
    n_domains: int,
    seed: int,
    synthetic_config: Optional[SyntheticConfig],
):
    config = synthetic_config if synthetic_config is not None else profile.synthetic_config()
    generator = SyntheticDomainGenerator(config, seed=seed)
    return generator.generate_stream(n_domains)


def run_figure3_memory(
    profile: ExperimentProfile = QUICK,
    memory_budgets: Optional[Sequence[int]] = None,
    n_domains: int = 5,
    include_ideal: bool = True,
    seed: int = 0,
    synthetic_config: Optional[SyntheticConfig] = None,
) -> MemoryCurveResult:
    """Regenerate Figure 3 (a)/(b): CERL under memory budgets vs the ideal learner.

    The paper's budgets are 1000 / 5000 / 10000 representations with 10000
    units per domain; the default budgets scale with the profile's domain size
    (10% / 50% / 100% of one domain) so the quick profiles keep the same
    relative memory pressure.
    """
    datasets = _synthetic_stream(profile, n_domains, seed, synthetic_config)
    if memory_budgets is None:
        base = profile.synthetic_units
        memory_budgets = [max(20, base // 10), max(40, base // 2), base]

    # One shared stream: every budget (and the ideal learner) sees identical
    # train/val/test splits instead of re-splitting per run.
    stream = DomainStream(datasets, seed=seed)
    result = MemoryCurveResult(profile=profile.name, n_domains=n_domains)
    for budget in memory_budgets:
        stream_result = run_stream(
            stream,
            strategy="CERL",
            model_config=profile.model_config(seed=seed),
            continual_config=profile.continual_config(memory_budget=budget),
            seed=seed,
        )
        result.curves[f"CERL (M={budget})"] = stream_result.per_stage
    if include_ideal:
        ideal = run_stream(
            stream,
            strategy="CFR-C",
            model_config=profile.model_config(seed=seed),
            continual_config=profile.continual_config(memory_budget=max(memory_budgets)),
            seed=seed,
        )
        result.curves["Ideal (all data)"] = ideal.per_stage
    return result


def run_figure3_sensitivity(
    parameter: str,
    values: Sequence[float],
    profile: ExperimentProfile = QUICK,
    n_domains: int = 2,
    seed: int = 0,
    memory_budget: Optional[int] = None,
    synthetic_config: Optional[SyntheticConfig] = None,
) -> SensitivityResult:
    """Regenerate Figure 3 (c)/(d): sweep ``alpha`` or ``delta`` for CERL.

    The reported metric is the final-stage average over the test sets of all
    seen domains, matching the paper's description.
    """
    if parameter not in ("alpha", "delta"):
        raise ValueError("parameter must be 'alpha' or 'delta'")
    if not values:
        raise ValueError("values must be non-empty")
    datasets = _synthetic_stream(profile, n_domains, seed, synthetic_config)
    budget = memory_budget if memory_budget is not None else profile.memory_budget_table2

    result = SensitivityResult(profile=profile.name, parameter=parameter)
    for value in values:
        model_config = profile.model_config(seed=seed)
        continual_config = profile.continual_config(memory_budget=budget)
        if parameter == "alpha":
            model_config = model_config.with_updates(alpha=float(value))
        else:
            continual_config = continual_config.with_updates(delta=float(value))
        stream_result = run_stream(
            datasets,
            strategy="CERL",
            model_config=model_config,
            continual_config=continual_config,
            seed=seed,
        )
        final_stage = stream_result.per_stage[-1]
        result.values.append(float(value))
        result.sqrt_pehe.append(final_stage["sqrt_pehe"])
        result.ate_error.append(final_stage["ate_error"])
    return result


def run_cosine_ablation_stream(
    profile: ExperimentProfile = QUICK,
    n_domains: int = 5,
    seed: int = 0,
    memory_budget: Optional[int] = None,
    synthetic_config: Optional[SyntheticConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Regenerate the in-text cosine-normalisation ablation on the domain stream.

    Returns the final-stage averaged metrics for CERL and for CERL without
    cosine normalisation.
    """
    datasets = _synthetic_stream(profile, n_domains, seed, synthetic_config)
    budget = memory_budget if memory_budget is not None else profile.memory_budget_table2

    outcomes: Dict[str, Dict[str, float]] = {}
    for label, use_cosine in (("CERL", True), ("CERL (w/o cosine norm)", False)):
        model_config = profile.model_config(seed=seed).with_updates(use_cosine_norm=use_cosine)
        stream_result = run_stream(
            datasets,
            strategy="CERL",
            model_config=model_config,
            continual_config=profile.continual_config(memory_budget=budget),
            seed=seed,
        )
        outcomes[label] = stream_result.per_stage[-1]
    return outcomes
