"""Plain-text reporting helpers for the experiment drivers.

Every table/figure driver produces a list of row dictionaries; these helpers
render them as aligned text tables (the same rows/series the paper reports) so
benchmark runs and examples can print human-readable output without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["format_table", "format_series", "summarize_two_domain_results"]


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        raise ValueError("format_table requires at least one row")
    columns = list(rows[0].keys())
    rendered_rows = [[_format_value(row[col]) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(rendered[i]) for rendered in rendered_rows))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(value.ljust(width) for value, width in zip(rendered, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]], x_label: str, x_values: Sequence[object], title: str = ""
) -> str:
    """Render named metric series (one per line) over shared x values.

    Used for the Figure 3 style outputs, e.g. sqrt(PEHE) after each domain for
    several memory budgets.
    """
    rows = []
    for x, *values in zip(x_values, *series.values()):
        row = {x_label: x}
        for name, value in zip(series.keys(), values):
            row[name] = value
        rows.append(row)
    return format_table(rows, title=title)


def summarize_two_domain_results(results, title: str = "") -> str:
    """Render :class:`~repro.experiments.runner.StrategyResult` rows as a table."""
    return format_table([result.row() for result in results], title=title)
