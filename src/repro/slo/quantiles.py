"""O(1)-memory streaming quantile accumulators for million-row load runs.

Recording every per-query latency of a million-row replay would cost a
million floats and a post-hoc sort — exactly the kind of hidden O(n) the SLO
harness exists to forbid.  Two bounded sketches cover the needs:

* :class:`ReservoirSample` — algorithm-R uniform sample with a seeded
  generator, so the *sampling decisions* of a replay are deterministic even
  though the sampled latencies are wall-clock values.
* :class:`QuantileDigest` — a merging t-digest-style sketch: values buffer
  until capacity, then sorted-merge into centroids whose maximum weight
  shrinks toward the distribution's ends (the arcsine scale function), so
  p99/p999 stay sharp while the middle compresses.  Memory is bounded by
  ``max_centroids`` regardless of stream length.

:class:`LatencyAccumulator` bundles both plus count/sum under one lock-free
(single-writer per instance) interface; the load runner shards one
accumulator per client thread and merges at the end, so the hot path never
contends.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LatencyAccumulator", "QuantileDigest", "ReservoirSample"]


class ReservoirSample:
    """Uniform fixed-capacity sample of an unbounded stream (algorithm R).

    The generator is seeded, so *which* stream positions are kept is a pure
    function of ``(seed, stream length)`` — replay-stable sampling over
    replay-variable values.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._rng = np.random.default_rng([seed, 23])
        self._values: List[float] = []
        self._seen = 0

    def add(self, value: float) -> None:
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._values[slot] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def seen(self) -> int:
        return self._seen

    def values(self) -> List[float]:
        return list(self._values)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if not self._values:
            return float("nan")
        return float(np.quantile(np.array(self._values), q))


class QuantileDigest:
    """Merging t-digest-style sketch with the arcsine scale function.

    Values accumulate in a buffer; at ``2 * max_centroids`` the buffer and
    the existing centroids are sorted-merged, greedily packing adjacent
    points into centroids as long as the pack stays within the scale
    function's weight budget — tight at the tails (quantile resolution where
    the SLOs live), loose in the middle.  Centroid count and buffer are both
    bounded, so memory is O(``max_centroids``) for any stream length.
    """

    def __init__(self, max_centroids: int = 256) -> None:
        if max_centroids < 8:
            raise ValueError("max_centroids must be at least 8")
        self.max_centroids = max_centroids
        self._means: List[float] = []
        self._weights: List[float] = []
        self._buffer: List[float] = []
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def add(self, value: float) -> None:
        value = float(value)
        self._buffer.append(value)
        self._count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._buffer) >= 2 * self.max_centroids:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileDigest") -> None:
        """Fold another digest in (client-thread shards -> one report)."""
        for mean, weight in zip(other._means, other._weights):
            self._merge_point(mean, weight)
        self._buffer.extend(other._buffer)
        self._count += other._count
        if other._count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._compress()

    def _merge_point(self, mean: float, weight: float) -> None:
        self._means.append(float(mean))
        self._weights.append(float(weight))

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    @staticmethod
    def _scale_limit(q: float, total: float, compression: float) -> float:
        """Max centroid weight allowed around quantile ``q`` (arcsine scale).

        ``4 * total * sqrt(q * (1 - q)) / compression`` — the k1-scale bound
        of the original t-digest: centroids may hold a big slice of the
        middle but only a sliver of each tail, and (unlike the quadratic
        ``q * (1 - q)`` variant) the number of centroids it admits is
        O(``compression``) independent of stream length, because
        ``∫ dq / sqrt(q(1-q)) = π`` converges.
        """
        return max(1.0, 4.0 * total * math.sqrt(q * (1.0 - q)) / compression)

    def _compress(self) -> None:
        if not self._buffer and len(self._means) <= self.max_centroids:
            return
        points: List[Tuple[float, float]] = list(zip(self._means, self._weights))
        points.extend((value, 1.0) for value in self._buffer)
        self._buffer = []
        if not points:
            return
        points.sort(key=lambda p: p[0])
        total = sum(weight for _, weight in points)
        means: List[float] = []
        weights: List[float] = []
        acc_mean, acc_weight = points[0]
        consumed = 0.0
        for mean, weight in points[1:]:
            q = (consumed + acc_weight / 2.0) / total
            limit = self._scale_limit(q, total, float(self.max_centroids))
            if acc_weight + weight <= limit:
                acc_mean = (acc_mean * acc_weight + mean * weight) / (
                    acc_weight + weight
                )
                acc_weight += weight
            else:
                means.append(acc_mean)
                weights.append(acc_weight)
                consumed += acc_weight
                acc_mean, acc_weight = mean, weight
        means.append(acc_mean)
        weights.append(acc_weight)
        self._means = means
        self._weights = weights

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return self._count

    @property
    def n_centroids(self) -> int:
        return len(self._means)

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate; exact at q=0 and q=1."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        self._compress()
        if self._count == 0:
            return float("nan")
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        total = float(sum(self._weights))
        target = q * total
        cumulative = 0.0
        previous_mean, previous_cum = self._min, 0.0
        for mean, weight in zip(self._means, self._weights):
            centre = cumulative + weight / 2.0
            if target <= centre:
                span = centre - previous_cum
                if span <= 0:
                    return mean
                frac = (target - previous_cum) / span
                return previous_mean + frac * (mean - previous_mean)
            previous_mean, previous_cum = mean, centre
            cumulative += weight
        return self._max


class LatencyAccumulator:
    """Count/sum/digest/reservoir bundle for one client thread's latencies.

    Single-writer by construction (each load-runner client owns one); the
    runner merges the shards after the threads join, so the record path
    takes no lock at all.
    """

    def __init__(
        self, max_centroids: int = 256, reservoir_capacity: int = 1024, seed: int = 0
    ) -> None:
        self.digest = QuantileDigest(max_centroids=max_centroids)
        self.reservoir = ReservoirSample(capacity=reservoir_capacity, seed=seed)
        self.count = 0
        self.total_s = 0.0

    def record(self, latency_s: float) -> None:
        self.count += 1
        self.total_s += latency_s
        self.digest.add(latency_s)
        self.reservoir.add(latency_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else float("nan")

    @staticmethod
    def merged(shards: Sequence["LatencyAccumulator"]) -> "LatencyAccumulator":
        """Fold per-thread shards into one accumulator for reporting."""
        if not shards:
            return LatencyAccumulator()
        merged = LatencyAccumulator(
            max_centroids=shards[0].digest.max_centroids,
            reservoir_capacity=shards[0].reservoir.capacity,
        )
        for shard in shards:
            merged.digest.merge(shard.digest)
            merged.reservoir.extend(shard.reservoir.values())
            merged.count += shard.count
            merged.total_s += shard.total_s
        return merged

    def quantiles_ms(self, qs: Sequence[float] = (0.5, 0.99, 0.999)) -> Dict[str, float]:
        """The SLO quantiles in milliseconds, keyed ``p50``/``p99``/``p999``."""
        out: Dict[str, float] = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "")
            out[label] = self.digest.quantile(q) * 1000.0
        return out
