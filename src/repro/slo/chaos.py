"""Typed mid-replay fault injection with recovery-time-to-SLO measurement.

A :class:`FaultSchedule` pins faults to tape tick indices, so *when* chaos
strikes is as replayable as the traffic itself: two runs of the same tape and
schedule inject the same faults at the same ticks.  Three fault kinds cover
the fleet's failure surface:

* :class:`WorkerKillFault` — SIGKILL one fleet worker mid-replay, then
  restart it; queries routed there shed as ``WorkerUnavailable`` until the
  respawn completes.
* :class:`StragglerFault` — turn one worker into a slow shard via the
  injectable delay hook in :class:`~repro.serve.fleet.worker.WorkerServer`;
  latency SLOs degrade without any error signal.
* :class:`RegistryOutageFault` — hide a stream's registry manifest (atomic
  ``os.replace`` aside) so hot-swap ``reload`` fails *typed* while serving
  continues from the loaded model, then restore it.

Faults talk to the system through a small ops adapter
(:class:`FleetChaosOps` for the multiprocess fleet), which also measures
**recovery time to SLO** after each clear: probe queries on the injected
monotonic clock until the stream answers under the latency budget a
configured number of consecutive times.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultReport",
    "FaultSchedule",
    "FleetChaosOps",
    "RegistryOutageFault",
    "StragglerFault",
    "WorkerKillFault",
    "default_fault_schedule",
]

FAULT_KINDS: Tuple[str, ...] = ("worker_kill", "straggler", "registry_outage")

_OUTAGE_SUFFIX = ".outage"


@dataclass
class FaultReport:
    """What one fault did to the system and how long recovery took."""

    kind: str
    stream: str
    injected_tick: int
    injected_at_s: float
    cleared_tick: Optional[int] = None
    cleared_at_s: Optional[float] = None
    #: Injected-clock seconds from clear until the stream was back under the
    #: latency budget; None means recovery never happened within budget.
    recovery_s: Optional[float] = None
    probes: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        return self.recovery_s is not None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "stream": self.stream,
            "injected_tick": self.injected_tick,
            "cleared_tick": self.cleared_tick,
            "injected_at_s": self.injected_at_s,
            "cleared_at_s": self.cleared_at_s,
            "recovery_s": self.recovery_s,
            "recovered": self.recovered,
            "probes": self.probes,
            "details": dict(self.details),
        }


@dataclass(frozen=True)
class Fault:
    """One scheduled injection: active from ``at_tick`` for ``duration_ticks``."""

    stream: str
    at_tick: int
    duration_ticks: int = 8

    kind: str = "fault"

    def __post_init__(self) -> None:
        if self.at_tick < 0:
            raise ValueError("at_tick must be non-negative")
        if self.duration_ticks < 1:
            raise ValueError("duration_ticks must be at least 1")

    @property
    def clear_tick(self) -> int:
        return self.at_tick + self.duration_ticks

    def inject(self, ops) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError

    def clear(self, ops) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class WorkerKillFault(Fault):
    """SIGKILL the worker owning ``stream``; restart it at the clear tick."""

    kind: str = "worker_kill"

    def inject(self, ops) -> Dict[str, object]:
        worker = ops.kill_stream_worker(self.stream)
        return {"worker": worker}

    def clear(self, ops) -> Dict[str, object]:
        worker, port = ops.restart_stream_worker(self.stream)
        return {"worker": worker, "port": port}


@dataclass(frozen=True)
class StragglerFault(Fault):
    """Make the worker owning ``stream`` a slow shard for the fault window."""

    delay_ms: float = 50.0
    kind: str = "straggler"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_ms <= 0:
            raise ValueError("delay_ms must be positive")

    def inject(self, ops) -> Dict[str, object]:
        worker = ops.set_stream_delay(self.stream, self.delay_ms)
        return {"worker": worker, "delay_ms": self.delay_ms}

    def clear(self, ops) -> Dict[str, object]:
        worker = ops.set_stream_delay(self.stream, 0.0)
        return {"worker": worker, "delay_cleared": True}


@dataclass(frozen=True)
class RegistryOutageFault(Fault):
    """Hide ``stream``'s registry manifest so hot-swap reloads fail typed."""

    kind: str = "registry_outage"

    def inject(self, ops) -> Dict[str, object]:
        ops.hide_registry(self.stream)
        # The outage must be *observable* as a typed failure, not a hang or a
        # crash: a reload attempted during the outage has to raise the
        # fleet's typed error while serving continues from the loaded model.
        reload_failed_typed = ops.reload_fails_typed(self.stream)
        return {"reload_failed_typed": reload_failed_typed}

    def clear(self, ops) -> Dict[str, object]:
        ops.restore_registry(self.stream)
        version = ops.reload_stream(self.stream)
        return {"reloaded_version": version}


class FaultSchedule:
    """An ordered set of faults addressed by tape tick index."""

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at_tick, f.kind, f.stream))
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def events(self) -> List[Tuple[int, str, Fault]]:
        """``(tick, action, fault)`` triples, sorted; inject before clear."""
        events: List[Tuple[int, int, str, Fault]] = []
        for fault in self.faults:
            events.append((fault.at_tick, 0, "inject", fault))
            events.append((fault.clear_tick, 1, "clear", fault))
        events.sort(key=lambda e: (e[0], e[1]))
        return [(tick, action, fault) for tick, _, action, fault in events]

    def fault_ticks(self) -> List[Tuple[int, str, str]]:
        """``(tick, action, kind)`` — the replay-determinism fingerprint."""
        return [(tick, action, fault.kind) for tick, action, fault in self.events()]


def default_fault_schedule(
    n_ticks: int,
    victim_stream: str,
    registry_stream: Optional[str] = None,
    straggler_delay_ms: float = 50.0,
) -> FaultSchedule:
    """One fault of each kind, spread across the tape (~25% / 55% / 80%).

    ``victim_stream`` takes the kill and the straggler;
    ``registry_stream`` (default: the victim) takes the manifest outage.
    """
    if n_ticks < 20:
        raise ValueError("default schedule needs at least 20 ticks of tape")
    registry_stream = registry_stream if registry_stream is not None else victim_stream
    window = max(2, n_ticks // 16)
    return FaultSchedule(
        [
            WorkerKillFault(
                stream=victim_stream, at_tick=n_ticks // 4, duration_ticks=window
            ),
            StragglerFault(
                stream=victim_stream,
                at_tick=(n_ticks * 11) // 20,
                duration_ticks=window,
                delay_ms=straggler_delay_ms,
            ),
            RegistryOutageFault(
                stream=registry_stream,
                at_tick=(n_ticks * 4) // 5,
                duration_ticks=window,
            ),
        ]
    )


class FleetChaosOps:
    """Chaos operations against a :class:`~repro.serve.fleet.MultiprocGateway`.

    Parameters
    ----------
    gateway:
        The running multiprocess gateway under test.
    registry_root:
        Filesystem root of the model registry (for manifest outages).
    probe_rows:
        ``{stream: covariate row}`` used by recovery probes.
    clock, sleep:
        Injected monotonic clock and sleeper (RPR002-clean).
    consecutive_ok:
        Probes must succeed under the latency budget this many times in a
        row before a stream counts as recovered.
    """

    def __init__(
        self,
        gateway,
        registry_root: os.PathLike,
        probe_rows: Dict[str, np.ndarray],
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        consecutive_ok: int = 3,
        probe_interval_s: float = 0.05,
        probe_timeout_s: float = 10.0,
    ) -> None:
        if consecutive_ok < 1:
            raise ValueError("consecutive_ok must be at least 1")
        self.gateway = gateway
        self.registry_root = Path(registry_root)
        self.probe_rows = probe_rows
        self.clock = clock
        self.sleep = sleep
        self.consecutive_ok = consecutive_ok
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s

    # ------------------------------------------------------------------ #
    # worker faults
    # ------------------------------------------------------------------ #
    def kill_stream_worker(self, stream: str) -> int:
        worker = self.gateway.worker_for(stream)
        self.gateway.kill_worker(worker)
        return worker

    def restart_stream_worker(self, stream: str) -> Tuple[int, int]:
        worker = self.gateway.worker_for(stream)
        port = self.gateway.restart_worker(worker)
        manager = getattr(self.gateway, "manager", None)
        if manager is not None:
            # Recovery probes start right after the clear; waiting for the
            # respawned worker's port keeps the measured recovery time about
            # the serving path, not about process spawn raciness.
            manager.wait_port(worker)
        return worker, port

    def set_stream_delay(self, stream: str, delay_ms: float) -> int:
        worker = self.gateway.worker_for(stream)
        self.gateway.set_worker_delay(worker, delay_ms)
        return worker

    # ------------------------------------------------------------------ #
    # registry faults
    # ------------------------------------------------------------------ #
    def _manifest(self, stream: str) -> Path:
        return self.registry_root / stream / "manifest.json"

    def hide_registry(self, stream: str) -> None:
        manifest = self._manifest(stream)
        if not manifest.exists():
            raise FileNotFoundError(f"no manifest for stream {stream!r} at {manifest}")
        os.replace(manifest, manifest.with_name(manifest.name + _OUTAGE_SUFFIX))

    def restore_registry(self, stream: str) -> None:
        manifest = self._manifest(stream)
        hidden = manifest.with_name(manifest.name + _OUTAGE_SUFFIX)
        if not hidden.exists():
            raise FileNotFoundError(f"no hidden manifest for stream {stream!r}")
        os.replace(hidden, manifest)

    def reload_fails_typed(self, stream: str) -> bool:
        """True iff a reload during the outage raises the fleet's typed error."""
        from ..serve.fleet import FleetError

        try:
            self.gateway.reload(stream)
        except FleetError:
            return True
        except Exception:
            return False
        return False

    def reload_stream(self, stream: str) -> int:
        return self.gateway.reload(stream)

    # ------------------------------------------------------------------ #
    # recovery measurement
    # ------------------------------------------------------------------ #
    def probe_recovery(
        self,
        stream: str,
        latency_budget_s: float,
        recovery_budget_s: float,
    ) -> Tuple[Optional[float], int]:
        """Injected-clock seconds until ``stream`` is back under SLO.

        Issues probe queries until ``consecutive_ok`` succeed in a row with
        latency under ``latency_budget_s``; returns ``(recovery_s, probes)``
        where recovery is measured from the first probe.  ``(None, probes)``
        when the stream never recovers within ``recovery_budget_s``.
        """
        row = self.probe_rows[stream]
        started = self.clock()
        streak = 0
        probes = 0
        while self.clock() - started <= recovery_budget_s:
            probes += 1
            probe_start = self.clock()
            try:
                self.gateway.predict_one(stream, row, timeout=self.probe_timeout_s)
            except Exception:
                streak = 0
            else:
                if self.clock() - probe_start <= latency_budget_s:
                    streak += 1
                else:
                    streak = 0
            if streak >= self.consecutive_ok:
                return self.clock() - started, probes
            self.sleep(self.probe_interval_s)
        return None, probes
