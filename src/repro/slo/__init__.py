"""SLO harness: million-row load generation, chaos injection and reporting.

The serving stack (in-process gateway, out-of-process fleet) proves bitwise
parity and failure isolation on O(1k) uniform queries.  This package turns
that into *production-shaped* evidence:

* :mod:`.tape` — :class:`TrafficTape`: a seeded, replayable schedule of
  heavy-tailed, hot-key-skewed, bursty, diurnally ramped multi-tenant
  traffic; every tick is a pure function of ``(seed, index)``.
* :mod:`.quantiles` — O(1)-memory latency accumulators (seeded reservoir +
  merging t-digest-style sketch) so million-row runs never hold a latency
  array.
* :mod:`.runner` — :class:`LoadRunner`: replays a tape against a gateway
  through N client threads with an injected monotonic clock, recording a
  typed shed/error taxonomy and a deterministic bitwise-verifiable response
  sample.
* :mod:`.chaos` — :class:`FaultSchedule` of typed mid-replay injections
  (worker kill, slow-shard straggler, registry outage) with
  recovery-time-to-SLO measured per fault.
* :mod:`.report` — assembles ``BENCH_slo.json`` for the CI perf gate.
"""

from .chaos import (
    FAULT_KINDS,
    Fault,
    FaultReport,
    FaultSchedule,
    FleetChaosOps,
    RegistryOutageFault,
    StragglerFault,
    WorkerKillFault,
    default_fault_schedule,
)
from .quantiles import LatencyAccumulator, QuantileDigest, ReservoirSample
from .report import build_slo_report, write_slo_report
from .runner import LoadReport, LoadRunner, SloTargets
from .tape import TapeConfig, TapeTick, TrafficTape

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultReport",
    "FaultSchedule",
    "FleetChaosOps",
    "LatencyAccumulator",
    "LoadReport",
    "LoadRunner",
    "QuantileDigest",
    "RegistryOutageFault",
    "ReservoirSample",
    "SloTargets",
    "StragglerFault",
    "TapeConfig",
    "TapeTick",
    "TrafficTape",
    "WorkerKillFault",
    "build_slo_report",
    "default_fault_schedule",
    "write_slo_report",
]
