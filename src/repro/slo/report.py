"""Assemble ``BENCH_slo.json`` from a load run for the CI perf gate.

The SLO report speaks the same dialect as ``BENCH_engine.json`` so one gate
script (``benchmarks/check_regression.py``) enforces both files: metadata
keys at the top level, one dict per gated section.  Where the engine file
gates ``speedup`` ratios, SLO sections declare their metric explicitly via
``"gate_metric"`` (always bigger-is-better — rates, fractions, boolean
outcomes as 0/1); latency quantiles are reported but *not* gated, because
absolute milliseconds on shared CI runners gate nothing but the weather.

Machine-gating follows the engine convention exactly: when the machine
cannot express the measured property (e.g. a multiprocess fleet on a 1-core
runner), a section keeps its ``gate_metric`` declaration but *omits the
metric value* and carries ``"gated": true`` plus a ``gate_reason`` — the
gate skips it loudly instead of failing on an honest limitation.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict, Optional

from ..utils.files import atomic_write
from .runner import LoadReport

__all__ = ["build_slo_report", "write_slo_report"]


def _gate_section(
    metric: str,
    value: Optional[float],
    gated: bool,
    gate_reason: str,
    **extra,
) -> Dict[str, object]:
    section: Dict[str, object] = {"gate_metric": metric}
    if gated:
        section["gated"] = True
        section["gate_reason"] = gate_reason
    else:
        section[metric] = value
    section.update(extra)
    return section


def build_slo_report(
    load: LoadReport,
    mode: str,
    total_rows: int,
    verified_samples: int = 0,
    mismatched_samples: int = 0,
    gated: bool = False,
    gate_reason: str = "",
    tape_fingerprint: str = "",
    note: str = "",
) -> Dict[str, object]:
    """One ``BENCH_slo.json`` payload from a finished :class:`LoadReport`.

    ``gated=True`` marks every gateable section machine-gated (the suite ran
    in a degraded mode — e.g. no second core for a real fleet — and its
    numbers must not be compared against multi-core floors).
    """
    quantiles = load.latency.quantiles_ms()
    faults = [report.as_dict() for report in load.fault_reports]
    recovered = sum(1 for report in load.fault_reports if report.recovered)
    recovered_fraction = recovered / len(faults) if faults else 1.0
    sampled = verified_samples + mismatched_samples
    payload: Dict[str, object] = {
        "generated_by": "PYTHONPATH=src python examples/slo_harness.py",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "note": note
        or (
            "SLO harness trajectory: gate_metric sections are enforced by "
            "benchmarks/check_regression.py against "
            "benchmarks/baseline/BENCH_slo_baseline.json; latency quantiles "
            "are informational (absolute ms gate nothing on shared runners)."
        ),
        "slo_latency": {
            "mode": mode,
            "queries": load.queries,
            "total_rows": total_rows,
            "mean_ms": load.latency.mean_s * 1000.0 if load.latency.count else None,
            **{f"{label}_ms": value for label, value in quantiles.items()},
            "tape_fingerprint": tape_fingerprint,
        },
        "slo_throughput": _gate_section(
            "throughput_qps",
            load.throughput_qps,
            gated,
            gate_reason,
            ok=load.ok,
            elapsed_s=load.elapsed_s,
            workload=f"{mode} replay, {load.queries} queries over {load.ticks} ticks",
        ),
        "slo_availability": _gate_section(
            "ok_fraction",
            load.ok_fraction,
            gated,
            gate_reason,
            shed_rate=load.shed_rate,
            retry_hints=load.retry_hints,
            taxonomy=dict(load.taxonomy),
            workload="fraction of tape queries answered (shed + failed excluded)",
        ),
        "slo_recovery": _gate_section(
            "recovered_fraction",
            recovered_fraction if faults else None,
            gated or not faults,
            gate_reason if gated else ("no faults injected" if not faults else ""),
            faults=faults,
            workload="chaos faults whose stream returned to SLO within budget",
        ),
        # Bitwise parity is machine-independent — the gateway must answer
        # exactly on one core or sixty-four — so this section never inherits
        # the multi-core machine gate; it only gates when nothing was sampled.
        "slo_verification": _gate_section(
            "verified",
            1.0 if sampled and mismatched_samples == 0 else 0.0,
            sampled == 0,
            "no samples verified" if sampled == 0 else "",
            verified_samples=verified_samples,
            mismatched_samples=mismatched_samples,
            workload="bitwise check of sampled responses against direct model output",
        ),
    }
    return payload


def write_slo_report(payload: Dict[str, object], path) -> Path:
    """Atomically write the report (no torn JSON under a mid-run kill)."""
    path = Path(path)
    with atomic_write(path) as tmp:
        Path(tmp).write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
