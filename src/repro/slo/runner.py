"""Replay a :class:`~repro.slo.tape.TrafficTape` against a serving gateway.

:class:`LoadRunner` is transport-agnostic: anything exposing
``predict_one(stream, row, timeout=...)`` works — the in-process
:class:`~repro.serve.gateway.ServingGateway` and the spawned
:class:`~repro.serve.fleet.MultiprocGateway` both do.  The runner

* drives the tape from one driver thread into a bounded queue and drains it
  with ``n_clients`` client threads (the queue bound caps look-ahead, so row
  chunks are generated just-in-time — a million-row tape never has more
  than ``queue depth`` chunks resident);
* measures per-query latency on an **injected monotonic clock** (RPR002: no
  wall-clock reads; replace ``clock``/``sleep`` to run on virtual time);
* classifies every failure into a typed **shed/error taxonomy** — shed
  errors are read uniformly through their ``retry_after_s`` field, never by
  special-casing types;
* accumulates latency into per-thread O(1)-memory sketches
  (:class:`~repro.slo.quantiles.LatencyAccumulator`), merged after join;
* keeps a deterministic **response sample**: which ``(tick, row)`` positions
  are sampled is a pure function of ``(sample_seed, tick index)``, so two
  replays of the same tape sample the same queries and their responses can
  be compared bitwise (and verified against direct model references);
* executes an optional :class:`~repro.slo.chaos.FaultSchedule` at its tick
  boundaries, measuring recovery-time-to-SLO per fault through the provided
  chaos ops.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.fleet import (
    QuotaExceeded,
    RateLimited,
    RemoteError,
    WorkerUnavailable,
)
from ..serve.gateway import Overloaded
from .chaos import FaultReport, FaultSchedule
from .quantiles import LatencyAccumulator
from .tape import TapeTick, TrafficTape

__all__ = ["LoadReport", "LoadRunner", "SloTargets", "TAXONOMY"]

#: Every bucket a query can land in.  ``shed`` buckets are admission-control
#: rejections (the system said no, on purpose); the rest are failures.
TAXONOMY: Tuple[str, ...] = (
    "ok",
    "overloaded",
    "rate_limited",
    "quota",
    "worker_unavailable",
    "remote_error",
    "timeout",
    "error",
)

SHED_BUCKETS: Tuple[str, ...] = ("overloaded", "rate_limited", "quota")


@dataclass(frozen=True)
class SloTargets:
    """The service-level objectives a run is judged against."""

    p99_ms: float = 250.0
    p999_ms: float = 1000.0
    max_shed_rate: float = 0.5
    #: Per-fault budget: recovery probes give up after this much injected-
    #: clock time without the stream returning to SLO.
    recovery_s: float = 60.0

    def __post_init__(self) -> None:
        if self.p99_ms <= 0 or self.p999_ms <= 0:
            raise ValueError("latency targets must be positive")
        if not 0.0 <= self.max_shed_rate <= 1.0:
            raise ValueError("max_shed_rate must lie in [0, 1]")
        if self.recovery_s <= 0:
            raise ValueError("recovery_s must be positive")


@dataclass
class LoadReport:
    """Everything one replay measured."""

    ticks: int = 0
    queries: int = 0
    taxonomy: Dict[str, int] = field(default_factory=dict)
    per_tenant: Dict[str, int] = field(default_factory=dict)
    #: Shed errors whose ``retry_after_s`` carried a real hint (uniform field
    #: read — RateLimited populates it, Overloaded honestly reports None).
    retry_hints: int = 0
    latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    elapsed_s: float = 0.0
    #: ``(tick index, row index) -> (mu0, mu1, ite, model_version)`` for the
    #: deterministic response sample (successful sampled queries only).
    samples: Dict[Tuple[int, int], Tuple[float, float, float, Optional[int]]] = field(
        default_factory=dict
    )
    fault_reports: List[FaultReport] = field(default_factory=list)
    targets: SloTargets = field(default_factory=SloTargets)

    @property
    def ok(self) -> int:
        return self.taxonomy.get("ok", 0)

    @property
    def shed(self) -> int:
        return sum(self.taxonomy.get(bucket, 0) for bucket in SHED_BUCKETS)

    @property
    def failed(self) -> int:
        return self.queries - self.ok - self.shed

    @property
    def shed_rate(self) -> float:
        return self.shed / self.queries if self.queries else 0.0

    @property
    def ok_fraction(self) -> float:
        return self.ok / self.queries if self.queries else 0.0

    @property
    def throughput_qps(self) -> float:
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def quantile_ms(self, q: float) -> float:
        return self.latency.digest.quantile(q) * 1000.0

    @property
    def all_faults_recovered(self) -> bool:
        return all(report.recovered for report in self.fault_reports)

    def summary(self) -> Dict[str, object]:
        """Flat scalar view (reporting and logs)."""
        quantiles = self.latency.quantiles_ms()
        return {
            "ticks": self.ticks,
            "queries": self.queries,
            "ok": self.ok,
            "shed": self.shed,
            "failed": self.failed,
            "shed_rate": self.shed_rate,
            "ok_fraction": self.ok_fraction,
            "throughput_qps": self.throughput_qps,
            "elapsed_s": self.elapsed_s,
            "mean_ms": self.latency.mean_s * 1000.0 if self.latency.count else float("nan"),
            **{f"{k}_ms": v for k, v in quantiles.items()},
            "faults": len(self.fault_reports),
            "faults_recovered": sum(1 for r in self.fault_reports if r.recovered),
        }


RowSource = Callable[[int, int], np.ndarray]


class LoadRunner:
    """Replay one tape against one gateway under an optional fault schedule.

    Parameters
    ----------
    gateway:
        Anything with ``predict_one(stream, row, timeout=...) -> Prediction``.
    tape:
        The :class:`TrafficTape` to replay.
    row_sources:
        ``{tenant: source}`` where a source is either a
        :class:`~repro.data.streams.ChunkedPopulation`-like object (has
        ``rows_for(key, rows)``) or a bare ``(key, rows) -> ndarray``
        callable.  Must cover every tape tenant.
    n_clients:
        Client threads draining the tick queue.
    clock, sleep:
        Injected monotonic time source and sleeper (RPR002) — swap both to
        replay on virtual time.
    pace, time_scale:
        When ``pace`` is true the driver honours the tape's inter-arrival
        schedule (compressed by ``time_scale``); default is max-throughput
        replay.
    sample_per_tick, sample_seed:
        Deterministic response sampling: up to ``sample_per_tick`` row
        positions per tick, chosen purely from ``(sample_seed, tick index)``.
    faults, chaos_ops:
        Optional :class:`FaultSchedule` executed at tick boundaries through
        the chaos ops adapter (required when faults are given).
    query_timeout_s:
        Per-query result timeout.
    queue_depth:
        Tick look-ahead bound (memory ceiling for in-flight chunks).
    """

    def __init__(
        self,
        gateway,
        tape: TrafficTape,
        row_sources: Dict[str, object],
        n_clients: int = 4,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pace: bool = False,
        time_scale: float = 1.0,
        sample_per_tick: int = 0,
        sample_seed: int = 0,
        faults: Optional[FaultSchedule] = None,
        chaos_ops=None,
        query_timeout_s: float = 120.0,
        queue_depth: int = 64,
        targets: Optional[SloTargets] = None,
        reservoir_capacity: int = 1024,
        max_centroids: int = 256,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be at least 1")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if sample_per_tick < 0:
            raise ValueError("sample_per_tick must be non-negative")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        missing = [t for t in tape.tenants if t not in row_sources]
        if missing:
            raise ValueError(f"row_sources missing tape tenants: {missing}")
        if faults is not None and len(faults) and chaos_ops is None:
            raise ValueError("a fault schedule requires chaos_ops")
        self.gateway = gateway
        self.tape = tape
        self.row_sources: Dict[str, RowSource] = {
            tenant: self._as_source(source) for tenant, source in row_sources.items()
        }
        self.n_clients = n_clients
        self.clock = clock
        self.sleep = sleep
        self.pace = pace
        self.time_scale = time_scale
        self.sample_per_tick = sample_per_tick
        self.sample_seed = sample_seed
        self.faults = faults if faults is not None else FaultSchedule([])
        self.chaos_ops = chaos_ops
        self.query_timeout_s = query_timeout_s
        self.queue_depth = queue_depth
        self.targets = targets if targets is not None else SloTargets()
        self.reservoir_capacity = reservoir_capacity
        self.max_centroids = max_centroids

    @staticmethod
    def _as_source(source) -> RowSource:
        rows_for = getattr(source, "rows_for", None)
        if callable(rows_for):
            return rows_for
        if callable(source):
            return source
        raise TypeError(
            "a row source must expose rows_for(key, rows) or be callable"
        )

    # ------------------------------------------------------------------ #
    # taxonomy
    # ------------------------------------------------------------------ #
    @staticmethod
    def classify(error: BaseException) -> str:
        """Taxonomy bucket of one failure (shed types first, then faults)."""
        if isinstance(error, Overloaded):
            return "overloaded"
        if isinstance(error, RateLimited):
            return "rate_limited"
        if isinstance(error, QuotaExceeded):
            return "quota"
        if isinstance(error, WorkerUnavailable):
            return "worker_unavailable"
        if isinstance(error, RemoteError):
            return "remote_error"
        if isinstance(error, TimeoutError):
            return "timeout"
        return "error"

    def _sampled_rows(self, tick: TapeTick) -> frozenset:
        if self.sample_per_tick <= 0:
            return frozenset()
        rng = np.random.default_rng([self.sample_seed, 29, tick.index])
        picks = rng.integers(0, tick.rows, size=min(self.sample_per_tick, tick.rows))
        return frozenset(int(i) for i in picks)

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def run(self) -> LoadReport:
        """Replay the tape; returns the merged :class:`LoadReport`."""
        ticks_q: "queue.Queue[Optional[TapeTick]]" = queue.Queue(maxsize=self.queue_depth)
        shards = [
            LatencyAccumulator(
                max_centroids=self.max_centroids,
                reservoir_capacity=self.reservoir_capacity,
                seed=client,
            )
            for client in range(self.n_clients)
        ]
        taxonomies: List[Dict[str, int]] = [
            {bucket: 0 for bucket in TAXONOMY} for _ in range(self.n_clients)
        ]
        tenant_counts: List[Dict[str, int]] = [dict() for _ in range(self.n_clients)]
        samples: List[Dict[Tuple[int, int], Tuple[float, float, float, Optional[int]]]] = [
            dict() for _ in range(self.n_clients)
        ]
        retry_hints = [0] * self.n_clients
        queries = [0] * self.n_clients

        def client_loop(client: int) -> None:
            accumulator = shards[client]
            taxonomy = taxonomies[client]
            counts = tenant_counts[client]
            sampled = samples[client]
            while True:
                tick = ticks_q.get()
                if tick is None:
                    break
                rows = self.row_sources[tick.tenant](tick.chunk_key, tick.rows)
                wanted = self._sampled_rows(tick)
                counts[tick.tenant] = counts.get(tick.tenant, 0) + tick.rows
                for i in range(tick.rows):
                    queries[client] += 1
                    start = self.clock()
                    try:
                        prediction = self.gateway.predict_one(
                            tick.tenant, rows[i], timeout=self.query_timeout_s
                        )
                    except Exception as error:
                        bucket = self.classify(error)
                        taxonomy[bucket] += 1
                        if bucket in SHED_BUCKETS:
                            # Uniform field read across every shed type; the
                            # value may honestly be None (queue pressure has
                            # no ETA) but the access never special-cases.
                            if error.retry_after_s is not None:
                                retry_hints[client] += 1
                        continue
                    accumulator.record(self.clock() - start)
                    taxonomy["ok"] += 1
                    if i in wanted:
                        sampled[(tick.index, i)] = (
                            prediction.mu0,
                            prediction.mu1,
                            prediction.ite,
                            prediction.model_version,
                        )

        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"slo-client-{c}")
            for c in range(self.n_clients)
        ]
        for thread in threads:
            thread.start()

        report = LoadReport(targets=self.targets)
        events = self.faults.events()
        event_cursor = 0
        started = self.clock()
        n_ticks = 0
        try:
            for tick in self.tape.ticks():
                # Fire every fault event due at or before this tick, in
                # order, on the driver thread — clients keep draining the
                # queue, so load continues through the fault window.
                while (
                    event_cursor < len(events)
                    and events[event_cursor][0] <= tick.index
                ):
                    _, action, fault = events[event_cursor]
                    event_cursor += 1
                    self._run_fault_event(action, fault, tick.index, report)
                if self.pace:
                    delay = tick.at_s / self.time_scale - (self.clock() - started)
                    if delay > 0:
                        self.sleep(delay)
                ticks_q.put(tick)
                n_ticks += 1
            # Events scheduled past the last tick still fire (a schedule may
            # clear a fault at n_ticks).
            while event_cursor < len(events):
                _, action, fault = events[event_cursor]
                event_cursor += 1
                self._run_fault_event(action, fault, n_ticks, report)
        finally:
            for _ in threads:
                ticks_q.put(None)
            for thread in threads:
                thread.join()
        report.elapsed_s = self.clock() - started

        report.ticks = n_ticks
        report.queries = sum(queries)
        report.retry_hints = sum(retry_hints)
        merged_taxonomy = {bucket: 0 for bucket in TAXONOMY}
        for taxonomy in taxonomies:
            for bucket, count in taxonomy.items():
                merged_taxonomy[bucket] += count
        report.taxonomy = merged_taxonomy
        merged_tenants: Dict[str, int] = {}
        for counts in tenant_counts:
            for tenant, count in counts.items():
                merged_tenants[tenant] = merged_tenants.get(tenant, 0) + count
        report.per_tenant = merged_tenants
        report.latency = LatencyAccumulator.merged(shards)
        for sampled in samples:
            report.samples.update(sampled)
        return report

    def _run_fault_event(
        self, action: str, fault, at_tick: int, report: LoadReport
    ) -> None:
        if action == "inject":
            details = fault.inject(self.chaos_ops)
            report.fault_reports.append(
                FaultReport(
                    kind=fault.kind,
                    stream=fault.stream,
                    injected_tick=at_tick,
                    injected_at_s=self.clock(),
                    details=details or {},
                )
            )
            return
        fault_report = next(
            (
                r
                for r in reversed(report.fault_reports)
                if r.kind == fault.kind and r.stream == fault.stream
            ),
            None,
        )
        details = fault.clear(self.chaos_ops)
        if fault_report is None:  # pragma: no cover - schedule always injects first
            return
        fault_report.cleared_tick = at_tick
        fault_report.cleared_at_s = self.clock()
        if fault_report.details is not None and details:
            fault_report.details.update(details)
        if self.chaos_ops is not None:
            recovery_s, probes = self.chaos_ops.probe_recovery(
                fault.stream,
                latency_budget_s=self.targets.p99_ms / 1000.0,
                recovery_budget_s=self.targets.recovery_s,
            )
            fault_report.recovery_s = recovery_s
            fault_report.probes = probes
