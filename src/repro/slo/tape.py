"""Seeded, replayable multi-tenant traffic schedules with production shape.

A :class:`TrafficTape` generalises the :mod:`repro.data.drift` tape: instead
of fixed-size uniform ticks it draws, per tick,

* a **heavy-tailed inter-arrival gap** (normalised Pareto around the
  configured mean — most ticks arrive back-to-back, a few after long idles);
* a **heavy-tailed row count** (the same shape: most queries are small, the
  tail is what breaks capacity planning);
* a **tenant** under Zipf hot-key skew (rank 0 of the tenant list is the
  hot key);
* **burst windows** (every ``burst_every`` ticks, ``burst_length`` ticks run
  ``burst_multiplier`` x denser and heavier) and a **diurnal ramp**
  (sinusoidal volume modulation with period ``diurnal_period``).

Every tick is a pure function of ``(seed, tick index)`` plus an additive
prefix sum of gaps, so iterating the tape twice — in the same process or
years apart — replays the identical schedule; the tape holds O(1) state and
never materialises its ticks unless a test asks for :meth:`schedule`.

Row *content* is deliberately not the tape's business: a tick carries a
``chunk_key`` that a deterministic chunk source (e.g.
:class:`~repro.data.streams.ChunkedPopulation`) turns into the tick's rows,
keeping million-row replays O(chunk) in memory.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TapeConfig", "TapeTick", "TrafficTape"]


@dataclass(frozen=True)
class TapeConfig:
    """Shape of one traffic tape.

    Attributes
    ----------
    n_ticks:
        Number of ticks on the tape.
    mean_rows_per_tick:
        Mean of the heavy-tailed per-tick row count.
    mean_interarrival_s:
        Mean of the heavy-tailed gap between consecutive ticks (seconds on
        the tape's own timeline; the runner may replay faster than real time).
    tail_shape:
        Pareto shape of both heavy tails.  Values just above 1 are very
        heavy; large values degenerate toward constant draws.
    hot_key_skew:
        Zipf exponent over tenant ranks; 0 is uniform traffic, 1–2 gives a
        pronounced hot tenant.
    burst_every, burst_length, burst_multiplier:
        Every ``burst_every`` ticks a window of ``burst_length`` ticks runs
        ``burst_multiplier`` x heavier and denser.  ``burst_every=0``
        disables bursts.
    diurnal_period, diurnal_amplitude:
        Sinusoidal volume modulation with the given period in ticks and
        relative amplitude; ``diurnal_period=0`` disables the ramp.
    max_rows_per_tick:
        Hard clip on the heavy tail so one tick cannot exceed a worker's
        payload budget.
    """

    n_ticks: int = 256
    mean_rows_per_tick: int = 64
    mean_interarrival_s: float = 0.01
    tail_shape: float = 1.5
    hot_key_skew: float = 1.1
    burst_every: int = 64
    burst_length: int = 8
    burst_multiplier: float = 4.0
    diurnal_period: int = 128
    diurnal_amplitude: float = 0.5
    max_rows_per_tick: int = 4096

    def __post_init__(self) -> None:
        if self.n_ticks < 1:
            raise ValueError("n_ticks must be at least 1")
        if self.mean_rows_per_tick < 1:
            raise ValueError("mean_rows_per_tick must be at least 1")
        if self.mean_interarrival_s < 0:
            raise ValueError("mean_interarrival_s must be non-negative")
        if self.tail_shape <= 1.0:
            raise ValueError("tail_shape must exceed 1 (finite-mean tail)")
        if self.hot_key_skew < 0:
            raise ValueError("hot_key_skew must be non-negative")
        if self.burst_every < 0 or self.burst_length < 0:
            raise ValueError("burst_every and burst_length must be non-negative")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be at least 1")
        if self.diurnal_period < 0:
            raise ValueError("diurnal_period must be non-negative")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must lie in [0, 1)")
        if self.max_rows_per_tick < 1:
            raise ValueError("max_rows_per_tick must be at least 1")


@dataclass(frozen=True)
class TapeTick:
    """One scheduled arrival: ``rows`` queries for ``tenant`` at ``at_s``."""

    index: int
    #: Scheduled offset from replay start, on the tape's own timeline.
    at_s: float
    tenant: str
    rows: int
    #: Key the tenant's deterministic chunk source resolves to row content.
    chunk_key: int
    #: Whether the tick sits in a burst window (diagnostics only).
    burst: bool


class TrafficTape:
    """Deterministic production-shaped traffic schedule over named tenants.

    Parameters
    ----------
    tenants:
        Tenant (stream) names; position is the hot-key rank — index 0 is the
        hottest under Zipf skew.
    config:
        Tape shape (:class:`TapeConfig`).
    seed:
        Tape seed; with the tenants and config it fully determines every
        tick.
    """

    def __init__(
        self,
        tenants: Sequence[str],
        config: Optional[TapeConfig] = None,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ValueError("a tape needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ValueError("tenant names must be unique")
        self.tenants: Tuple[str, ...] = tuple(tenants)
        self.config = config if config is not None else TapeConfig()
        self.seed = seed
        skew = self.config.hot_key_skew
        weights = np.array(
            [1.0 / float(rank + 1) ** skew for rank in range(len(self.tenants))]
        )
        self._tenant_probs = weights / weights.sum()

    def __len__(self) -> int:
        return self.config.n_ticks

    # ------------------------------------------------------------------ #
    # schedule generation
    # ------------------------------------------------------------------ #
    def _heavy_factor(self, rng: np.random.Generator) -> float:
        """Unit-mean heavy-tailed factor (classical Pareto, clipped)."""
        shape = self.config.tail_shape
        factor = (1.0 + rng.pareto(shape)) * (shape - 1.0) / shape
        return min(factor, 50.0)

    def _burst(self, index: int) -> bool:
        config = self.config
        if config.burst_every <= 0 or config.burst_length <= 0:
            return False
        return index % config.burst_every < config.burst_length

    def _ramp(self, index: int) -> float:
        config = self.config
        if config.diurnal_period <= 0:
            return 1.0
        phase = 2.0 * math.pi * index / config.diurnal_period
        return 1.0 + config.diurnal_amplitude * math.sin(phase)

    def ticks(self) -> Iterator[TapeTick]:
        """Yield the schedule tick by tick; O(1) memory, bitwise replayable."""
        config = self.config
        at_s = 0.0
        for index in range(config.n_ticks):
            rng = np.random.default_rng([self.seed, 11, index])
            burst = self._burst(index)
            intensity = self._ramp(index) * (config.burst_multiplier if burst else 1.0)

            gap = config.mean_interarrival_s * self._heavy_factor(rng) / intensity
            at_s += gap

            rows = config.mean_rows_per_tick * self._heavy_factor(rng) * intensity
            rows = int(min(max(round(rows), 1), config.max_rows_per_tick))

            tenant_index = int(rng.choice(len(self.tenants), p=self._tenant_probs))
            yield TapeTick(
                index=index,
                at_s=at_s,
                tenant=self.tenants[tenant_index],
                rows=rows,
                chunk_key=index,
                burst=burst,
            )

    def schedule(self) -> List[TapeTick]:
        """The full materialised schedule (tests and small tapes only)."""
        return list(self.ticks())

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def total_rows(self) -> int:
        """Total queries on the tape (one pass over the schedule)."""
        return sum(tick.rows for tick in self.ticks())

    def tenant_rows(self) -> Dict[str, int]:
        """Per-tenant row totals (hot-key skew made visible)."""
        totals = {tenant: 0 for tenant in self.tenants}
        for tick in self.ticks():
            totals[tick.tenant] += tick.rows
        return totals

    def fingerprint(self) -> str:
        """SHA-256 over the full schedule — equal iff the replay is identical."""
        digest = hashlib.sha256()
        for tick in self.ticks():
            digest.update(
                f"{tick.index}|{tick.at_s!r}|{tick.tenant}|{tick.rows}|"
                f"{tick.chunk_key}|{tick.burst}\n".encode()
            )
        return digest.hexdigest()
