"""TTL + LRU response cache for the serving gateway.

A serving front door sees heavy repetition: the same unit is scored again on
refresh, dashboards re-ask the head model the same what-if queries, and drift
replays re-submit whole tapes.  Because the micro-batcher executes every
query at one canonical batch size, a response is a pure function of
``(model version, covariate row)`` — which makes responses safely cacheable:
a hit is *bitwise* the answer a cold query would have produced, and bumping
the model version changes the key, so stale answers become unreachable
instead of needing an explicit flush.

:class:`TTLLRUCache` is the storage: bounded (LRU eviction), optionally
time-bounded (per-entry TTL against an injectable monotonic clock, so tests
can advance time deterministically), and thread-safe (one lock per cache;
the gateway keeps one cache per shard so shards never contend).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

import time

__all__ = ["CacheStats", "TTLLRUCache"]

#: Sentinel distinguishing "not cached" from a cached falsy value.
_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """Lifetime counters of one cache instance (consistent snapshot)."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class TTLLRUCache:
    """Bounded mapping with least-recently-used eviction and optional TTL.

    Parameters
    ----------
    capacity:
        Maximum number of entries; inserting beyond it evicts the least
        recently *used* entry.  ``capacity == 0`` disables the cache (every
        lookup misses, every put is dropped) so callers can keep one code
        path for cached and uncached deployments.
    ttl_s:
        Optional per-entry lifetime in seconds; expired entries are treated
        as misses and dropped lazily on access.  ``None`` means no expiry.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(
        self,
        capacity: int,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive (or None for no expiry)")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (value, expires_at or None), in recency order (MRU last).
        self._entries: "OrderedDict[Hashable, tuple]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: Hashable):
        """Return the cached value or ``None``; counts the lookup either way."""
        with self._lock:
            entry = self._entries.get(key, _MISS)
            if entry is _MISS:
                self._misses += 1
                return None
            value, expires_at = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = (value, expires_at)

    def clear(self) -> None:
        """Drop every entry (the counters keep counting)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """Consistent snapshot of the lifetime counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                size=len(self._entries),
                capacity=self.capacity,
            )
