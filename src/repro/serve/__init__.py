"""Continual serving layer: versioned model registry + prediction service.

Turns a trained continual learner into a long-lived deployment, per the
paper's scenario (data arrive over days / from different subsidiaries, only
the model and representation memory persist):

* :class:`ModelRegistry` — versioned estimator checkpoints per stream
  (any registered estimator: CERL, the CFR strategies, the meta-learners)
  (save on every domain advance, list/load/rollback by ``(stream,
  domain_index)``, atomic writes, format-versioned manifests);
* :class:`PredictionService` / :class:`MicroBatcher` — single-unit ITE
  queries coalesced into batches on the no-graph inference fast path,
  bit-identical to a direct batched ``predict``; traffic observers
  (``add_observer``) let :mod:`repro.monitor` tap the query stream for
  drift detection;
* :class:`ServingGateway` — the multi-tenant front door: deterministic
  digest routing of stream keys onto shards, lazy per-stream service
  spin-up from registry heads, a bitwise-transparent TTL+LRU response
  cache keyed on ``(stream, model version, row digest)``, and admission
  control that sheds overload with a typed :class:`Overloaded` error
  before it can reach any service or traffic observer;
* :mod:`repro.serve.fleet` — the out-of-process tier: a
  :class:`~repro.serve.fleet.FleetManager` of shard worker *processes*
  (memory-mapped checkpoint loads, the same canonical-batch path —
  bitwise identity across the process boundary) behind the asyncio
  :class:`~repro.serve.fleet.MultiprocGateway` front door with per-tenant
  rate limits/quotas;
* the end-to-end deployment protocol lives in
  :func:`repro.experiments.run_continual_deployment`, the drift-driven
  closed loop in :func:`repro.experiments.run_auto_adaptation`, and the
  multi-stream fleet scenario in
  :func:`repro.experiments.run_fleet_deployment`.
"""

from .cache import CacheStats, TTLLRUCache
from .fleet import (
    FleetManager,
    MultiprocGateway,
    QuotaExceeded,
    RateLimited,
    TenantPolicy,
    WorkerUnavailable,
)
from .gateway import (
    GatewayStats,
    Overloaded,
    ServingGateway,
    ShardRouter,
    ShardStats,
    stable_stream_digest,
)
from .registry import ModelRegistry, RegistryEntry
from .service import (
    MicroBatcher,
    PendingPrediction,
    Prediction,
    PredictionService,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "TTLLRUCache",
    "FleetManager",
    "MultiprocGateway",
    "QuotaExceeded",
    "RateLimited",
    "TenantPolicy",
    "WorkerUnavailable",
    "GatewayStats",
    "Overloaded",
    "ServingGateway",
    "ShardRouter",
    "ShardStats",
    "stable_stream_digest",
    "ModelRegistry",
    "RegistryEntry",
    "MicroBatcher",
    "PendingPrediction",
    "Prediction",
    "PredictionService",
    "ServiceStats",
]
