"""High-throughput prediction serving over the no-graph inference fast path.

A deployed learner answers single-unit queries ("what is the treatment
effect for this customer?"), but the inference substrate is fastest when it
runs one large GEMM per layer.  :class:`MicroBatcher` bridges the two: client
threads submit single-unit queries, a dispatcher thread coalesces whatever is
queued into one batch (up to ``max_batch``, waiting at most ``max_wait_ms``
after the first query), runs the batch through the learner's
workspace-backed :meth:`~repro.nn.module.Module.infer` path, and scatters the
per-row results back to the waiting callers.

Exactness under micro-batching needs care: every layer of the inference path
is row-wise (dense layers, row-normalisation, element-wise activations), but
BLAS picks its GEMM kernel — and with it the summation order of each row's
dot products — from the *batch size*, so the same unit can round one ulp
differently in a 3-row batch than in a 400-row batch.  The batcher therefore
pads every batch up to a fixed canonical size (``max_batch``, repeating the
last row; padded outputs are dropped) so every query executes in a GEMM of
identical shape.  Within a fixed shape each output row is a pure function of
its own input row, independent of batch position and of the other rows'
values, so a response is bitwise identical to the corresponding row of a
direct batched ``predict`` over any ``max_batch``-row batch containing that
unit — the serving tests pin exactly this against a serial reference.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics import EffectEstimate

__all__ = ["MicroBatcher", "PendingPrediction", "Prediction", "PredictionService", "ServiceStats"]


@dataclass(frozen=True)
class Prediction:
    """Response to one single-unit ITE query."""

    mu0: float
    mu1: float
    ite: float
    model_version: Optional[int] = None


@dataclass(frozen=True)
class ServiceStats:
    """Lifetime counters of one service/batcher instance."""

    queries: int
    batches: int
    #: Largest number of queries coalesced into one batch so far (not the
    #: configured ``max_batch`` knob).
    largest_batch: int

    @property
    def mean_batch(self) -> float:
        """Average number of queries coalesced per executed batch."""
        return self.queries / self.batches if self.batches else 0.0


class PendingPrediction:
    """Future-like handle for one submitted query."""

    __slots__ = ("_event", "_result", "_error", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[Prediction] = None
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["PendingPrediction"], None]] = []  # guarded-by: _lock

    def done(self) -> bool:
        """Whether a result (or error) has been delivered."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Prediction:
        """Block until the batch containing this query has executed."""
        if not self._event.wait(timeout):
            raise TimeoutError("prediction did not complete in time")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def add_done_callback(self, callback: Callable[["PendingPrediction"], None]) -> None:
        """Invoke ``callback(self)`` once a result or error is delivered.

        Runs on the delivering (dispatcher) thread, after the waiter is
        released; if the handle is already done the callback runs immediately
        on the calling thread.  Used by the gateway for in-flight accounting
        and cache fills — callbacks must be cheap and must not raise.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _deliver(self) -> None:
        self._event.set()
        with self._lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _set_result(self, result: Prediction) -> None:
        self._result = result
        self._deliver()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._deliver()


class MicroBatcher:
    """Coalesce single-row queries into batches executed by one function.

    Parameters
    ----------
    run_batch:
        Callable mapping a stacked ``(n, p)`` array to per-row results
        ``(mu0, mu1, ite, version)`` arrays/scalars; executed on the
        dispatcher thread, outside the queue lock.
    max_batch:
        Number of queries answered per executed batch — and the *canonical
        execution size*: smaller batches are padded up to exactly this many
        rows (see the module docstring), so responses do not depend on how
        traffic happened to be cut into batches.
    max_wait_ms:
        Extra time the dispatcher waits for more queries after the first one
        arrives.  The default ``0`` dispatches immediately: batches still
        form naturally because everything that queues up while the previous
        batch executes is coalesced into the next one — under load that
        adapts batch size to throughput without adding a fixed latency floor.
        A positive wait only pays off when execution is far more expensive
        than a thread wake-up and traffic is sparse but bursty.
    on_batch:
        Optional hook ``on_batch(rows)`` invoked on the dispatcher thread
        after each *successfully* executed batch, with the read-only
        ``(k, p)`` array of real (unpadded) query rows in submission order,
        before the per-row results are delivered.  A failed batch never
        reaches the hook, so taps (drift monitors) only ever see answered
        queries.  A hook exception is delivered to the batch's callers like
        an execution failure.
    """

    def __init__(
        self,
        run_batch: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[int]]],
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
        on_batch: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self._run_batch = run_batch
        self._on_batch = on_batch
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self._queue: List[Tuple[np.ndarray, PendingPrediction]] = []  # guarded-by: _cond
        self._cond = threading.Condition()
        self._closed = False  # guarded-by: _cond
        self._queries = 0  # guarded-by: _cond
        self._batches = 0  # guarded-by: _cond
        self._largest_batch = 0  # guarded-by: _cond
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def submit(self, row: np.ndarray) -> PendingPrediction:
        """Enqueue one query row; returns a handle to wait on."""
        pending = PendingPrediction()
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot submit to a closed MicroBatcher")
            self._queue.append((row, pending))
            self._cond.notify_all()
        return pending

    def stats(self) -> ServiceStats:
        """Lifetime queue counters (thread-safe snapshot)."""
        with self._cond:
            return ServiceStats(
                queries=self._queries,
                batches=self._batches,
                largest_batch=self._largest_batch,
            )

    def close(self) -> None:
        """Drain the queue, stop the dispatcher thread and reject new work."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    # ------------------------------------------------------------------ #
    # dispatcher side
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                if self.max_wait > 0.0 and not self._closed:
                    # Coalescing window: give concurrent clients a moment to
                    # pile on before the batch is cut.
                    deadline = time.monotonic() + self.max_wait
                    while len(self._queue) < self.max_batch and not self._closed:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0.0:
                            break
                        self._cond.wait(remaining)
                batch = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
                self._queries += len(batch)
                self._batches += 1
                self._largest_batch = max(self._largest_batch, len(batch))
            self._execute(batch)

    def _execute(self, batch: Sequence[Tuple[np.ndarray, PendingPrediction]]) -> None:
        try:
            rows = [row for row, _ in batch]
            if len(rows) < self.max_batch:
                # Pad to the canonical execution size so BLAS picks the same
                # GEMM kernel (same per-row summation order) for every batch;
                # the padded rows' outputs are simply dropped below.
                rows.extend([rows[-1]] * (self.max_batch - len(rows)))
            stacked = np.stack(rows)
            mu0, mu1, ite, version = self._run_batch(stacked)
            if self._on_batch is not None:
                executed = stacked[: len(batch)]
                executed.setflags(write=False)
                self._on_batch(executed)
            for index, (_, pending) in enumerate(batch):
                pending._set_result(
                    Prediction(
                        mu0=float(mu0[index]),
                        mu1=float(mu1[index]),
                        ite=float(ite[index]),
                        model_version=version,
                    )
                )
        except BaseException as error:  # deliver, don't kill the dispatcher
            for _, pending in batch:
                pending._set_error(error)


class PredictionService:
    """Long-lived ITE prediction service over one (hot-swappable) learner.

    Single-unit queries go through :meth:`submit`/:meth:`predict_one` and are
    micro-batched onto the learner's inference fast path; whole-array queries
    go through :meth:`predict` directly.  The learner can be swapped while
    serving (:meth:`swap_model` / :meth:`reload`), e.g. after a new domain is
    trained or a registry rollback — in-flight batches finish on the model
    they started with, and every response carries the model version that
    produced it.

    Parameters
    ----------
    learner:
        Any fitted learner exposing ``predict(covariates) -> EffectEstimate``
        (CERL, the baseline model, or any registered estimator).
    model_version:
        Version tag stamped on responses (the registry's domain index).
    max_batch, max_wait_ms:
        Micro-batching knobs, see :class:`MicroBatcher`.
    """

    def __init__(
        self,
        learner,
        model_version: Optional[int] = None,
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
    ) -> None:
        self._model_lock = threading.Lock()
        self._learner = learner  # guarded-by: _model_lock
        self._model_version = model_version  # guarded-by: _model_lock
        self._n_features = self._learner_features(learner)  # guarded-by: _model_lock
        self._observer_lock = threading.Lock()
        self._observers: List[Callable[[np.ndarray], None]] = []  # guarded-by: _observer_lock
        self._batcher = MicroBatcher(
            self._run_batch,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            on_batch=self._notify_observers,
        )

    # ------------------------------------------------------------------ #
    # construction from a registry
    # ------------------------------------------------------------------ #
    @classmethod
    def from_registry(
        cls, registry, stream: str, domain_index: Optional[int] = None, **kwargs
    ) -> "PredictionService":
        """Serve a checkpointed model (default: the stream's head version)."""
        entry = registry.entry(stream, domain_index)
        return cls(
            registry.load(stream, entry.domain_index),
            model_version=entry.domain_index,
            **kwargs,
        )

    def reload(self, registry, stream: str, domain_index: Optional[int] = None) -> int:
        """Hot-swap to a registry version (default head); returns its index."""
        entry = registry.entry(stream, domain_index)
        self.swap_model(
            registry.load(stream, entry.domain_index), model_version=entry.domain_index
        )
        return entry.domain_index

    def swap_model(self, learner, model_version: Optional[int] = None) -> None:
        """Replace the served learner atomically w.r.t. in-flight batches."""
        n_features = self._learner_features(learner)
        with self._model_lock:
            self._learner = learner
            self._model_version = model_version
            self._n_features = n_features

    @property
    def model_version(self) -> Optional[int]:
        """Version tag of the learner currently serving."""
        with self._model_lock:
            return self._model_version

    @property
    def version_hint(self) -> Optional[int]:
        """Lock-free read of the version tag (may lag an in-flight swap).

        The model lock is held by the dispatcher for the whole batch
        execution, so readers that only need an *advisory* version — the
        gateway's cache-key lookup — must not take it on the submit path.
        A stale hint costs at most one cache miss; cache fills key by the
        version the response actually reports, never by this hint.
        """
        return self._model_version

    # ------------------------------------------------------------------ #
    # traffic observers
    # ------------------------------------------------------------------ #
    def add_observer(self, observer: Callable[[np.ndarray], None]) -> None:
        """Register a traffic tap: ``observer(rows)`` with a ``(k, p)`` array.

        Observers see every *answered* query flowing through the service:
        each successfully executed micro-batch's real rows (one call per
        batch, rows in submission order, on the dispatcher thread, before
        the per-row results are delivered), and each successful direct
        :meth:`predict` matrix (on the calling thread).  Rejected submits
        and failed batches are never recorded, so drift windows only ever
        hold traffic the model actually served.  The row arrays are
        read-only views; observers must not block (they sit on the serving
        path) and an observer exception surfaces to the affected callers —
        monitoring is in-process code, failing loudly beats losing the tap.
        """
        with self._observer_lock:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[np.ndarray], None]) -> None:
        """Unregister a previously added traffic tap."""
        with self._observer_lock:
            self._observers.remove(observer)

    def _notify_observers(self, rows: np.ndarray) -> None:
        if not self._observers:
            # Unlocked fast path: the common no-monitor deployment must not
            # pay a lock acquire per query (list truthiness is atomic enough
            # — a racing add_observer only ever misses in-flight rows).
            return
        with self._observer_lock:
            observers = list(self._observers)
        for observer in observers:
            observer(rows)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, covariates: np.ndarray) -> PendingPrediction:
        """Enqueue one unit's covariates; returns a waitable handle.

        Traffic observers are notified by the batcher's post-execution hook,
        not here: a query only enters drift windows once it was answered.
        """
        return self._batcher.submit(self._as_row(covariates))

    def predict_one(
        self, covariates: np.ndarray, timeout: Optional[float] = None
    ) -> Prediction:
        """Blocking single-unit query through the micro-batcher."""
        return self.submit(covariates).result(timeout)

    def predict(self, covariates: np.ndarray) -> EffectEstimate:
        """Direct batched prediction, bypassing the micro-batcher.

        This is the reference path the micro-batched responses are
        bit-identical to; it shares the model lock so it also serialises
        correctly against hot swaps.
        """
        covariates = np.asarray(covariates, dtype=np.float64)
        with self._model_lock:
            estimate = self._learner.predict(covariates)
        # Notify only after a successful prediction, mirroring the batcher
        # hook: queries that were never answered must not enter drift
        # windows.  Observers get a read-only view — the caller's array
        # itself must not be frozen.
        if covariates.ndim == 2 and self._observers:
            readonly = covariates[:]
            readonly.setflags(write=False)
            self._notify_observers(readonly)
        return estimate

    def stats(self) -> ServiceStats:
        """Micro-batching counters (queries, batches, largest batch)."""
        return self._batcher.stats()

    def close(self) -> None:
        """Finish queued work and stop the dispatcher thread."""
        self._batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _learner_features(learner) -> Optional[int]:
        return getattr(learner, "n_features", None)

    def _as_row(self, covariates: np.ndarray) -> np.ndarray:
        row = np.asarray(covariates, dtype=np.float64)
        if row.ndim == 2 and row.shape[0] == 1:
            row = row[0]
        if row.ndim != 1:
            raise ValueError(
                f"a single-unit query must be a 1-D covariate vector "
                f"(or a (1, p) array); got shape {row.shape}"
            )
        expected = self._n_features
        if expected is not None and row.shape[0] != expected:
            raise ValueError(
                f"query has {row.shape[0]} covariates, model expects {expected}"
            )
        # Snapshot the row: the dispatcher reads it later, and a client that
        # reuses one buffer across asynchronous submits must not have queued
        # queries silently follow the buffer's later contents.
        return row.copy()

    def _run_batch(self, stacked: np.ndarray):
        with self._model_lock:
            estimate = self._learner.predict(stacked)
            version = self._model_version
        # ite is elementwise over rows, so per-row results stay bitwise
        # identical to a direct batched predict over the same units.
        return estimate.y0_hat, estimate.y1_hat, estimate.ite_hat, version
