"""Versioned checkpoint registry for continual learners.

In the paper's deployment scenario data arrive over days or from different
subsidiaries; between arrivals only the model and its representation memory
persist.  :class:`ModelRegistry` turns that into a serving lifecycle: every
domain advance of a stream is saved as one immutable version (the ``.npz``
format of :mod:`repro.core.persistence`, written atomically), versions are
listed/loaded by ``(stream, domain_index)``, and a mutable *head* pointer per
stream selects which version serves — rollback moves the pointer without
deleting anything, so a bad model can be undone and later re-promoted.

Layout on disk (one directory per stream under the registry root)::

    <root>/<stream>/manifest.json      # versions + head pointer, atomic JSON
    <root>/<stream>/domain_0000.npz    # one archive per domain advance
    <root>/<stream>/domain_0001.npz

Both the manifest and every archive carry a format version that is checked on
load, so a registry written by a future incompatible layout fails loudly
instead of deserialising garbage.  All mutating operations are atomic on the
filesystem (temp file + ``os.replace``) and serialised by a per-registry lock,
so a registry instance can be shared by serving and training threads.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..core.api import ContinualEstimator
from ..core.persistence import load_estimator, save_estimator
from ..utils import atomic_write

__all__ = ["ModelRegistry", "RegistryEntry"]

_MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"
_STREAM_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class RegistryEntry:
    """One immutable version of one stream's model."""

    stream: str
    domain_index: int
    path: Path
    domains_seen: int
    n_features: int
    metadata: Dict[str, object] = field(default_factory=dict)


class ModelRegistry:
    """Directory-backed store of versioned estimator checkpoints, one per stream.

    Any registered estimator (CERL, the CFR strategies, the meta-learner zoo)
    can be versioned: archives are written by
    :func:`repro.core.persistence.save_estimator`, which stamps the estimator
    kind into the metadata, and restored by
    :func:`~repro.core.persistence.load_estimator`, which rebuilds the right
    class — a stream's consumers never need to know which family it serves.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per stream; created if missing.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def save(
        self,
        stream: str,
        domain_index: int,
        learner: ContinualEstimator,
        metadata: Optional[Dict[str, object]] = None,
    ) -> RegistryEntry:
        """Persist ``learner`` as version ``domain_index`` of ``stream``.

        The archive is written atomically, then the manifest is updated (also
        atomically) to record the version and advance the head pointer to it.
        Saving the same ``(stream, domain_index)`` again overwrites that
        version — the registry keys versions by position in the stream, not
        by wall-clock, so re-running a deployment is idempotent.
        """
        if domain_index < 0:
            raise ValueError("domain_index must be non-negative")
        directory = self._stream_dir(stream)
        directory.mkdir(parents=True, exist_ok=True)
        # The archive write can take a while for a large representation
        # memory; it is already atomic on its own (temp + os.replace), so do
        # it outside the lock and hold the lock only for the manifest
        # read-modify-write.  Serving-side readers never stall on a save.
        # Registry archives are stored uncompressed so shard workers can
        # memory-map them (load(..., mmap_mode='r')) — compressed members have
        # no byte-identical on-disk form to map.
        path = save_estimator(
            learner, directory / f"domain_{domain_index:04d}.npz", compressed=False
        )
        with self._lock:
            manifest = self._read_manifest_locked(stream, missing_ok=True)
            manifest["versions"][str(domain_index)] = {
                "file": path.name,
                "domain_index": domain_index,
                "domains_seen": learner.domains_seen,
                "n_features": learner.n_features,
                "metadata": dict(metadata) if metadata else {},
            }
            manifest["head"] = domain_index
            self._write_manifest_locked(stream, manifest)
        return self._entry_from_record(
            stream, manifest["versions"][str(domain_index)]
        )

    def saver(self, stream: str, learner: ContinualEstimator) -> Callable[[int], Path]:
        """Adapter for :class:`repro.engine.Checkpoint`.

        Returns ``save_fn(domain_index) -> Path`` so the engine's existing
        checkpoint callback can drive save-on-domain-advance::

            checkpointer = Checkpoint(registry.saver("news", learner), every=1)
        """

        def save_fn(domain_index: int) -> Path:
            return self.save(stream, domain_index, learner).path

        return save_fn

    def rollback(self, stream: str, domain_index: int) -> RegistryEntry:
        """Point the stream's head at an existing earlier (or later) version.

        Non-destructive: every version stays on disk, so a rollback can be
        rolled forward again.  Returns the entry now at the head.
        """
        with self._lock:
            manifest = self._read_manifest_locked(stream)
            record = manifest["versions"].get(str(domain_index))
            if record is None:
                raise KeyError(
                    f"stream '{stream}' has no version {domain_index}; "
                    f"available: {self._version_indices(manifest)}"
                )
            manifest["head"] = domain_index
            self._write_manifest_locked(stream, manifest)
        return self._entry_from_record(stream, record)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def streams(self) -> List[str]:
        """Names of all streams with at least one saved version."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / _MANIFEST_NAME).exists()
        )

    def list_versions(self, stream: str) -> List[int]:
        """Sorted domain indices of every saved version of ``stream``."""
        with self._lock:
            return self._version_indices(self._read_manifest_locked(stream))

    def head_version(self, stream: str) -> int:
        """Domain index currently served (the head pointer)."""
        with self._lock:
            return int(self._read_manifest_locked(stream)["head"])

    def entry(self, stream: str, domain_index: Optional[int] = None) -> RegistryEntry:
        """Metadata of one version (default: the head) without loading it."""
        with self._lock:
            manifest = self._read_manifest_locked(stream)
            if domain_index is None:
                domain_index = int(manifest["head"])
            record = manifest["versions"].get(str(domain_index))
            if record is None:
                raise KeyError(
                    f"stream '{stream}' has no version {domain_index}; "
                    f"available: {self._version_indices(manifest)}"
                )
        return self._entry_from_record(stream, record)

    def load(
        self,
        stream: str,
        domain_index: Optional[int] = None,
        mmap_mode: Optional[str] = None,
    ) -> ContinualEstimator:
        """Restore the learner of one version (default: the head).

        ``mmap_mode='r'`` memory-maps the archive's large state zero-copy
        (registry archives are written uncompressed precisely so this works);
        predictions are bit-identical to an eager load, and a held mapping
        keeps serving the old bytes even if the version is atomically
        re-saved.  Shard worker processes load with ``mmap_mode='r'`` so N
        workers share one page-cache copy of each checkpoint.

        The archive's own format version is checked by
        :func:`repro.core.persistence.load_estimator`; a missing file (archive
        deleted behind the manifest's back) raises ``FileNotFoundError``.
        """
        entry = self.entry(stream, domain_index)
        if not entry.path.exists():
            raise FileNotFoundError(
                f"archive for stream '{stream}' version {entry.domain_index} "
                f"is missing on disk: {entry.path}"
            )
        return load_estimator(entry.path, mmap_mode=mmap_mode)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _stream_dir(self, stream: str) -> Path:
        if not _STREAM_NAME_RE.match(stream):
            raise ValueError(
                f"invalid stream name {stream!r}: must match "
                f"{_STREAM_NAME_RE.pattern} (it becomes a directory name)"
            )
        return self.root / stream

    def _entry_from_record(self, stream: str, record: dict) -> RegistryEntry:
        return RegistryEntry(
            stream=stream,
            domain_index=int(record["domain_index"]),
            path=self._stream_dir(stream) / record["file"],
            domains_seen=int(record["domains_seen"]),
            n_features=int(record["n_features"]),
            metadata=dict(record.get("metadata", {})),
        )

    @staticmethod
    def _version_indices(manifest: dict) -> List[int]:
        return sorted(int(key) for key in manifest["versions"])

    def _read_manifest_locked(self, stream: str, missing_ok: bool = False) -> dict:
        path = self._stream_dir(stream) / _MANIFEST_NAME
        if not path.exists():
            if missing_ok:
                return {
                    "format_version": _MANIFEST_VERSION,
                    "stream": stream,
                    "head": None,
                    "versions": {},
                }
            raise FileNotFoundError(
                f"no checkpoints registered for stream '{stream}' under {self.root}"
            )
        manifest = json.loads(path.read_text())
        if manifest.get("format_version") != _MANIFEST_VERSION:
            raise ValueError(
                f"unsupported registry manifest format "
                f"{manifest.get('format_version')!r} for stream '{stream}'; "
                f"expected {_MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest_locked(self, stream: str, manifest: dict) -> None:
        path = self._stream_dir(stream) / _MANIFEST_NAME
        with atomic_write(path) as tmp:
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
