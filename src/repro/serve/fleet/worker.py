"""Shard worker process: one OS process serving a subset of the fleet's streams.

A worker is the out-of-process counterpart of a gateway shard.  It is started
by the :class:`~repro.serve.fleet.manager.FleetManager` with a registry root
and its assigned stream names, and it:

* loads each stream's head checkpoint **zero-copy** from the shared registry
  (``registry.load(stream, mmap_mode='r')``) — N workers mapping the same
  archive share one page-cache copy of the model state;
* serves queries through the exact same workspace-backed
  :class:`~repro.serve.service.PredictionService` micro-batcher the
  in-process gateway uses, so a worker's response is **bitwise identical** to
  the in-process canonical-batch answer for the version it reports;
* speaks the length-prefixed wire protocol of :mod:`.wire` on a loopback TCP
  socket — JSON header + raw float64 payload, no pickle on the hot path.

Requests are pipelined per connection: the connection thread reads frames and
submits them to the micro-batcher without waiting for results, and responses
are written from the batcher's done-callbacks (tagged with the request ``id``,
so they may complete out of order).  Queries from many front-door connections
therefore coalesce into canonical batches exactly as threads do in-process.

Ops (header ``"op"`` field):

``predict``
    ``{"op", "id", "stream", "shape", "dtype"}`` + one-row payload →
    ``result`` frame with a 3-element payload ``[mu0, mu1, ite]`` and the
    serving ``model_version``.
``reload``
    Hot-swap one stream to a registry version (default: head) while every
    other stream keeps serving; replies ``reloaded`` with the new version.
``ping`` / ``stats`` / ``shutdown``
    Liveness, micro-batcher counters, graceful exit.
``chaos``
    Failure injection for the SLO harness: ``{"op": "chaos", "delay_ms": X}``
    installs a per-query straggler delay (0 clears it); replies ``chaos_set``.
    The delay runs through an injectable hook so tests can observe it
    without sleeping.

Any per-request failure is answered with an ``error`` frame carrying the
exception type name and message; the connection — and every other stream —
keeps serving.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..registry import ModelRegistry
from ..service import PredictionService
from .wire import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    WIRE_DTYPE,
    WireError,
    decode_array,
    read_frame,
    write_frame,
)

import numpy as np

__all__ = ["worker_main", "WorkerServer"]


class _Connection:
    """One accepted front-door connection with a serialised writer."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.write_lock = threading.Lock()

    def send(self, header: dict, payload: bytes = b"") -> None:
        with self.write_lock:
            write_frame(self.sock, header, payload)

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self.sock.shutdown(socket.SHUT_RDWR)
        self.sock.close()


class WorkerServer:
    """The in-process body of one shard worker (testable without forking).

    Parameters
    ----------
    registry_root:
        Root directory of the shared :class:`~repro.serve.ModelRegistry`.
    streams:
        Stream names this worker owns; each one's head version is loaded
        (memory-mapped) into its own :class:`PredictionService` at startup.
    max_batch, max_wait_ms:
        Micro-batching knobs — ``max_batch`` is the canonical execution size
        and must match the in-process reference for bitwise parity.
    max_payload:
        Per-frame payload ceiling enforced before allocation.
    delay_hook:
        Called with the installed straggler delay (seconds) before each
        predict submit while a ``chaos`` delay is active.  Defaults to
        ``time.sleep``; injectable so tests can assert the straggler path
        without wall-clock waits.
    """

    def __init__(
        self,
        registry_root: str,
        streams: Tuple[str, ...],
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
        max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
        mmap_mode: Optional[str] = "r",
        delay_hook: Callable[[float], None] = time.sleep,
    ) -> None:
        self.registry = ModelRegistry(registry_root)
        self.max_payload = max_payload
        self.mmap_mode = mmap_mode
        self.services: Dict[str, PredictionService] = {}
        for stream in streams:
            entry = self.registry.entry(stream)
            learner = self.registry.load(
                stream, entry.domain_index, mmap_mode=mmap_mode
            )
            self.services[stream] = PredictionService(
                learner,
                model_version=entry.domain_index,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
            )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._conn_lock = threading.Lock()
        self._connections: list = []  # guarded-by: _conn_lock
        self._threads: list = []
        self._delay_hook = delay_hook
        # Straggler injection (seconds); written by chaos control frames,
        # read by every predict path.  A torn read is impossible for a
        # Python float attribute swap, so no lock — the worst race is one
        # query seeing the delay a frame early or late, which is exactly
        # the tolerance a chaos schedule has anyway.
        self._chaos_delay_s = 0.0

    # ------------------------------------------------------------------ #
    # serving loop
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown`; blocks the caller."""
        try:
            while not self._stop.is_set():
                try:
                    sock, _ = self._listener.accept()
                except OSError:
                    break  # listener closed by shutdown()
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                connection = _Connection(sock)
                with self._conn_lock:
                    self._connections.append(connection)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    name="repro-fleet-conn",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        finally:
            self._close_all()

    def shutdown(self) -> None:
        """Stop accepting, drop connections and drain the micro-batchers."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._listener.close()

    def _close_all(self) -> None:
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        for service in self.services.values():
            service.close()

    # ------------------------------------------------------------------ #
    # per-connection protocol
    # ------------------------------------------------------------------ #
    def _serve_connection(self, connection: _Connection) -> None:
        try:
            while True:
                frame = read_frame(connection.sock, max_payload=self.max_payload)
                if frame is None:
                    break
                header, payload = frame
                self._handle(connection, header, payload)
        except WireError:
            # A malformed or truncated frame poisons only its connection:
            # the peer reconnects, every other connection keeps serving.
            pass
        except OSError:
            pass
        finally:
            connection.close()
            with self._conn_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _handle(self, connection: _Connection, header: dict, payload: bytes) -> None:
        op = header.get("op")
        request_id = header.get("id")
        try:
            if op == "predict":
                self._handle_predict(connection, header, payload)
            elif op == "reload":
                version = self._reload(
                    header["stream"], header.get("domain_index")
                )
                connection.send(
                    {"op": "reloaded", "id": request_id, "model_version": version}
                )
            elif op == "ping":
                connection.send(
                    {
                        "op": "pong",
                        "id": request_id,
                        "pid": os.getpid(),
                        "streams": sorted(self.services),
                    }
                )
            elif op == "stats":
                totals = {"queries": 0, "batches": 0, "largest_batch": 0}
                for service in self.services.values():
                    stats = service.stats()
                    totals["queries"] += stats.queries
                    totals["batches"] += stats.batches
                    totals["largest_batch"] = max(
                        totals["largest_batch"], stats.largest_batch
                    )
                connection.send({"op": "stats", "id": request_id, **totals})
            elif op == "chaos":
                delay_ms = float(header.get("delay_ms", 0.0))
                if delay_ms < 0:
                    raise ValueError("delay_ms must be non-negative")
                self._chaos_delay_s = delay_ms / 1000.0
                connection.send(
                    {"op": "chaos_set", "id": request_id, "delay_ms": delay_ms}
                )
            elif op == "shutdown":
                connection.send({"op": "bye", "id": request_id})
                self.shutdown()
            else:
                raise ValueError(f"unknown op {op!r}")
        except WireError:
            raise  # connection-fatal: handled by the read loop
        except Exception as error:  # answered, not fatal: the worker lives on
            connection.send(
                {
                    "op": "error",
                    "id": request_id,
                    "error": type(error).__name__,
                    "message": str(error),
                }
            )

    def _handle_predict(
        self, connection: _Connection, header: dict, payload: bytes
    ) -> None:
        stream = header.get("stream")
        service = self.services.get(stream)
        if service is None:
            raise KeyError(
                f"stream {stream!r} is not served by this worker "
                f"(owns: {sorted(self.services)})"
            )
        rows = decode_array(header, payload)
        if rows.ndim != 2 or rows.shape[0] != 1:
            raise ValueError(
                f"a predict frame carries exactly one query row; "
                f"got shape {tuple(rows.shape)}"
            )
        request_id = header["id"]
        delay = self._chaos_delay_s
        if delay > 0:
            # Straggler injection: stall on the connection thread, *before*
            # the micro-batcher, so the slow shard delays only its own
            # streams' queries — co-batched tenants on other workers are
            # untouched, which is the isolation property the SLO harness
            # measures.
            self._delay_hook(delay)
        pending = service.submit(rows[0])

        def respond(done) -> None:
            # Runs on the micro-batcher's dispatcher thread after delivery;
            # out-of-order completion is fine — the id pairs it back up.
            # OSError means the peer went away: nothing to deliver to.
            with contextlib.suppress(OSError):
                if done._error is not None:
                    connection.send(
                        {
                            "op": "error",
                            "id": request_id,
                            "error": type(done._error).__name__,
                            "message": str(done._error),
                        }
                    )
                    return
                result = done._result
                answer = np.array(
                    [result.mu0, result.mu1, result.ite], dtype=np.float64
                )
                connection.send(
                    {
                        "op": "result",
                        "id": request_id,
                        "model_version": result.model_version,
                        "shape": [3],
                        "dtype": WIRE_DTYPE,
                    },
                    answer.tobytes(),
                )

        pending.add_done_callback(respond)

    def _reload(self, stream: str, domain_index: Optional[int]) -> int:
        service = self.services.get(stream)
        if service is None:
            raise KeyError(f"stream {stream!r} is not served by this worker")
        entry = self.registry.entry(stream, domain_index)
        learner = self.registry.load(
            stream, entry.domain_index, mmap_mode=self.mmap_mode
        )
        service.swap_model(learner, model_version=entry.domain_index)
        return entry.domain_index


def worker_main(
    registry_root: str,
    streams: Tuple[str, ...],
    conn,
    max_batch: int = 128,
    max_wait_ms: float = 0.0,
    max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES,
) -> None:
    """Process entry point: build a :class:`WorkerServer` and serve forever.

    ``conn`` is the manager's pipe end; the worker performs the startup
    handshake on it — ``("ready", port)`` once listening and loaded, or
    ``("error", message)`` if startup failed — then closes it.  Module-level
    so it is picklable under the ``spawn`` start method.
    """
    try:
        server = WorkerServer(
            registry_root,
            tuple(streams),
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_payload=max_payload,
        )
    except Exception as error:
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        raise
    conn.send(("ready", server.port))
    conn.close()
    server.serve_forever()
