"""Out-of-process shard fleet: multiprocess workers behind an asyncio front door.

The in-process :class:`~repro.serve.ServingGateway` scales to the thread
limit of one interpreter; this package crosses the process boundary while
keeping every serving contract intact:

* :mod:`.wire` — the pickle-free length-prefixed protocol (JSON header + raw
  float64 payload) with typed errors and before-allocation size limits;
* :mod:`.worker` — the shard worker process: memory-mapped checkpoint loads,
  the same canonical-batch micro-batcher as in-process serving (bitwise
  identity across the boundary), pipelined per-connection request handling;
* :mod:`.manager` — fleet lifecycle: spawn/drain/restart/kill worker
  processes with digest-stable stream assignment;
* :mod:`.frontdoor` — :class:`MultiprocGateway`, the asyncio front door:
  connection pooling, pipelining, the bitwise-transparent response cache,
  and per-tenant rate limits/quotas with typed shedding.
"""

from .frontdoor import (
    FleetError,
    MultiprocGateway,
    QuotaExceeded,
    RateLimited,
    RemoteError,
    RemoteStreamHandle,
    TenantPolicy,
    WorkerUnavailable,
)
from .manager import FleetManager, WorkerHandle
from .wire import (
    DEFAULT_MAX_PAYLOAD_BYTES,
    MAX_HEADER_BYTES,
    WIRE_DTYPE,
    FrameTooLarge,
    ProtocolError,
    TruncatedFrame,
    WireError,
    decode_array,
    encode_rows,
    read_frame,
    write_frame,
)
from .worker import WorkerServer, worker_main

__all__ = [
    "DEFAULT_MAX_PAYLOAD_BYTES",
    "FleetError",
    "FleetManager",
    "FrameTooLarge",
    "MAX_HEADER_BYTES",
    "MultiprocGateway",
    "ProtocolError",
    "QuotaExceeded",
    "RateLimited",
    "RemoteError",
    "RemoteStreamHandle",
    "TenantPolicy",
    "TruncatedFrame",
    "WIRE_DTYPE",
    "WireError",
    "WorkerHandle",
    "WorkerServer",
    "WorkerUnavailable",
    "decode_array",
    "encode_rows",
    "read_frame",
    "worker_main",
    "write_frame",
]
