"""Fleet lifecycle: spawn, restart, drain and address shard worker processes.

:class:`FleetManager` owns the OS processes of the fleet.  Streams are
assigned to workers with the same SHA-256 digest routing the in-process
gateway uses (:class:`~repro.serve.gateway.ShardRouter`), so a stream lands
on the same worker index in every process and across restarts.

Start method defaults to ``spawn``: the manager lives in a threaded serving
process (front-door pools, micro-batchers), and forking a threaded parent can
inherit locks mid-acquisition — ``spawn`` sidesteps the whole class of
deadlocks at the cost of a slower start.

Each worker start performs a pipe handshake: the child sends
``("ready", port)`` once it is listening *and* its streams' checkpoints are
loaded, so :meth:`start` returning means the fleet is serving.  Workers are
daemonic — an abandoned manager cannot leak serving processes past its own
exit.

:meth:`kill` (SIGKILL, no drain) exists deliberately: the failure-injection
experiment uses it to prove that losing one worker neither stalls nor
corrupts any other tenant, and :meth:`restart` brings the dead shard back on
a fresh port (the front door re-resolves addresses through
:meth:`endpoint_for`).
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..gateway import ShardRouter
from .wire import read_frame, write_frame
from .worker import worker_main

__all__ = ["FleetManager", "WorkerHandle"]


@dataclass
class WorkerHandle:
    """Book-keeping for one worker process slot."""

    index: int
    streams: Tuple[str, ...]
    process: Optional[mp.process.BaseProcess] = None
    port: Optional[int] = None
    #: Bumped on every (re)start; lets the front door detect stale sockets.
    generation: int = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class FleetManager:
    """Spawn and supervise one worker process per shard.

    Parameters
    ----------
    registry_root:
        Root of the shared :class:`~repro.serve.ModelRegistry`; every worker
        opens its own handle onto it (processes share no Python state, only
        the checkpoint files — which they memory-map).
    streams:
        All stream names the fleet serves; digest-partitioned across workers.
    n_workers:
        Worker process count (streams may share a worker, exactly as streams
        share a shard in-process).
    max_batch, max_wait_ms, max_payload:
        Forwarded to every worker's services / wire limits.
    start_method:
        ``multiprocessing`` start method; default ``"spawn"`` (see module
        docstring).
    startup_timeout_s:
        Per-worker ready-handshake deadline.
    """

    def __init__(
        self,
        registry_root: Union[str, Path],
        streams: Sequence[str],
        n_workers: int = 2,
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
        max_payload: Optional[int] = None,
        start_method: str = "spawn",
        startup_timeout_s: float = 60.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if not streams:
            raise ValueError("a fleet needs at least one stream")
        self.registry_root = str(registry_root)
        self.router = ShardRouter(n_workers)
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_payload = max_payload
        self.startup_timeout_s = startup_timeout_s
        self._ctx = mp.get_context(start_method)
        assignments: Dict[int, List[str]] = {index: [] for index in range(n_workers)}
        for stream in streams:
            assignments[self.router.shard_for(stream)].append(stream)
        self.workers: List[WorkerHandle] = [
            WorkerHandle(index=index, streams=tuple(assignments[index]))
            for index in range(n_workers)
        ]
        self._started = False

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self.router.n_shards

    def worker_for(self, stream: str) -> int:
        """Worker index serving ``stream`` (pure digest function of the key)."""
        return self.router.shard_for(stream)

    def endpoint_for(self, stream: str) -> Tuple[str, int]:
        """Current ``(host, port)`` of the worker owning ``stream``."""
        handle = self.workers[self.worker_for(stream)]
        if handle.port is None:
            raise RuntimeError(f"worker {handle.index} has not been started")
        return ("127.0.0.1", handle.port)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn every worker; returns once all report ready (and serving)."""
        if self._started:
            return
        for handle in self.workers:
            if handle.streams:
                self._spawn(handle)
        self._started = True

    def _spawn(self, handle: WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        kwargs = {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
        }
        if self.max_payload is not None:
            kwargs["max_payload"] = self.max_payload
        process = self._ctx.Process(
            target=worker_main,
            args=(self.registry_root, handle.streams, child_conn),
            kwargs=kwargs,
            name=f"repro-fleet-worker-{handle.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.startup_timeout_s):
            process.terminate()
            raise TimeoutError(
                f"worker {handle.index} did not report ready within "
                f"{self.startup_timeout_s:.0f}s"
            )
        status, value = parent_conn.recv()
        parent_conn.close()
        if status != "ready":
            process.join(timeout=5.0)
            raise RuntimeError(f"worker {handle.index} failed to start: {value}")
        handle.process = process
        handle.port = int(value)
        handle.generation += 1

    def kill(self, index: int) -> None:
        """SIGKILL one worker — no drain, no goodbye (failure injection)."""
        handle = self.workers[index]
        if handle.process is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=10.0)

    def restart(self, index: int) -> int:
        """(Re)spawn one worker slot on a fresh port; returns the new port.

        The other workers are untouched — their streams keep serving while
        this shard reloads its checkpoints (hot restart).
        """
        handle = self.workers[index]
        if not handle.streams:
            raise ValueError(f"worker {index} has no assigned streams")
        if handle.process is not None and handle.process.is_alive():
            self._graceful_stop(handle)
        self._spawn(handle)
        return handle.port

    def stop(self) -> None:
        """Gracefully stop every live worker (shutdown op, then join/kill)."""
        for handle in self.workers:
            if handle.process is None:
                continue
            if handle.process.is_alive():
                self._graceful_stop(handle)
            handle.process = None
            handle.port = None
        self._started = False

    def _graceful_stop(self, handle: WorkerHandle) -> None:
        with contextlib.suppress(OSError), socket.create_connection(
            ("127.0.0.1", handle.port), timeout=5.0
        ) as sock:
            write_frame(sock, {"op": "shutdown", "id": 0})
            read_frame(sock)  # the "bye" ack; best-effort
        handle.process.join(timeout=10.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=10.0)

    # ------------------------------------------------------------------ #
    # liveness
    # ------------------------------------------------------------------ #
    def alive(self) -> List[bool]:
        """Per-worker liveness snapshot."""
        return [handle.alive for handle in self.workers]

    def wait_port(self, index: int, timeout_s: float = 10.0) -> int:
        """Block until worker ``index`` accepts connections; returns its port."""
        handle = self.workers[index]
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if handle.port is not None:
                with contextlib.suppress(OSError), socket.create_connection(
                    ("127.0.0.1", handle.port), timeout=1.0
                ):
                    return handle.port
            time.sleep(0.05)
        raise TimeoutError(f"worker {index} did not become reachable")

    def __enter__(self) -> "FleetManager":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
