"""Asyncio front door over a fleet of out-of-process shard workers.

:class:`MultiprocGateway` is the process-fleet counterpart of
:class:`~repro.serve.gateway.ServingGateway`: the same digest routing, the
same bitwise-transparent TTL+LRU response cache, the same typed admission
control and :class:`~repro.serve.gateway.GatewayStats` — but the models live
in worker *processes* (spawned by :class:`~.manager.FleetManager`), reached
over loopback sockets with the pickle-free wire protocol of :mod:`.wire`.

Concurrency model: callers stay synchronous (``submit`` returns the familiar
:class:`~repro.serve.service.PendingPrediction`), while all socket I/O runs
on one background asyncio event loop.  Each worker gets a small **connection
pool**, and requests are **pipelined**: a connection carries many in-flight
queries at once, tagged with request ids, so responses may return out of
order and the worker's micro-batcher can coalesce queries from every tenant
into canonical batches.  One stalled tenant therefore never serialises the
fleet — and one *dead* worker fails only its own streams' queries (typed
:class:`WorkerUnavailable`) while every other tenant keeps answering.

Admission control grows a per-tenant dimension over PR 5's per-shard bound:

* per-worker in-flight bound → :class:`~repro.serve.gateway.Overloaded`
  (unchanged semantics: shed before any socket write);
* per-tenant token-bucket **rate limit** → :class:`RateLimited` (carries
  ``retry_after_s``);
* per-tenant lifetime **quota** → :class:`QuotaExceeded`.

Tenant shedding happens before cache misses reach a worker; cache *hits* are
served for free (they consume no worker capacity, which is what the limits
protect).  All shed queries count into the owning shard's ``shed`` total.

Hot swaps ride the same contract as in-process serving: ``reload(stream)``
asks the owning worker to re-load a registry version while its other streams
keep serving, and :meth:`service` returns a handle duck-typed to
``PredictionService.reload`` so the existing
:class:`~repro.monitor.AdaptationController` drives a multi-process fleet
unchanged.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import hashlib
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..cache import TTLLRUCache
from ..gateway import GatewayStats, Overloaded, ShardStats
from ..service import PendingPrediction, Prediction, ServiceStats
from .manager import FleetManager
from .wire import (
    WIRE_DTYPE,
    decode_array,
    read_frame_async,
    write_frame_async,
)

__all__ = [
    "FleetError",
    "MultiprocGateway",
    "QuotaExceeded",
    "RateLimited",
    "RemoteError",
    "TenantPolicy",
    "WorkerUnavailable",
]


class FleetError(RuntimeError):
    """Base class of front-door fleet failures."""


class RateLimited(FleetError):
    """A query shed by its tenant's token-bucket rate limit."""

    def __init__(self, stream: str, rate_qps: float, retry_after_s: float) -> None:
        super().__init__(
            f"stream '{stream}' exceeded its rate limit of {rate_qps:g} qps; "
            f"retry in {retry_after_s:.3f}s"
        )
        self.stream = stream
        self.rate_qps = rate_qps
        self.retry_after_s = retry_after_s


class QuotaExceeded(FleetError):
    """A query shed because its tenant's lifetime quota is spent."""

    def __init__(self, stream: str, quota: int, admitted: int) -> None:
        super().__init__(
            f"stream '{stream}' exhausted its quota of {quota} queries "
            f"({admitted} admitted)"
        )
        self.stream = stream
        self.quota = quota
        self.admitted = admitted


class WorkerUnavailable(FleetError):
    """The worker owning the stream is unreachable (dead or restarting)."""

    def __init__(self, worker_index: int, reason: str) -> None:
        super().__init__(f"worker {worker_index} is unavailable: {reason}")
        self.worker_index = worker_index
        self.reason = reason


class RemoteError(FleetError):
    """A worker answered with an error frame (the failure stayed remote)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.remote_message = message


@dataclass(frozen=True)
class TenantPolicy:
    """Per-stream admission policy enforced at the front door.

    Parameters
    ----------
    rate_qps:
        Sustained admission rate (token bucket, refilled continuously);
        ``None`` disables rate limiting for the tenant.
    burst:
        Bucket capacity — how many queries may be admitted back-to-back
        before the rate applies.  Defaults to ``max(1, round(rate_qps))``.
    quota:
        Lifetime cap on admitted (worker-reaching) queries; ``None`` means
        unlimited.
    """

    rate_qps: Optional[float] = None
    burst: Optional[int] = None
    quota: Optional[int] = None

    def bucket_capacity(self) -> float:
        if self.burst is not None:
            return float(self.burst)
        if self.rate_qps is None:
            return float("inf")
        return float(max(1, round(self.rate_qps)))


class _TenantState:
    """Mutable token bucket + quota counter for one stream."""

    __slots__ = ("policy", "tokens", "last_refill", "admitted", "lock")

    def __init__(self, policy: TenantPolicy, now: float) -> None:
        self.policy = policy
        self.tokens = policy.bucket_capacity()  # guarded-by: lock
        self.last_refill = now  # guarded-by: lock
        self.admitted = 0
        self.lock = threading.Lock()

    def admit(self, stream: str, now: float) -> None:
        """Admit one query or raise the matching typed shed error."""
        policy = self.policy
        with self.lock:
            if policy.quota is not None and self.admitted >= policy.quota:
                raise QuotaExceeded(stream, policy.quota, self.admitted)
            if policy.rate_qps is not None:
                capacity = policy.bucket_capacity()
                self.tokens = min(
                    capacity, self.tokens + (now - self.last_refill) * policy.rate_qps
                )
                self.last_refill = now
                if self.tokens < 1.0:
                    raise RateLimited(
                        stream, policy.rate_qps, (1.0 - self.tokens) / policy.rate_qps
                    )
                self.tokens -= 1.0
            self.admitted += 1


class _WorkerShard:
    """Front-door accounting for one worker: counters and response cache."""

    __slots__ = (
        "index",
        "lock",
        "in_flight",
        "answered",
        "shed",
        "latency_s",
        "latency_samples",
        "cache",
    )

    def __init__(self, index: int, cache: TTLLRUCache) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.in_flight = 0
        self.answered = 0
        self.shed = 0
        self.latency_s = 0.0
        self.latency_samples = 0
        self.cache = cache


class _Request:
    """One in-flight request on one connection (predict or control)."""

    __slots__ = ("kind", "stream", "key", "start", "pending", "shard", "future")

    def __init__(
        self,
        kind: str,
        stream: Optional[str] = None,
        key=None,
        start: float = 0.0,
        pending: Optional[PendingPrediction] = None,
        shard: Optional[_WorkerShard] = None,
        future: Optional[concurrent.futures.Future] = None,
    ) -> None:
        self.kind = kind
        self.stream = stream
        self.key = key
        self.start = start
        self.pending = pending
        self.shard = shard
        self.future = future


class _Connection:
    """One pooled socket to a worker, carrying pipelined tagged requests."""

    __slots__ = ("reader", "writer", "pending", "next_id", "reader_task", "dead")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Dict[int, _Request] = {}
        self.next_id = 0
        self.reader_task: Optional[asyncio.Task] = None
        self.dead = False


class _WorkerClient:
    """Loop-side connection pool for one worker (round-robin, lazy dial)."""

    __slots__ = ("index", "pool_size", "connections", "rr", "dial_lock")

    def __init__(self, index: int, pool_size: int) -> None:
        self.index = index
        self.pool_size = pool_size
        self.connections: List[_Connection] = []
        self.rr = 0
        self.dial_lock = asyncio.Lock()


class MultiprocGateway:
    """Serve many tenants from a fleet of out-of-process shard workers.

    Parameters
    ----------
    registry_root:
        Shared :class:`~repro.serve.ModelRegistry` root the workers load
        (memory-mapped) checkpoints from.
    streams:
        Every stream the fleet serves (digest-assigned to workers up front —
        out-of-process spin-up is eager, not lazy, so a worker's readiness
        covers all its tenants).
    n_workers:
        Worker process count.
    max_batch, max_wait_ms:
        Canonical micro-batching knobs forwarded to every worker; must match
        the in-process reference for bitwise parity.
    pool_size:
        Sockets per worker; each carries pipelined tagged requests.
    max_pending_per_worker:
        Admission bound on in-flight queries per worker (None = unbounded).
    cache_capacity, cache_ttl_s:
        Per-worker-shard response cache (same bitwise-transparency contract
        as the in-process gateway: keys are ``(stream, version, row digest)``
        and every fill keys by the version the response actually reports).
    tenant_policies:
        Optional ``{stream: TenantPolicy}`` per-tenant rate limits / quotas.
    manager:
        Pre-built :class:`FleetManager` (the gateway then does not own its
        lifecycle knobs); default builds one from the parameters above.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        registry_root: Optional[Union[str, Path]] = None,
        streams: Optional[Sequence[str]] = None,
        n_workers: int = 2,
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
        pool_size: int = 2,
        max_pending_per_worker: Optional[int] = None,
        cache_capacity: int = 1024,
        cache_ttl_s: Optional[float] = None,
        tenant_policies: Optional[Dict[str, TenantPolicy]] = None,
        manager: Optional[FleetManager] = None,
        start_method: str = "spawn",
        connect_timeout_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if manager is None:
            if registry_root is None or not streams:
                raise ValueError(
                    "provide registry_root and streams, or a prepared manager"
                )
            manager = FleetManager(
                registry_root,
                streams,
                n_workers=n_workers,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                start_method=start_method,
            )
        if pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if max_pending_per_worker is not None and max_pending_per_worker < 1:
            raise ValueError("max_pending_per_worker must be at least 1 (or None)")
        self.manager = manager
        self._max_pending = max_pending_per_worker
        self._pool_size = pool_size
        self._connect_timeout = connect_timeout_s
        self._clock = clock
        self._closed = False
        self._close_lock = threading.Lock()
        self._shards = [
            _WorkerShard(i, TTLLRUCache(cache_capacity, ttl_s=cache_ttl_s, clock=clock))
            for i in range(manager.n_workers)
        ]
        self._tenants: Dict[str, _TenantState] = {}
        self._tenant_lock = threading.Lock()
        self._policies = dict(tenant_policies or {})
        #: Advisory version per stream for cache lookups; fills key by the
        #: version each response actually reports (same contract as PR 5).
        self._versions: Dict[str, Optional[int]] = {}
        self._started = clock()

        self.manager.start()
        self._loop = asyncio.new_event_loop()
        self._clients = [
            _WorkerClient(i, pool_size) for i in range(manager.n_workers)
        ]
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-fleet-frontdoor", daemon=True
        )
        self._loop_thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()
        # Drain callbacks scheduled during shutdown, then close.
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self.manager.n_workers

    def worker_for(self, stream: str) -> int:
        """Worker index serving ``stream`` (deterministic across processes)."""
        return self.manager.worker_for(stream)

    def streams(self) -> List[str]:
        """Streams the fleet serves, sorted."""
        return sorted(
            stream for handle in self.manager.workers for stream in handle.streams
        )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, stream: str, covariates: np.ndarray) -> PendingPrediction:
        """Enqueue one unit's query; returns a waitable handle.

        Shedding is typed and side-effect-free, in evaluation order: cache
        hit (free), :class:`QuotaExceeded` / :class:`RateLimited` (tenant),
        :class:`Overloaded` (worker bound).  A shed query never touches a
        socket.  A dead worker resolves the handle with
        :class:`WorkerUnavailable` instead of stalling it.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed MultiprocGateway")
        index = self.worker_for(stream)
        shard = self._shards[index]
        row = self._as_row(covariates)
        digest = None
        if shard.cache.capacity:
            # The digest is computed even before any version is known: the
            # first response will report its version and fill the cache, so
            # a stream's very first repeated row already hits on round two.
            digest = hashlib.sha256(row.tobytes()).digest()
            version = self._versions.get(stream)
            if version is not None:
                cached = shard.cache.get((stream, version, digest))
                if cached is not None:
                    with shard.lock:
                        shard.answered += 1
                    pending = PendingPrediction()
                    pending._set_result(cached)
                    return pending
        policy = self._policies.get(stream)
        if policy is not None:
            try:
                self._tenant_state(stream, policy).admit(stream, self._clock())
            except FleetError:
                with shard.lock:
                    shard.shed += 1
                raise
        if self._max_pending is not None:
            with shard.lock:
                if shard.in_flight >= self._max_pending:
                    shard.shed += 1
                    raise Overloaded(stream, index, shard.in_flight, self._max_pending)
                shard.in_flight += 1
        else:
            with shard.lock:
                shard.in_flight += 1
        pending = PendingPrediction()
        request = _Request(
            "predict",
            stream=stream,
            key=digest,
            start=self._clock(),
            pending=pending,
            shard=shard,
        )
        asyncio.run_coroutine_threadsafe(
            self._dispatch(index, request, row), self._loop
        )
        return pending

    def predict_one(
        self, stream: str, covariates: np.ndarray, timeout: Optional[float] = None
    ) -> Prediction:
        """Blocking single-unit query (cache → admission → worker socket)."""
        return self.submit(stream, covariates).result(timeout)

    def _tenant_state(self, stream: str, policy: TenantPolicy) -> _TenantState:
        state = self._tenants.get(stream)
        if state is None:
            with self._tenant_lock:
                state = self._tenants.get(stream)
                if state is None:
                    state = _TenantState(policy, self._clock())
                    self._tenants[stream] = state
        return state

    @staticmethod
    def _as_row(covariates: np.ndarray) -> np.ndarray:
        """Canonical float64 1-D row (digest identity — matches the gateway)."""
        row = np.ascontiguousarray(covariates, dtype=np.float64)
        if row.ndim == 2 and row.shape[0] == 1:
            row = row[0]
        if row.ndim != 1:
            raise ValueError(
                f"a single-unit query must be a 1-D covariate vector "
                f"(or a (1, p) array); got shape {row.shape}"
            )
        return row

    # ------------------------------------------------------------------ #
    # loop side: dispatch, pooling, pipelined reads
    # ------------------------------------------------------------------ #
    async def _dispatch(self, index: int, request: _Request, row: np.ndarray) -> None:
        try:
            connection = await self._connection(index)
            request_id = connection.next_id
            connection.next_id += 1
            connection.pending[request_id] = request
            rows = row.reshape(1, -1)
            write_frame_async(
                connection.writer,
                {
                    "op": "predict",
                    "id": request_id,
                    "stream": request.stream,
                    "shape": [1, rows.shape[1]],
                    "dtype": WIRE_DTYPE,
                },
                rows.tobytes(),
            )
            await connection.writer.drain()
        except (FleetError, OSError, asyncio.TimeoutError) as error:
            self._resolve_error(request, self._unavailable(index, error))
        except Exception as error:  # pragma: no cover - defensive
            self._resolve_error(request, error)

    async def _dispatch_control(self, index: int, header: dict, request: _Request) -> None:
        try:
            connection = await self._connection(index)
            request_id = connection.next_id
            connection.next_id += 1
            connection.pending[request_id] = request
            write_frame_async(connection.writer, {**header, "id": request_id})
            await connection.writer.drain()
        except (FleetError, OSError, asyncio.TimeoutError) as error:
            if not request.future.done():
                request.future.set_exception(self._unavailable(index, error))

    def _unavailable(self, index: int, error: BaseException) -> WorkerUnavailable:
        if isinstance(error, WorkerUnavailable):
            return error
        return WorkerUnavailable(index, f"{type(error).__name__}: {error}")

    async def _connection(self, index: int) -> _Connection:
        client = self._clients[index]
        live = [c for c in client.connections if not c.dead]
        if len(live) < client.pool_size:
            async with client.dial_lock:
                client.connections = [c for c in client.connections if not c.dead]
                if len(client.connections) < client.pool_size:
                    handle = self.manager.workers[index]
                    if handle.port is None:
                        raise WorkerUnavailable(index, "worker is not running")
                    try:
                        reader, writer = await asyncio.wait_for(
                            asyncio.open_connection("127.0.0.1", handle.port),
                            timeout=self._connect_timeout,
                        )
                    except (OSError, asyncio.TimeoutError) as error:
                        raise self._unavailable(index, error) from error
                    connection = _Connection(reader, writer)
                    connection.reader_task = self._loop.create_task(
                        self._read_responses(index, connection)
                    )
                    client.connections.append(connection)
                live = [c for c in client.connections if not c.dead]
        if not live:
            raise WorkerUnavailable(index, "no live connections")
        client.rr = (client.rr + 1) % len(live)
        return live[client.rr]

    async def _read_responses(self, index: int, connection: _Connection) -> None:
        try:
            while True:
                frame = await read_frame_async(connection.reader)
                if frame is None:
                    break
                header, payload = frame
                self._deliver(connection, header, payload)
        except (Exception, asyncio.CancelledError):
            pass
        finally:
            connection.dead = True
            with contextlib.suppress(Exception):
                connection.writer.close()
            failed, connection.pending = connection.pending, {}
            for request in failed.values():
                self._fail_request(
                    request, WorkerUnavailable(index, "connection lost mid-request")
                )

    def _deliver(self, connection: _Connection, header: dict, payload: bytes) -> None:
        request = connection.pending.pop(header.get("id"), None)
        if request is None:
            return  # late response for an already-failed request
        op = header.get("op")
        if request.kind == "predict":
            if op == "result":
                values = decode_array(header, payload)
                version = header.get("model_version")
                result = Prediction(
                    mu0=float(values[0]),
                    mu1=float(values[1]),
                    ite=float(values[2]),
                    model_version=version,
                )
                self._resolve_result(request, result)
            elif op == "error":
                self._resolve_error(
                    request, RemoteError(header.get("error", "Error"), header.get("message", ""))
                )
            else:
                self._resolve_error(
                    request, RemoteError("ProtocolError", f"unexpected op {op!r}")
                )
        else:
            if op == "error":
                if not request.future.done():
                    request.future.set_exception(
                        RemoteError(header.get("error", "Error"), header.get("message", ""))
                    )
            elif not request.future.done():
                request.future.set_result(header)

    def _fail_request(self, request: _Request, error: BaseException) -> None:
        if request.kind == "predict":
            self._resolve_error(request, error)
        elif not request.future.done():
            request.future.set_exception(error)

    def _resolve_result(self, request: _Request, result: Prediction) -> None:
        shard = request.shard
        elapsed = self._clock() - request.start
        with shard.lock:
            shard.in_flight -= 1
            shard.answered += 1
            shard.latency_s += elapsed
            shard.latency_samples += 1
        if result.model_version is not None:
            # Advisory hint for future lookups; fills key by the reported
            # version, so a swap between lookup and execution only costs a
            # miss, never a wrong answer.
            self._versions[request.stream] = result.model_version
            if request.key is not None:
                shard.cache.put(
                    (request.stream, result.model_version, request.key), result
                )
        request.pending._set_result(result)

    def _resolve_error(self, request: _Request, error: BaseException) -> None:
        with request.shard.lock:
            request.shard.in_flight -= 1
        request.pending._set_error(error)

    # ------------------------------------------------------------------ #
    # control plane: reload, lifecycle, stats
    # ------------------------------------------------------------------ #
    def _control(self, index: int, header: dict, timeout: float = 30.0) -> dict:
        future: concurrent.futures.Future = concurrent.futures.Future()
        request = _Request("control", future=future)
        asyncio.run_coroutine_threadsafe(
            self._dispatch_control(index, header, request), self._loop
        )
        return future.result(timeout)

    def reload(self, stream: str, domain_index: Optional[int] = None) -> int:
        """Hot-swap one stream to a registry version (default: the head).

        Only the owning worker reloads; its other streams and every other
        worker keep serving throughout.  The returned version becomes the
        stream's cache-key version, making all older answers unreachable.
        """
        index = self.worker_for(stream)
        header = {"op": "reload", "stream": stream}
        if domain_index is not None:
            header["domain_index"] = domain_index
        response = self._control(index, header)
        version = int(response["model_version"])
        self._versions[stream] = version
        return version

    def service(self, stream: str) -> "RemoteStreamHandle":
        """Duck-typed hot-swap hook for :class:`~repro.monitor.AdaptationController`.

        The returned handle implements ``reload(registry, stream,
        domain_index=None) -> int`` with the same signature as
        :class:`~repro.serve.service.PredictionService`, so the existing
        controller can accept/rollback adaptations on an out-of-process
        fleet without modification.
        """
        return RemoteStreamHandle(self, stream)

    def ping(self, index: int, timeout: float = 10.0) -> dict:
        """Liveness probe of one worker (its pid and served streams)."""
        return self._control(index, {"op": "ping"}, timeout=timeout)

    def set_worker_delay(self, index: int, delay_ms: float, timeout: float = 10.0) -> dict:
        """Install (or clear, with 0) a straggler delay on one worker.

        Chaos control for the SLO harness: the worker stalls each predict by
        ``delay_ms`` before batching, making it a slow shard while every
        other worker keeps its latency — the injection is per-process, so
        the blast radius is exactly the worker's own streams.
        """
        if delay_ms < 0:
            raise ValueError("delay_ms must be non-negative")
        return self._control(
            index, {"op": "chaos", "delay_ms": float(delay_ms)}, timeout=timeout
        )

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker (failure injection); its queries fail typed."""
        self.manager.kill(index)

    def restart_worker(self, index: int) -> int:
        """Restart one worker slot and reconnect; returns the new port."""
        asyncio.run_coroutine_threadsafe(
            self._reset_client(index), self._loop
        ).result(timeout=30.0)
        port = self.manager.restart(index)
        return port

    async def _reset_client(self, index: int) -> None:
        client = self._clients[index]
        connections, client.connections = client.connections, []
        for connection in connections:
            connection.dead = True
            if connection.reader_task is not None:
                connection.reader_task.cancel()
            with contextlib.suppress(Exception):
                connection.writer.close()
            failed, connection.pending = connection.pending, {}
            for request in failed.values():
                self._fail_request(
                    request, WorkerUnavailable(index, "worker restarting")
                )

    def stats(self, include_worker_stats: bool = True) -> GatewayStats:
        """Fleet-wide :class:`GatewayStats` (same shape as the in-process gateway).

        ``service`` counters come from the workers' own micro-batchers over
        the control channel, best-effort: a dead worker contributes zeros
        rather than failing the snapshot.
        """
        uptime = self._clock() - self._started
        snapshots = []
        for shard in self._shards:
            handle = self.manager.workers[shard.index]
            with shard.lock:
                answered = shard.answered
                shed = shard.shed
                in_flight = shard.in_flight
                latency_s = shard.latency_s
                latency_samples = shard.latency_samples
            service_totals = ServiceStats(0, 0, 0)
            if include_worker_stats and handle.alive:
                with contextlib.suppress(Exception):
                    response = self._control(shard.index, {"op": "stats"}, timeout=5.0)
                    service_totals = ServiceStats(
                        queries=int(response.get("queries", 0)),
                        batches=int(response.get("batches", 0)),
                        largest_batch=int(response.get("largest_batch", 0)),
                    )
            snapshots.append(
                ShardStats(
                    index=shard.index,
                    streams=handle.streams,
                    answered=answered,
                    shed=shed,
                    in_flight=in_flight,
                    capacity=self._max_pending or 0,
                    latency_s=latency_s,
                    latency_samples=latency_samples,
                    uptime_s=uptime,
                    cache=shard.cache.stats(),
                    service=service_totals,
                )
            )
        return GatewayStats(shards=tuple(snapshots))

    def close(self) -> None:
        """Fail in-flight work, stop the loop, and stop the worker fleet."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for index in range(self.n_workers):
            with contextlib.suppress(Exception):
                asyncio.run_coroutine_threadsafe(
                    self._reset_client(index), self._loop
                ).result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=10.0)
        self.manager.stop()

    def __enter__(self) -> "MultiprocGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteStreamHandle:
    """``PredictionService``-shaped hot-swap handle for one fleet stream."""

    def __init__(self, gateway: MultiprocGateway, stream: str) -> None:
        self._gateway = gateway
        self.stream = stream

    def reload(self, registry, stream: Optional[str] = None, domain_index: Optional[int] = None) -> int:
        """Hot-swap to a registry version (default head); returns its index.

        ``registry`` is accepted for signature compatibility with
        :meth:`PredictionService.reload` but the *worker's* registry handle
        (opened on the same root) performs the load — model bytes never
        cross the control socket.
        """
        target = stream if stream is not None else self.stream
        if target != self.stream:
            raise ValueError(
                f"handle is bound to stream '{self.stream}'; got '{target}'"
            )
        return self._gateway.reload(self.stream, domain_index)

    @property
    def version_hint(self) -> Optional[int]:
        """Last version observed in this stream's responses or reloads."""
        return self._gateway._versions.get(self.stream)
