"""Length-prefixed wire protocol between the front door and shard workers.

The fleet crosses a process boundary on every query, so the encoding *is* the
hot path.  The protocol is deliberately primitive — no pickle, no schema
library, nothing that could smuggle Python objects across the socket:

* every frame is ``[u32 header length][u32 payload length][header][payload]``
  (big-endian prefix);
* the **header** is a small UTF-8 JSON object (the op, the stream, the array
  shape/dtype, the model version) — cheap to build, cheap to parse, and safe
  to log;
* the **payload** is the raw bytes of one C-contiguous float64 ndarray.  The
  sender writes ``array.data`` straight to the socket; the receiver rebuilds
  with ``np.frombuffer(...).reshape(shape)`` — a zero-copy, read-only view of
  the received buffer.  Bitwise identity across the boundary is therefore
  trivial: the eight bytes of every float are forwarded verbatim.

Both sides **normalise rows identically** before they touch the wire or a
model: :func:`encode_rows` coerces any accepted input (lists, float32,
non-contiguous slices, 1-D vectors) to a C-contiguous float64 ``(n, p)``
array, and the receiving side *rejects* any payload that does not declare
exactly that layout (:class:`ProtocolError`), instead of silently reinterpreting
bytes.  A query row is thus bit-identical on both sides of the socket no
matter which side a test inspects.

Defensive limits are enforced **before allocation**: the fixed 8-byte prefix
is read first, and a declared header/payload size beyond the limit raises
:class:`FrameTooLarge` without reading — a malformed or hostile peer cannot
make a worker allocate an arbitrary buffer.  A connection that dies mid-frame
raises :class:`TruncatedFrame` (mid-header and mid-payload look the same to
the reader: fewer bytes than declared), while a clean EOF *between* frames is
returned as ``None`` — the normal end of a conversation.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_MAX_PAYLOAD_BYTES",
    "FrameTooLarge",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "TruncatedFrame",
    "WireError",
    "WIRE_DTYPE",
    "decode_array",
    "encode_rows",
    "read_frame",
    "read_frame_async",
    "write_frame",
]

_PREFIX = struct.Struct(">II")

#: Headers are tiny JSON objects; anything bigger is a protocol violation.
MAX_HEADER_BYTES = 64 * 1024

#: Default ceiling for one frame's ndarray payload (64 MiB ≈ an 8e6 x 1
#: float64 batch — far beyond any canonical batch this repo serves).
DEFAULT_MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

#: The only dtype that crosses the wire (little-endian float64).
WIRE_DTYPE = "<f8"


class WireError(RuntimeError):
    """Base class of every wire-protocol failure."""


class TruncatedFrame(WireError):
    """The connection ended mid-frame (mid-prefix, mid-header or mid-payload)."""

    def __init__(self, expected: int, received: int, part: str) -> None:
        super().__init__(
            f"connection closed mid-{part}: expected {expected} bytes, "
            f"received {received}"
        )
        self.expected = expected
        self.received = received
        self.part = part


class FrameTooLarge(WireError):
    """A frame declared a size beyond the limit; rejected before allocation."""

    def __init__(self, declared: int, limit: int, part: str) -> None:
        super().__init__(
            f"declared {part} size {declared} bytes exceeds the limit of "
            f"{limit} bytes; frame rejected before allocation"
        )
        self.declared = declared
        self.limit = limit
        self.part = part


class ProtocolError(WireError):
    """A structurally valid frame carried semantically invalid content."""


# --------------------------------------------------------------------------- #
# ndarray <-> payload
# --------------------------------------------------------------------------- #
def encode_rows(rows: np.ndarray) -> np.ndarray:
    """Normalise query rows to the canonical wire layout.

    Accepts a 1-D vector (one unit) or a 2-D ``(n, p)`` array in any dtype /
    memory order and returns a C-contiguous float64 ``(n, p)`` array.  This is
    the *single* normalisation point: the sender calls it before writing, and
    the receiver refuses anything that does not already match the layout, so
    a float32 or strided input is converted exactly once, on the client side,
    and both sides of the socket see identical float64 bytes.
    """
    rows = np.ascontiguousarray(rows, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows.reshape(1, -1)
    if rows.ndim != 2:
        raise ProtocolError(
            f"query rows must be a 1-D vector or a 2-D (n, p) array; "
            f"got shape {rows.shape}"
        )
    return rows


def array_header(array: np.ndarray) -> dict:
    """Header fields describing ``array``'s payload bytes."""
    return {"shape": list(array.shape), "dtype": WIRE_DTYPE}


def decode_array(header: dict, payload: bytes) -> np.ndarray:
    """Rebuild the ndarray described by ``header`` from raw payload bytes.

    Zero-copy: the result is a read-only view of ``payload``.  The declared
    dtype must be exactly :data:`WIRE_DTYPE` and the byte count must match
    the declared shape — a peer that skipped :func:`encode_rows` (e.g. sent
    float32 bytes) is rejected with :class:`ProtocolError` rather than having
    its bytes reinterpreted into garbage floats.
    """
    if header.get("dtype") != WIRE_DTYPE:
        raise ProtocolError(
            f"payload dtype must be {WIRE_DTYPE!r}; got {header.get('dtype')!r} "
            f"(normalise with encode_rows before sending)"
        )
    shape = header.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(dim, int) and dim >= 0 for dim in shape
    ):
        raise ProtocolError(f"invalid payload shape {shape!r}")
    expected = int(np.prod(shape, dtype=np.int64)) * 8 if shape else 8
    if len(payload) != expected:
        raise ProtocolError(
            f"payload carries {len(payload)} bytes but shape {shape} "
            f"declares {expected}"
        )
    return np.frombuffer(payload, dtype=np.float64).reshape(shape)


# --------------------------------------------------------------------------- #
# framing
# --------------------------------------------------------------------------- #
def _check_sizes(header_len: int, payload_len: int, max_payload: int) -> None:
    if header_len > MAX_HEADER_BYTES:
        raise FrameTooLarge(header_len, MAX_HEADER_BYTES, "header")
    if payload_len > max_payload:
        raise FrameTooLarge(payload_len, max_payload, "payload")


def _parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"header is not valid UTF-8 JSON: {error}") from error
    if not isinstance(header, dict):
        raise ProtocolError(f"header must be a JSON object; got {type(header).__name__}")
    return header


def write_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Write one frame to a blocking socket.

    ``payload`` may be any bytes-like object (``array.data`` of a C-contiguous
    array is sent without an intermediate copy of the array bytes).
    """
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    # One sendall for prefix+header (small, coalesced), one for the payload
    # (potentially large; no concatenation copy on the hot path).
    sock.sendall(_PREFIX.pack(len(header_bytes), len(payload)) + header_bytes)
    if len(payload):
        sock.sendall(payload)


def _recv_exactly(sock: socket.socket, n: int, part: str) -> bytes:
    buffer = bytearray(n)
    view = memoryview(buffer)
    received = 0
    while received < n:
        chunk = sock.recv_into(view[received:])
        if chunk == 0:
            raise TruncatedFrame(n, received, part)
        received += chunk
    return bytes(buffer)


def read_frame(
    sock: socket.socket, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> Optional[Tuple[dict, bytes]]:
    """Read one frame from a blocking socket.

    Returns ``(header, payload)``, or ``None`` on a clean EOF at a frame
    boundary.  Size limits are enforced after the 8-byte prefix, before any
    header or payload allocation.
    """
    first = sock.recv(_PREFIX.size)
    if first == b"":
        return None
    while len(first) < _PREFIX.size:
        more = sock.recv(_PREFIX.size - len(first))
        if more == b"":
            raise TruncatedFrame(_PREFIX.size, len(first), "prefix")
        first += more
    header_len, payload_len = _PREFIX.unpack(first)
    _check_sizes(header_len, payload_len, max_payload)
    header = _parse_header(_recv_exactly(sock, header_len, "header"))
    payload = _recv_exactly(sock, payload_len, "payload") if payload_len else b""
    return header, payload


async def read_frame_async(
    reader: asyncio.StreamReader, max_payload: int = DEFAULT_MAX_PAYLOAD_BYTES
) -> Optional[Tuple[dict, bytes]]:
    """Asyncio counterpart of :func:`read_frame` (same limits, same errors)."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise TruncatedFrame(_PREFIX.size, len(error.partial), "prefix") from error
    header_len, payload_len = _PREFIX.unpack(prefix)
    _check_sizes(header_len, payload_len, max_payload)
    try:
        raw_header = await reader.readexactly(header_len)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrame(header_len, len(error.partial), "header") from error
    header = _parse_header(raw_header)
    payload = b""
    if payload_len:
        try:
            payload = await reader.readexactly(payload_len)
        except asyncio.IncompleteReadError as error:
            raise TruncatedFrame(payload_len, len(error.partial), "payload") from error
    return header, payload


def write_frame_async(
    writer: asyncio.StreamWriter, header: dict, payload: bytes = b""
) -> None:
    """Queue one frame on an asyncio writer (caller drains)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    writer.write(_PREFIX.pack(len(header_bytes), len(payload)) + header_bytes)
    if len(payload):
        writer.write(payload)
