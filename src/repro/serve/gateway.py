"""Multi-tenant serving gateway: one front door over a fleet of services.

A single :class:`~repro.serve.service.PredictionService` serves one stream's
model.  A production deployment serves *many* streams — days, subsidiaries,
scenarios — each with its own model lineage in the
:class:`~repro.serve.registry.ModelRegistry`.  :class:`ServingGateway` is the
front door over that fleet:

* **deterministic routing** — :class:`ShardRouter` maps a stream key to a
  shard with a SHA-256 digest, so the same key lands on the same shard in
  every process, across restarts and Python hash randomisation;
* **lazy spin-up** — the first query for a stream loads the stream's head
  version from the registry (or a custom ``loader``) and starts its
  :class:`PredictionService`; idle streams cost nothing;
* **response caching** — each shard keeps a TTL+LRU
  :class:`~repro.serve.cache.TTLLRUCache` keyed on
  ``(stream, model version, row digest)``.  The micro-batcher executes every
  query at one canonical batch size, so a response is a pure function of that
  key: a cache hit is *bitwise* the answer a cold query would produce, and a
  version bump (hot swap after adaptation or rollback) changes the key, so
  stale answers become unreachable without an explicit flush.  Models served
  without a version tag are never cached — the tag is the consistency token;
* **admission control** — each shard bounds its in-flight queries
  (``max_pending_per_shard``); a submit beyond the bound is shed with a typed
  :class:`Overloaded` error *before* reaching any service, so shed queries
  never enter a batcher, never execute, and — like rejected submits since the
  monitor PR — never reach traffic observers or drift windows;
* **fleet-wide stats** — :meth:`ServingGateway.stats` snapshots consistent
  per-shard counters (:class:`ShardStats`: throughput, latency, occupancy,
  cache hit rate) aggregated into :class:`GatewayStats`.

Monitoring attaches *per shard stream*: ``gateway.service(stream)`` exposes
the underlying service so a :class:`~repro.monitor.TrafficMonitor` can
register as a traffic observer exactly as it does on a standalone service.
Cache hits are answered at the gateway and therefore do not enter drift
windows — the window sees the rows the model actually executed, which is the
observer contract established by the monitor layer.

Each stream's service owns its learner exclusively (the inference workspaces
are not shareable across dispatcher threads); the registry loader returns a
fresh learner per ``load``, and custom loaders must do the same.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .cache import CacheStats, TTLLRUCache
from .service import PendingPrediction, Prediction, PredictionService, ServiceStats

__all__ = [
    "GatewayStats",
    "Overloaded",
    "ServingGateway",
    "ShardRouter",
    "ShardStats",
    "stable_stream_digest",
]


def stable_stream_digest(stream: str) -> int:
    """A process-independent 64-bit digest of a stream key.

    Built on SHA-256 rather than ``hash()``: Python's string hash is salted
    per process, and routing must send the same stream to the same shard
    across restarts (cache keys, monitor attachments and capacity planning
    all assume stable placement).
    """
    return int.from_bytes(hashlib.sha256(stream.encode("utf-8")).digest()[:8], "big")


class ShardRouter:
    """Deterministic stream-key → shard-index mapping."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.n_shards = n_shards

    def shard_for(self, stream: str) -> int:
        """Shard index serving ``stream`` (pure function of the key)."""
        return stable_stream_digest(stream) % self.n_shards


class Overloaded(RuntimeError):
    """A query shed by admission control: the target shard's queue is full.

    Carries enough context for the caller to retry elsewhere or back off.
    Shed queries never reach a service, a batcher, or a traffic observer.
    """

    def __init__(
        self,
        stream: str,
        shard_index: int,
        in_flight: int,
        capacity: int,
        retry_after_s: "Optional[float]" = None,
    ) -> None:
        super().__init__(
            f"shard {shard_index} is overloaded: {in_flight}/{capacity} queries "
            f"in flight (stream '{stream}')"
        )
        self.stream = stream
        self.shard_index = shard_index
        self.in_flight = in_flight
        self.capacity = capacity
        #: Uniform back-off hint across every shed type (RateLimited carries a
        #: real estimate); queue pressure has no honest ETA, so None here —
        #: load harnesses read the field, never the type, to decide a retry.
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class ShardStats:
    """Consistent snapshot of one shard's lifetime counters."""

    index: int
    #: Streams spun up on this shard, in first-query order.
    streams: Tuple[str, ...]
    #: Queries answered (cache hits + executed queries + direct predict rows).
    answered: int
    #: Queries shed by admission control.
    shed: int
    #: Queries currently submitted and not yet resolved.
    in_flight: int
    #: Admission bound (0 = unbounded).
    capacity: int
    #: Summed completion latency of executed (non-cache-hit) queries.
    latency_s: float
    #: Number of latency samples behind :attr:`latency_s`.
    latency_samples: int
    #: Seconds since the gateway started (the throughput time base).
    uptime_s: float
    cache: CacheStats = field(default=CacheStats(0, 0, 0, 0, 0, 0))
    #: Micro-batching counters summed over the shard's services.
    service: ServiceStats = field(default=ServiceStats(0, 0, 0))

    @property
    def throughput_qps(self) -> float:
        """Answered queries per second of gateway uptime."""
        return self.answered / self.uptime_s if self.uptime_s > 0 else 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean submit-to-resolution latency of executed queries."""
        return self.latency_s / self.latency_samples if self.latency_samples else 0.0

    @property
    def occupancy(self) -> float:
        """In-flight fraction of the admission bound (0.0 when unbounded)."""
        return self.in_flight / self.capacity if self.capacity else 0.0


@dataclass(frozen=True)
class GatewayStats:
    """Fleet-wide aggregate over every shard's snapshot."""

    shards: Tuple[ShardStats, ...]

    @property
    def answered(self) -> int:
        return sum(shard.answered for shard in self.shards)

    @property
    def shed(self) -> int:
        return sum(shard.shed for shard in self.shards)

    @property
    def in_flight(self) -> int:
        return sum(shard.in_flight for shard in self.shards)

    @property
    def streams(self) -> Tuple[str, ...]:
        return tuple(stream for shard in self.shards for stream in shard.streams)

    @property
    def cache_hits(self) -> int:
        return sum(shard.cache.hits for shard in self.shards)

    @property
    def cache_misses(self) -> int:
        return sum(shard.cache.misses for shard in self.shards)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def throughput_qps(self) -> float:
        """Aggregate answered queries per second of gateway uptime."""
        return sum(shard.throughput_qps for shard in self.shards)

    @property
    def mean_latency_s(self) -> float:
        samples = sum(shard.latency_samples for shard in self.shards)
        if not samples:
            return 0.0
        return sum(shard.latency_s for shard in self.shards) / samples


class _Shard:
    """One routing target: its services, admission counter and cache."""

    __slots__ = (
        "index",
        "lock",
        "spin_lock",
        "services",
        "in_flight",
        "answered",
        "shed",
        "latency_s",
        "latency_samples",
        "cache",
    )

    def __init__(self, index: int, cache: TTLLRUCache) -> None:
        self.index = index
        self.lock = threading.Lock()
        #: Serialises model loading only, so a slow spin-up never blocks
        #: the counter lock (stats stay responsive during cold starts).
        self.spin_lock = threading.Lock()
        self.services: Dict[str, PredictionService] = {}  # guarded-by: lock
        self.in_flight = 0  # guarded-by: lock
        self.answered = 0  # guarded-by: lock
        self.shed = 0  # guarded-by: lock
        self.latency_s = 0.0  # guarded-by: lock
        self.latency_samples = 0  # guarded-by: lock
        self.cache = cache


class ServingGateway:
    """Route, cache, shed and serve single-unit ITE queries for many streams.

    Parameters
    ----------
    registry:
        A :class:`~repro.serve.ModelRegistry`; each stream's first query
        loads that stream's *head* version.  Mutually exclusive default for
        ``loader``.
    loader:
        Alternative spin-up hook ``loader(stream) -> (learner, version)``;
        must return a learner not shared with any other stream (services own
        their learner's inference workspaces).
    n_shards:
        Number of routing targets.  Streams are digest-assigned; several
        streams may share a shard (they keep separate services and models,
        but share the shard's admission bound and cache).
    max_batch, max_wait_ms:
        Micro-batching knobs handed to every spun-up service; ``max_batch``
        is the canonical execution size underpinning cache transparency.
    max_pending_per_shard:
        Admission bound on in-flight queries per shard; ``None`` disables
        shedding.
    cache_capacity, cache_ttl_s:
        Per-shard response cache size (0 disables caching) and optional
        entry lifetime.
    clock:
        Monotonic time source (latency/TTL/uptime), injectable for tests.
    """

    def __init__(
        self,
        registry=None,
        loader: Optional[Callable[[str], Tuple[object, Optional[int]]]] = None,
        n_shards: int = 4,
        max_batch: int = 128,
        max_wait_ms: float = 0.0,
        max_pending_per_shard: Optional[int] = None,
        cache_capacity: int = 1024,
        cache_ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if (registry is None) == (loader is None):
            raise ValueError("provide exactly one of registry or loader")
        if max_pending_per_shard is not None and max_pending_per_shard < 1:
            raise ValueError("max_pending_per_shard must be at least 1 (or None)")
        self._loader = loader if loader is not None else self._registry_loader(registry)
        self._router = ShardRouter(n_shards)
        self._max_batch = max_batch
        self._max_wait_ms = max_wait_ms
        self._max_pending = max_pending_per_shard
        self._clock = clock
        self._started = clock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._shards = [
            _Shard(index, TTLLRUCache(cache_capacity, ttl_s=cache_ttl_s, clock=clock))
            for index in range(n_shards)
        ]

    @staticmethod
    def _registry_loader(registry) -> Callable[[str], Tuple[object, Optional[int]]]:
        def load(stream: str):
            entry = registry.entry(stream)  # the stream's head version
            return registry.load(stream, entry.domain_index), entry.domain_index

        return load

    # ------------------------------------------------------------------ #
    # routing and spin-up
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return self._router.n_shards

    def shard_for(self, stream: str) -> int:
        """Shard index serving ``stream`` (deterministic across processes)."""
        return self._router.shard_for(stream)

    def streams(self) -> List[str]:
        """Streams with a spun-up service, sorted."""
        return sorted(
            stream for shard in self._shards for stream in shard.services
        )

    def service(self, stream: str) -> PredictionService:
        """The stream's service, spun up from the loader on first use.

        This is the monitor attachment point:
        ``TrafficMonitor(...).attach(gateway.service(stream))`` taps exactly
        the queries the stream's model executes.
        """
        shard = self._shards[self._router.shard_for(stream)]
        service = shard.services.get(stream)
        if service is not None:
            return service
        with shard.spin_lock:
            service = shard.services.get(stream)
            if service is not None:
                return service
            if self._closed:
                raise RuntimeError("cannot spin up a stream on a closed ServingGateway")
            learner, version = self._loader(stream)
            service = PredictionService(
                learner,
                model_version=version,
                max_batch=self._max_batch,
                max_wait_ms=self._max_wait_ms,
            )
            with shard.lock:
                shard.services[stream] = service
            return service

    def reload(self, stream: str) -> Optional[int]:
        """Re-run the loader (registry head) and hot-swap the stream's model.

        The new version tag changes every cache key for the stream, so
        answers produced by the previous version become unreachable — this
        is the invalidation path after an adaptation or rollback.
        """
        learner, version = self._loader(stream)
        self.service(stream).swap_model(learner, model_version=version)
        return version

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, stream: str, covariates: np.ndarray) -> PendingPrediction:
        """Enqueue one unit's query for ``stream``; returns a waitable handle.

        Raises :class:`Overloaded` (without side effects on any service or
        observer) when the target shard's admission bound is reached.  A
        cache hit returns an already-resolved handle carrying the bitwise
        answer a cold query would produce.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed ServingGateway")
        shard = self._shards[self._router.shard_for(stream)]
        service = self.service(stream)
        row = self._as_row(covariates)
        key = None
        if shard.cache.capacity:
            # version_hint is lock-free on purpose: the model lock is held
            # for whole batch executions, and a submit must not stall behind
            # them.  A stale hint costs one miss; fills key by the version
            # the response actually reports.
            version = service.version_hint
            if version is not None:
                key = (stream, version, hashlib.sha256(row.tobytes()).digest())
                cached = shard.cache.get(key)
                if cached is not None:
                    with shard.lock:
                        shard.answered += 1
                    pending = PendingPrediction()
                    pending._set_result(cached)
                    return pending
        if self._max_pending is not None:
            with shard.lock:
                if shard.in_flight >= self._max_pending:
                    shard.shed += 1
                    raise Overloaded(
                        stream, shard.index, shard.in_flight, self._max_pending
                    )
                shard.in_flight += 1
        else:
            with shard.lock:
                shard.in_flight += 1
        start = self._clock()
        try:
            pending = service.submit(row)
        except BaseException:
            with shard.lock:
                shard.in_flight -= 1
            raise
        pending.add_done_callback(
            lambda done: self._finish(shard, stream, key, start, done)
        )
        return pending

    def predict_one(
        self, stream: str, covariates: np.ndarray, timeout: Optional[float] = None
    ) -> Prediction:
        """Blocking single-unit query (cache → admission → micro-batcher)."""
        return self.submit(stream, covariates).result(timeout)

    def predict(self, stream: str, covariates: np.ndarray):
        """Direct batched prediction on the stream's service.

        Bypasses cache and admission control (a batch is one model execution,
        not per-unit front-door traffic); rows count toward the shard's
        answered total so fleet throughput reflects all served work.
        """
        shard = self._shards[self._router.shard_for(stream)]
        estimate = self.service(stream).predict(covariates)
        rows = covariates.shape[0] if getattr(covariates, "ndim", 1) == 2 else 1
        with shard.lock:
            shard.answered += rows
        return estimate

    def _finish(
        self,
        shard: _Shard,
        stream: str,
        key,
        start: float,
        pending: PendingPrediction,
    ) -> None:
        elapsed = self._clock() - start
        failed = pending._error is not None
        with shard.lock:
            shard.in_flight -= 1
            if not failed:
                shard.answered += 1
                shard.latency_s += elapsed
                shard.latency_samples += 1
        if failed:
            return
        result = pending._result
        if result.model_version is not None:
            # Key by the version that actually answered (a hot swap may have
            # landed between the lookup and the execution); an untagged
            # model is never cached — the tag is the consistency token.
            digest = key[2] if key is not None else None
            if digest is None:
                return
            shard.cache.put((stream, result.model_version, digest), result)

    # ------------------------------------------------------------------ #
    # stats and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> GatewayStats:
        """Consistent per-shard snapshots, aggregated fleet-wide."""
        uptime = self._clock() - self._started
        snapshots = []
        for shard in self._shards:
            with shard.lock:
                streams = tuple(shard.services)
                answered = shard.answered
                shed = shard.shed
                in_flight = shard.in_flight
                latency_s = shard.latency_s
                latency_samples = shard.latency_samples
                services = list(shard.services.values())
            service_totals = ServiceStats(0, 0, 0)
            for service in services:
                one = service.stats()
                service_totals = ServiceStats(
                    queries=service_totals.queries + one.queries,
                    batches=service_totals.batches + one.batches,
                    largest_batch=max(service_totals.largest_batch, one.largest_batch),
                )
            snapshots.append(
                ShardStats(
                    index=shard.index,
                    streams=streams,
                    answered=answered,
                    shed=shed,
                    in_flight=in_flight,
                    capacity=self._max_pending or 0,
                    latency_s=latency_s,
                    latency_samples=latency_samples,
                    uptime_s=uptime,
                    cache=shard.cache.stats(),
                    service=service_totals,
                )
            )
        return GatewayStats(shards=tuple(snapshots))

    def close(self) -> None:
        """Drain and stop every spun-up service; reject new work."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for shard in self._shards:
            # Taking the spin lock serialises against an in-flight spin-up:
            # either it finished registering (and its service is closed
            # below) or it has not re-checked _closed yet and will refuse.
            with shard.spin_lock:
                with shard.lock:
                    services = list(shard.services.values())
            for service in services:
                service.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _as_row(covariates: np.ndarray) -> np.ndarray:
        """Canonical float64 1-D view (the digestable cache identity).

        Only read here (digest) — the defensive snapshot copy happens once,
        in the service's own ``submit``, so the hot path pays a single copy
        per query.  Feature-count validation also stays with the service.
        """
        row = np.ascontiguousarray(covariates, dtype=np.float64)
        if row.ndim == 2 and row.shape[0] == 1:
            row = row[0]
        if row.ndim != 1:
            raise ValueError(
                f"a single-unit query must be a 1-D covariate vector "
                f"(or a (1, p) array); got shape {row.shape}"
            )
        return row
