"""CERL reproduction: continual causal effect estimation from incremental observational data.

Public API highlights
---------------------
* :class:`repro.core.CERL` — the continual causal-effect learner (the paper's contribution).
* :class:`repro.core.BaselineCausalModel` — the CFR-style selective & balanced learner.
* :func:`repro.core.make_estimator` — build any registered estimator by name
  (CFR-A/B/C, CERL, and the S/T/X/R meta-learner zoo).
* :mod:`repro.data` — News, BlogCatalog and synthetic multi-domain benchmarks
  (including the drift scenario generators).
* :mod:`repro.experiments` — drivers that regenerate the paper's tables and figures.
* :mod:`repro.serve` — versioned model registry + micro-batched prediction service.
* :mod:`repro.monitor` — drift monitoring and automatic continual adaptation.
"""

from .core import (
    CERL,
    BaselineCausalModel,
    ContinualConfig,
    ModelConfig,
    estimator_names,
    make_estimator,
    make_strategy,
)
from .data import (
    CausalDataset,
    DomainStream,
    NewsBenchmark,
    BlogCatalogBenchmark,
    SyntheticDomainGenerator,
)
from .metrics import EffectEstimate, ate_error, sqrt_pehe

__version__ = "1.0.0"

__all__ = [
    "CERL",
    "BaselineCausalModel",
    "ContinualConfig",
    "ModelConfig",
    "estimator_names",
    "make_estimator",
    "make_strategy",
    "CausalDataset",
    "DomainStream",
    "NewsBenchmark",
    "BlogCatalogBenchmark",
    "SyntheticDomainGenerator",
    "EffectEstimate",
    "ate_error",
    "sqrt_pehe",
    "__version__",
]
