"""Callback protocol for the training engine.

Callbacks observe the :class:`~repro.engine.trainer.Trainer` loop at epoch
granularity and may request a stop (early stopping) or persist state
(checkpointing).  They are invoked in list order at every hook, so learners
control the relative ordering simply by how they assemble the list — e.g.
history recording before early stopping, matching the seed learners' loops.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from .history import TrainingHistory

__all__ = ["Callback", "History", "EarlyStopping", "Checkpoint"]


class Callback:
    """Base class with no-op hooks; subclasses override what they need."""

    def on_train_begin(self, state) -> None:
        """Called once before the first epoch."""

    def on_epoch_begin(self, state) -> None:
        """Called at the start of every epoch."""

    def on_epoch_end(self, state) -> None:
        """Called after every epoch, with ``state.logs`` holding the averages."""

    def on_train_end(self, state) -> None:
        """Called once after the loop finishes (normally or by early stop)."""


class History(Callback):
    """Record per-epoch component averages into a :class:`TrainingHistory`.

    The standard component names ``factual`` / ``ipm`` / ``regularization``
    map onto the history's named fields; any other component reported by the
    loss bundle is recorded under :attr:`TrainingHistory.extras`.
    """

    _NAMED = ("total", "factual", "ipm", "regularization")

    def __init__(self, history: Optional[TrainingHistory] = None) -> None:
        self.history = history if history is not None else TrainingHistory()

    def on_epoch_end(self, state) -> None:
        logs = state.logs
        self.history.append(
            logs.get("total", 0.0),
            logs.get("factual", 0.0),
            logs.get("ipm", 0.0),
            logs.get("regularization", 0.0),
        )
        for name, value in logs.items():
            if name not in self._NAMED:
                self.history.append_extra(name, value)
        if state.validation_loss is not None:
            self.history.validation.append(state.validation_loss)

    def on_train_end(self, state) -> None:
        # Only ever set, never clear: a history shared across several fit
        # calls (e.g. fit + fine_tune) must remember that an earlier stage
        # stopped early even when a later stage runs to its full budget.
        if state.stop_training:
            self.history.stopped_early = True


class EarlyStopping(Callback):
    """Validation-loss early stopping with best-state restoration.

    Tracks the best validation loss seen so far; once no improvement larger
    than ``min_delta`` has been observed for ``patience`` consecutive epochs,
    the trainer is asked to stop and — at the end of training — the best
    parameter snapshot of all monitored modules is restored.

    ``patience=0`` disables early stopping entirely (the learner trains for
    its full epoch budget and keeps its final parameters).  Snapshots are
    plain ``np.copy`` images of the raw parameter arrays, taken and restored
    without re-wrapping them in fresh tensors, so restoration preserves
    parameter object identity for optimisers holding references.

    A NaN validation loss (a diverged run) counts as *no improvement*: the
    patience budget keeps draining, so divergence stops training after
    ``patience`` epochs instead of burning the full epoch budget.  The
    starting parameters are snapshotted at ``on_train_begin``, so even a run
    whose every validation loss is NaN restores a usable (pre-divergence)
    state instead of keeping the diverged weights.
    """

    def __init__(self, modules: Sequence, patience: int, min_delta: float = 0.0) -> None:
        if patience < 0:
            raise ValueError("patience must be non-negative (0 disables early stopping)")
        self._parameters = [p for module in modules for p in module.parameters()]
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self._epochs_without_improvement = 0
        self._best_arrays: Optional[List[np.ndarray]] = None
        self._observed_validation = False

    @property
    def enabled(self) -> bool:
        """Whether the callback is active (``patience`` > 0)."""
        return self.patience > 0

    def on_train_begin(self, state) -> None:
        self.best_loss = float("inf")
        self._epochs_without_improvement = 0
        self._observed_validation = False
        # Seed the snapshot with the starting parameters: a run that never
        # improves (every validation loss NaN) must still have a state to
        # restore.  Any finite first validation loss immediately replaces it,
        # and restore() ignores it entirely unless a validation loss was
        # actually observed (a run without validation keeps its final
        # weights, as before).
        self._best_arrays = (
            [np.copy(p.data) for p in self._parameters] if self.enabled else None
        )

    def on_epoch_end(self, state) -> None:
        if not self.enabled or state.validation_loss is None:
            return
        self.update(state.validation_loss)
        if self.should_stop():
            state.stop_training = True

    def on_train_end(self, state) -> None:
        self.restore()

    # ------------------------------------------------------------------ #
    # imperative interface (usable outside a Trainer as well)
    # ------------------------------------------------------------------ #
    def update(self, validation_loss: float) -> None:
        """Record the latest validation loss and snapshot on improvement.

        NaN is explicitly no-improvement: the bare ``<`` comparison below is
        already False for NaN, but the explicit check documents the contract
        and keeps it safe against future rewrites of the condition (e.g. a
        ``not (loss >= best)`` form, for which NaN would count as improved).
        """
        self._observed_validation = True
        if not np.isnan(validation_loss) and validation_loss < self.best_loss - self.min_delta:
            self.best_loss = validation_loss
            self._epochs_without_improvement = 0
            self._best_arrays = [np.copy(p.data) for p in self._parameters]
        else:
            self._epochs_without_improvement += 1

    def should_stop(self) -> bool:
        """Whether the patience budget has been exhausted."""
        return self.enabled and self._epochs_without_improvement >= self.patience

    def restore(self) -> None:
        """Load the best snapshot back into the monitored parameters.

        No-op unless a validation loss was observed: without one, the only
        snapshot is the initial-parameters fallback, and restoring it would
        silently throw away a training run that simply had no validation.
        """
        if self._best_arrays is None or not self._observed_validation:
            return
        for param, best in zip(self._parameters, self._best_arrays):
            param.data = best.copy()


class Checkpoint(Callback):
    """Persist training state every ``every`` epochs (and at the end).

    The engine stays agnostic of what is saved: ``save_fn(epoch)`` is supplied
    by the caller, typically wrapping :mod:`repro.core.persistence` (e.g.
    ``lambda epoch: save_cerl(learner, path)``).
    """

    def __init__(self, save_fn: Callable[[int], object], every: int = 1) -> None:
        if every <= 0:
            raise ValueError("every must be positive")
        self.save_fn = save_fn
        self.every = every
        self.saved_epochs: List[int] = []

    def on_epoch_end(self, state) -> None:
        epoch = state.epoch
        if (epoch + 1) % self.every == 0:
            self.save_fn(epoch)
            self.saved_epochs.append(epoch)

    def on_train_end(self, state) -> None:
        if state.epoch >= 0 and (not self.saved_epochs or self.saved_epochs[-1] != state.epoch):
            self.save_fn(state.epoch)
            self.saved_epochs.append(state.epoch)
