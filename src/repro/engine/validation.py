"""Validation closures for the training loop.

``Trainer.fit`` accepts a ``validate`` callable that is run once per epoch;
its value feeds the :class:`~repro.engine.callbacks.EarlyStopping` callback.
Every learner used to hand-write the same closure (forward the validation
split, mean-squared error against the targets).  :func:`mse_validator` builds
it once, on top of whatever prediction function the learner supplies —
typically the no-graph inference fast path, so the per-epoch validation pass
allocates nothing and records no autograd state.

The error expression is kept exactly as the seed learners wrote it
(``mean((prediction - target) ** 2)``) so early-stopping decisions are
bit-identical to the pre-refactor loops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["mse_validator"]


def mse_validator(
    predict: Callable[[], np.ndarray], targets: np.ndarray
) -> Callable[[], float]:
    """Build a per-epoch validation closure returning mean squared error.

    Parameters
    ----------
    predict:
        Zero-argument callable producing the validation predictions (run on
        the inference fast path by the learners).
    targets:
        Ground-truth values the predictions are compared against.
    """
    targets = np.asarray(targets, dtype=np.float64)

    def validate() -> float:
        return float(np.mean((predict() - targets) ** 2))

    return validate
