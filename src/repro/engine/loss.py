"""Composable loss bundles for the training engine.

Every learner in the reproduction minimises a weighted sum of named scalar
terms — Eq. (5) for the baseline (factual + IPM + elastic net) and Eq. (9)
for the continual stages (plus distillation and transformation alignment).
:class:`LossBundle` captures that structure once: learners add their terms in
objective order and the engine takes care of weighting, summation and
component bookkeeping.

The total is built left-associatively in insertion order and terms with
weight exactly ``1.0`` are added without a multiplication node, so the
resulting computation graph — and therefore the training trajectory — is
bit-for-bit identical to the hand-written ``factual + alpha * ipm + ...``
expressions the learners used before the engine existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..nn import Tensor

__all__ = ["LossBundle", "LossResult"]


@dataclass
class LossResult:
    """One evaluated loss: the differentiable total plus per-term floats."""

    total: Tensor
    components: Dict[str, float]


class LossBundle:
    """Weighted sum of named scalar loss terms.

    Example
    -------
    >>> bundle = LossBundle()
    >>> bundle.add("factual", factual_loss)
    >>> bundle.add("ipm", imbalance, weight=config.alpha)
    >>> bundle.add("regularization", elastic_net, weight=config.lambda_reg)
    >>> result = bundle.result()
    >>> result.total.backward()
    >>> result.components["ipm"]  # raw (unweighted) term value
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._values: List[Tensor] = []
        self._weights: List[float] = []

    def add(self, name: str, value: Tensor, weight: float = 1.0) -> "LossBundle":
        """Append a named term; ``weight`` scales it in the total only."""
        if name in self._names:
            raise ValueError(f"duplicate loss term '{name}'")
        self._names.append(name)
        self._values.append(value)
        self._weights.append(float(weight))
        return self

    def __len__(self) -> int:
        return len(self._names)

    def total(self) -> Tensor:
        """Weighted sum of all terms, left-associated in insertion order."""
        if not self._names:
            raise ValueError("LossBundle has no terms")
        total: Optional[Tensor] = None
        for value, weight in zip(self._values, self._weights):
            term = value if weight == 1.0 else weight * value
            total = term if total is None else total + term
        return total

    def terms(self) -> List[tuple]:
        """The ``(name, tensor)`` pairs in insertion order (tape compilation)."""
        return list(zip(self._names, self._values))

    def components(self) -> Dict[str, float]:
        """Raw (unweighted) scalar value of every term, keyed by name."""
        return {name: float(value.item()) for name, value in zip(self._names, self._values)}

    def result(self) -> LossResult:
        """Evaluate the bundle into a :class:`LossResult`."""
        components = self.components()
        total = self.total()
        components["total"] = float(total.item())
        return LossResult(total=total, components=components)
