"""Shared training engine: one loop, callbacks and loss composition.

Layer stack (see ARCHITECTURE.md)::

    repro.nn  ->  repro.engine  ->  repro.core learners  ->  repro.experiments

The engine sits directly on the autograd substrate and knows nothing about
causal inference; the core learners express their objectives as
:class:`LossBundle` terms and run them through a :class:`Trainer`.
"""

from .history import TrainingHistory
from .loss import LossBundle, LossResult
from .backend import EagerEnv, TapeExecutor, TraceableLoss, TraceEnv
from .callbacks import Callback, Checkpoint, EarlyStopping, History
from .trainer import Trainer, TrainerState, iterate
from .validation import mse_validator

__all__ = [
    "TrainingHistory",
    "LossBundle",
    "LossResult",
    "TraceableLoss",
    "EagerEnv",
    "TraceEnv",
    "TapeExecutor",
    "Callback",
    "Checkpoint",
    "EarlyStopping",
    "History",
    "Trainer",
    "TrainerState",
    "iterate",
    "mse_validator",
]
