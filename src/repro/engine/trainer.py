"""The shared training engine: one minibatch/epoch loop for every learner.

Before this layer existed, ``BaselineCausalModel``, the CERL continual stage
and each adaptation strategy hand-rolled the same epoch loop (shuffled
minibatches, backward pass, gradient clipping, optimiser step, component
averaging, validation, early stopping).  :class:`Trainer` owns that loop once:
learners supply a batch-loss closure returning a
:class:`~repro.engine.loss.LossResult` (usually built with a
:class:`~repro.engine.loss.LossBundle`) and compose behaviour through
:class:`~repro.engine.callbacks.Callback` objects.

The loop is deliberately structured to be numerically indistinguishable from
the seed learners' hand-written versions: batches come from the same
``minibatches`` iterator driven by the learner's RNG, component averages are
accumulated in the same order, and validation/early-stopping run after the
history update exactly as before.  The parity test suite pins this down
against pre-refactor metric values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import minibatches
from ..nn import Optimizer, clip_grad_norm
from .backend import TraceableLoss
from .callbacks import Callback
from .loss import LossResult

__all__ = ["Trainer", "TrainerState", "iterate"]

BatchLossFn = Callable[[np.ndarray], LossResult]
ValidateFn = Callable[[], float]


class TrainerState:
    """Mutable snapshot of the loop that callbacks observe and steer."""

    def __init__(self) -> None:
        self.epoch: int = -1
        self.logs: Dict[str, float] = {}
        self.validation_loss: Optional[float] = None
        self.stop_training: bool = False


def iterate(
    step: Callable[[int], float],
    max_iterations: int,
    tol: Optional[float] = None,
) -> int:
    """Drive a fixed-point/Newton-style solver until convergence.

    Calls ``step(iteration)`` up to ``max_iterations`` times; when ``tol`` is
    given, stops as soon as the returned update magnitude drops below it.
    Returns the number of iterations performed.  This is the engine's
    full-batch counterpart to the epoch loop, used by the closed-form learners
    in :mod:`repro.core.classic`.
    """
    if max_iterations <= 0:
        raise ValueError("max_iterations must be positive")
    performed = 0
    for iteration in range(max_iterations):
        delta = step(iteration)
        performed = iteration + 1
        if tol is not None and delta < tol:
            break
    return performed


class Trainer:
    """Epoch/minibatch training loop with callbacks and LR scheduling hooks.

    Parameters
    ----------
    parameters:
        Flat list of trainable parameters (used for gradient clipping).
    optimizer:
        Any :class:`repro.nn.Optimizer` over the same parameters.
    batch_size:
        Minibatch size; batches are drawn with the learner-supplied ``rng``
        so training trajectories are reproducible.
    grad_clip:
        Global gradient-norm clip; ``0`` disables clipping.
    rng:
        Generator driving the minibatch shuffling.  Defaults to a fresh
        deterministic generator so engine-driven training is reproducible even
        when a learner forgets to pass one.
    scheduler:
        Optional learning-rate schedule with a ``step()`` method (e.g.
        :class:`repro.nn.StepLR`), advanced once per epoch.
    callbacks:
        :class:`Callback` objects invoked in order at every hook.
    backend:
        ``"eager"`` (default) evaluates the batch loss step by step;
        ``"tape"`` compiles a :class:`~repro.engine.backend.TraceableLoss`
        once per feed signature and replays it allocation-free (gradients and
        trajectories bit-identical to eager — see ``repro.nn.tape``).
    """

    # Exposed so callers can route convergence-style fitting "through the
    # Trainer" without instantiating one (see repro.core.classic).
    converge = staticmethod(iterate)

    def __init__(
        self,
        parameters: Sequence,
        optimizer: Optimizer,
        *,
        batch_size: int,
        grad_clip: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        scheduler: Optional[object] = None,
        callbacks: Sequence[Callback] = (),
        backend: str = "eager",
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if backend not in ("eager", "tape"):
            raise ValueError(f"unknown training backend '{backend}'")
        self.backend = backend
        self.parameters = list(parameters)
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.scheduler = scheduler
        self.callbacks: List[Callback] = list(callbacks)
        self.state = TrainerState()

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def fit(
        self,
        n_units: int,
        batch_loss: BatchLossFn,
        epochs: int,
        validate: Optional[ValidateFn] = None,
    ) -> TrainerState:
        """Run ``epochs`` epochs of minibatch optimisation.

        ``batch_loss`` receives the index array of one minibatch and returns
        the evaluated :class:`LossResult`; ``validate`` (when given) is called
        once per epoch after the minibatch sweep and its value exposed to
        callbacks via ``state.validation_loss``.
        """
        if n_units <= 0:
            raise ValueError("n_units must be positive")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if isinstance(batch_loss, TraceableLoss):
            batch_loss = batch_loss.bind(self.backend)
        elif self.backend == "tape":
            raise TypeError(
                "backend='tape' requires the batch loss to be a TraceableLoss"
            )
        state = self.state = TrainerState()
        self._dispatch("on_train_begin", state)
        for epoch in range(epochs):
            state.epoch = epoch
            self._dispatch("on_epoch_begin", state)
            sums: Dict[str, float] = {}
            n_batches = 0
            for batch in minibatches(n_units, self.batch_size, rng=self.rng):
                result = batch_loss(batch)
                self.optimizer.zero_grad()
                result.total.backward()
                clip_grad_norm(self.parameters, self.grad_clip)
                self.optimizer.step()
                for name, value in result.components.items():
                    sums[name] = sums.get(name, 0.0) + value
                n_batches += 1
            state.logs = {name: value / n_batches for name, value in sums.items()}
            state.validation_loss = validate() if validate is not None else None
            self._dispatch("on_epoch_end", state)
            if self.scheduler is not None:
                self.scheduler.step()
            if state.stop_training:
                break
        self._dispatch("on_train_end", state)
        return state

    def _dispatch(self, hook: str, state: TrainerState) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(state)
