"""Training history containers shared by every learner.

Moved out of ``repro.core.baseline`` so the engine layer can record histories
without depending on any specific learner; ``repro.core`` re-exports
:class:`TrainingHistory` for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during training.

    The named fields mirror the components of the paper's objectives (Eq. 5
    and Eq. 9): the factual outcome loss, the IPM balancing term and the
    elastic-net regulariser.  Additional terms (distillation, transformation)
    are kept in :attr:`extras` keyed by component name.
    """

    total: List[float] = field(default_factory=list)
    factual: List[float] = field(default_factory=list)
    ipm: List[float] = field(default_factory=list)
    regularization: List[float] = field(default_factory=list)
    validation: List[float] = field(default_factory=list)
    extras: Dict[str, List[float]] = field(default_factory=dict)
    stopped_early: bool = False

    def append(self, total: float, factual: float, ipm: float, regularization: float) -> None:
        """Record one epoch's average loss components."""
        self.total.append(total)
        self.factual.append(factual)
        self.ipm.append(ipm)
        self.regularization.append(regularization)

    def append_extra(self, name: str, value: float) -> None:
        """Record one epoch's average of a non-standard loss component."""
        self.extras.setdefault(name, []).append(value)

    def __len__(self) -> int:
        return len(self.total)
