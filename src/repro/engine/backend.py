"""Training backends: eager evaluation vs. tape compile-and-replay.

A learner that wants the tape backend expresses its objective as a
:class:`TraceableLoss` — a *program* over an environment handle plus a
RNG-free *feeds* function — instead of a plain batch-loss closure.  The same
program then runs in two ways:

* :class:`EagerEnv` evaluates every env call immediately with exactly the
  NumPy/Tensor expressions the hand-written closures used, so the default
  eager path is bit-for-bit unchanged;
* :class:`TraceEnv` records host-side work (RNG draws, index gathers,
  ``flatnonzero`` splits, the Sinkhorn plan) onto a :class:`repro.nn.tape.Trace`
  while the Tensor expressions of the program record themselves through
  :class:`~repro.nn.tape.TraceTensor` operator dispatch.

:class:`TapeExecutor` owns the compiled tapes: one per feed signature
(shapes/dtypes of the per-step arrays plus the identity of the parameter
list), compiled on first sight by *running* the step through ``TraceEnv`` —
tracing is execution, so the compile step costs one eager-equivalent pass and
consumes the RNG stream exactly once.  Replays run the flat op list in
preallocated buffers.  Baked branch predicates are re-checked by guard ops;
when one flips (e.g. the minibatch lost all its treated units), the replay
restores the RNG state it consumed and the executor re-runs that step through
``EagerEnv`` on the same feeds — bit-identical to what an eager step would
have produced.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..nn import Tensor
from ..nn.tape import PredicateFlip, Tape, Trace, activate_trace
from .loss import LossResult

__all__ = ["TraceableLoss", "EagerEnv", "TraceEnv", "TapeExecutor"]


class _Value:
    """Eager host-value handle mirroring the tape's ``.get()`` protocol."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def get(self):
        return self.value


class EagerEnv:
    """Environment that evaluates every program step immediately.

    Each method computes exactly the expression the pre-backend learners
    inlined, so a program run through ``EagerEnv`` reproduces the historical
    eager training trajectory bit for bit (pinned by the parity suite).
    """

    backend = "eager"

    def __init__(self, feeds: Dict[str, np.ndarray]) -> None:
        self.feeds = feeds

    def tensor(self, name: str) -> Tensor:
        """A differentiation-graph leaf over the named feed array."""
        return Tensor(self.feeds[name])

    def array(self, name: str) -> _Value:
        """A host-value handle over the named feed array."""
        return _Value(self.feeds[name])

    def rng_choice(self, rng: np.random.Generator, n: int, size: int) -> _Value:
        """Draw ``size`` distinct indices from ``range(n)`` (rehearsal draw)."""
        return _Value(rng.choice(n, size=size, replace=False))

    def take(self, base: np.ndarray, index) -> _Value:
        """Gather rows of a per-stage constant array by a host index."""
        return _Value(base[index.get()])

    def mask(self, handle) -> _Value:
        """Float64 treatment mask of a host treatment vector."""
        return _Value(np.asarray(handle.get()).ravel().astype(np.float64))

    def lift(self, handle) -> Tensor:
        """Wrap a host value as a constant graph leaf."""
        return Tensor(handle.get())

    def hconcat(self, a, b) -> _Value:
        """Concatenate two 1-D host vectors."""
        return _Value(np.concatenate([a.get(), b.get()]))

    def flatnonzero_eq(self, handle, value) -> _Value:
        """Indices where the host vector equals ``value`` (group split)."""
        return _Value(np.flatnonzero(handle.get() == value))

    def guard(self, fn: Callable[..., bool], *handles) -> bool:
        """Evaluate a data-dependent branch predicate."""
        return bool(fn(*[h.get() for h in handles]))

    def take_rows(self, tensor: Tensor, handle) -> Tensor:
        """Differentiable row gather of a graph tensor by a host index."""
        return tensor[handle.get()]

    def detach(self, tensor: Tensor) -> Tensor:
        """Constant leaf carrying the tensor's current value."""
        return Tensor(tensor.numpy())


class TraceEnv:
    """Environment that records the program onto a tape trace."""

    backend = "tape"

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def tensor(self, name: str):
        return self.trace.input_leaf(name)

    def array(self, name: str):
        return self.trace.feed(name)

    def rng_choice(self, rng: np.random.Generator, n: int, size: int):
        return self.trace.host(
            lambda: rng.choice(n, size=size, replace=False), rng=rng
        )

    def take(self, base: np.ndarray, index):
        return self.trace.host(lambda: base[index.get()])

    def mask(self, handle):
        return self.trace.host(
            lambda: np.asarray(handle.get()).ravel().astype(np.float64)
        )

    def lift(self, handle):
        return self.trace.refresh_leaf(handle)

    def hconcat(self, a, b):
        return self.trace.host(lambda: np.concatenate([a.get(), b.get()]))

    def flatnonzero_eq(self, handle, value):
        return self.trace.host(
            lambda: np.flatnonzero(handle.get() == value), dynamic=True
        )

    def guard(self, fn: Callable[..., bool], *handles) -> bool:
        return self.trace.guard(fn, handles)

    def take_rows(self, tensor, handle):
        return tensor[handle]

    def detach(self, tensor):
        return tensor.detach()


class TraceableLoss:
    """A loss objective the Trainer can run eagerly or compile onto a tape.

    Parameters
    ----------
    program:
        ``program(env) -> LossBundle``; builds the objective through the env
        protocol and ordinary Tensor/Module calls.  All RNG draws of the step
        must happen inside the program (via env or module forwards) so the
        tape can replay them in draw order.
    feeds:
        ``feeds(batch) -> dict[str, np.ndarray]``; per-step host arrays
        (minibatch slices, detached old-encoder representations).  Must be
        RNG-free — it runs before the program, outside the recorded step.
    parameters:
        Optional zero-arg callable returning the current trainable parameter
        list; its identities are part of the tape cache signature, so a
        rebuilt parameter list (new module topology) re-traces automatically.
    """

    def __init__(
        self,
        program: Callable,
        feeds: Callable[[np.ndarray], Dict[str, np.ndarray]],
        parameters: Optional[Callable[[], Sequence]] = None,
    ) -> None:
        self.program = program
        self.feeds = feeds
        self.parameters = parameters

    def eager_result(self, batch: np.ndarray) -> LossResult:
        """One eager evaluation (the default backend's batch-loss callable)."""
        return self.program(EagerEnv(self.feeds(batch))).result()

    def bind(self, backend: str) -> Callable[[np.ndarray], LossResult]:
        """The per-batch callable for the chosen backend."""
        if backend == "eager":
            return self.eager_result
        if backend == "tape":
            return TapeExecutor(self)
        raise ValueError(f"unknown training backend '{backend}'")


class _TapeTotal:
    """Stands in for the differentiable total of a tape-backed step."""

    __slots__ = ("_tape",)

    def __init__(self, tape: Tape) -> None:
        self._tape = tape

    def backward(self) -> None:
        self._tape.run_backward()

    def item(self) -> float:
        return float(self._tape.total.item())


class TapeExecutor:
    """Per-fit cache of compiled tapes, keyed by feed/parameter signature."""

    def __init__(self, loss: TraceableLoss, cache_size: int = 8) -> None:
        self.loss = loss
        self.cache_size = cache_size
        self._tapes: "OrderedDict[tuple, Tape]" = OrderedDict()
        self.compiles = 0
        self.replays = 0
        self.fallbacks = 0

    def _signature(self, feeds: Dict[str, np.ndarray]) -> tuple:
        shapes = tuple(
            sorted((name, array.shape, array.dtype.str) for name, array in feeds.items())
        )
        if self.loss.parameters is None:
            return shapes
        return shapes + tuple(id(p) for p in self.loss.parameters())

    def _compile(self, feeds: Dict[str, np.ndarray]) -> Tape:
        trace = Trace(feeds)
        with activate_trace(trace):
            bundle = self.loss.program(TraceEnv(trace))
            total = bundle.total()
        self.compiles += 1
        return Tape(trace, total, bundle.terms())

    @staticmethod
    def _result(tape: Tape) -> LossResult:
        components = {name: float(node.item()) for name, node in tape.terms}
        components["total"] = float(tape.total.item())
        return LossResult(total=_TapeTotal(tape), components=components)

    def __call__(self, batch: np.ndarray) -> LossResult:
        feeds = self.loss.feeds(batch)
        key = self._signature(feeds)
        tape = self._tapes.get(key)
        if tape is None:
            # Tracing is execution: the compile run *is* this step's forward,
            # consuming feeds and RNG draws exactly once.
            tape = self._compile(feeds)
            self._tapes[key] = tape
            while len(self._tapes) > self.cache_size:
                self._tapes.popitem(last=False)
            return self._result(tape)
        self._tapes.move_to_end(key)
        try:
            tape.run_forward(feeds)
        except PredicateFlip:
            # A baked branch no longer holds for this minibatch; the replay
            # restored the RNG state it consumed, so an eager evaluation of
            # the same feeds reproduces the step bit for bit.
            self.fallbacks += 1
            return self.loss.program(EagerEnv(feeds)).result()
        self.replays += 1
        return self._result(tape)
