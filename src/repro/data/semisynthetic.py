"""Semi-synthetic News / BlogCatalog style benchmark construction.

Implements the outcome/treatment simulation of Sec. IV-A of the paper on top
of the topic-model substrate in :mod:`repro.data.topics`:

* units are documents represented by bag-of-words counts ``x``;
* a topic model provides topic proportions ``z(x)``;
* ``z_c1`` is the topic distribution of one randomly sampled document and
  ``z_c0`` the average topic distribution of all documents;
* outcomes are ``y(x) = C (z(x)·z_c0 + t · z(x)·z_c1) + eps`` with ``C = 60``
  and ``eps ~ N(0, 1)``;
* treatments are sampled from
  ``p(t=1|x) = exp(k z·z_c1) / (exp(k z·z_c0) + exp(k z·z_c1))`` with ``k=10``;
* sequential domains are built from ranges of topics: no overlap of dominant
  topics → *substantial* shift, partial overlap → *moderate* shift, random
  assignment → *no* shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Literal, Optional, Tuple

import numpy as np

from .dataset import CausalDataset
from .streams import ChunkedPopulation
from .topics import TopicCorpusGenerator, TopicModel

__all__ = ["ShiftScenario", "SemiSyntheticConfig", "SemiSyntheticBenchmark", "news_config", "blogcatalog_config"]

ShiftScenario = Literal["substantial", "moderate", "none"]

_VALID_SCENARIOS: Tuple[str, ...] = ("substantial", "moderate", "none")


@dataclass
class SemiSyntheticConfig:
    """Configuration of a semi-synthetic topic benchmark.

    The defaults of :func:`news_config` and :func:`blogcatalog_config` follow
    the paper's dataset sizes; the ``scale`` argument of those helpers shrinks
    the corpus proportionally for quick runs.
    """

    name: str = "news"
    n_units: int = 5000
    vocab_size: int = 3477
    n_topics: int = 50
    doc_length: int = 120
    outcome_scale: float = 60.0
    selection_bias: float = 10.0
    noise_std: float = 1.0
    topic_model_iterations: int = 40
    topic_concentration: float = 0.08
    word_concentration: float = 0.01

    def __post_init__(self) -> None:
        if self.n_units < 10:
            raise ValueError("n_units must be at least 10")
        if self.n_topics < 4:
            raise ValueError("n_topics must be at least 4")
        if self.vocab_size < self.n_topics:
            raise ValueError("vocab_size must be at least n_topics")
        if self.outcome_scale <= 0:
            raise ValueError("outcome_scale must be positive")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


def news_config(scale: float = 1.0) -> SemiSyntheticConfig:
    """News benchmark configuration (5000 units, 3477 vocabulary, 50 topics)."""
    return _scaled_config(
        SemiSyntheticConfig(name="news", n_units=5000, vocab_size=3477, n_topics=50), scale
    )


def blogcatalog_config(scale: float = 1.0) -> SemiSyntheticConfig:
    """BlogCatalog benchmark configuration (5196 units, 2160 vocabulary, 50 topics)."""
    return _scaled_config(
        SemiSyntheticConfig(name="blogcatalog", n_units=5196, vocab_size=2160, n_topics=50), scale
    )


def _scaled_config(config: SemiSyntheticConfig, scale: float) -> SemiSyntheticConfig:
    if scale <= 0.0 or scale > 1.0:
        raise ValueError("scale must lie in (0, 1]")
    if scale == 1.0:
        return config
    return SemiSyntheticConfig(
        name=config.name,
        n_units=max(60, int(config.n_units * scale)),
        vocab_size=max(40, int(config.vocab_size * scale)),
        n_topics=max(10, int(config.n_topics * min(1.0, scale * 2))),
        doc_length=config.doc_length,
        outcome_scale=config.outcome_scale,
        selection_bias=config.selection_bias,
        noise_std=config.noise_std,
        topic_model_iterations=config.topic_model_iterations,
        topic_concentration=config.topic_concentration,
        word_concentration=config.word_concentration,
    )


@dataclass
class _SimulatedPopulation:
    """Internal container for the simulated corpus-level quantities."""

    counts: np.ndarray
    topic_proportions: np.ndarray
    dominant_topics: np.ndarray
    mu0: np.ndarray
    mu1: np.ndarray
    treatments: np.ndarray
    outcomes: np.ndarray
    propensities: np.ndarray


@dataclass
class _OutcomeMechanism:
    """The bounded calibration state needed to label *new* documents.

    Everything a chunk draw needs — the topic-word matrix documents are
    generated from, the fitted topic model that re-estimates ``z(x)``, and
    the two outcome centroids — is O(topics x vocab), independent of how
    many units are ever streamed.  Holding this instead of the population
    is what lets :meth:`SemiSyntheticBenchmark.iter_chunks` produce a
    million rows without a million-row resident array.
    """

    topic_word: np.ndarray
    topic_model: TopicModel
    centroid_control: np.ndarray
    centroid_treated: np.ndarray


class SemiSyntheticBenchmark:
    """Builds sequential-domain causal datasets from a topic-structured corpus.

    Parameters
    ----------
    config:
        Benchmark configuration (see :func:`news_config` / :func:`blogcatalog_config`).
    seed:
        Seed of the internal random generator; every derived quantity
        (corpus, topic model, treatments, noise, splits) is reproducible.
    """

    def __init__(self, config: SemiSyntheticConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._population: Optional[_SimulatedPopulation] = None
        self._mechanism: Optional[_OutcomeMechanism] = None
        self._summary: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------ #
    # population simulation
    # ------------------------------------------------------------------ #
    def _corpus_generator(self) -> TopicCorpusGenerator:
        config = self.config
        return TopicCorpusGenerator(
            n_topics=config.n_topics,
            vocab_size=config.vocab_size,
            doc_length=config.doc_length,
            topic_concentration=config.topic_concentration,
            word_concentration=config.word_concentration,
        )

    def _simulate_population(self) -> _SimulatedPopulation:
        if self._population is not None:
            return self._population
        return self._build(keep_population=True)

    def _build(self, keep_population: bool) -> _SimulatedPopulation:
        """Simulate the calibration population (draw order is load-bearing).

        Always fills the mechanism and summary caches; retains the full
        population container only when ``keep_population`` — the chunked
        path builds transiently, extracts the bounded mechanism, and lets
        the big arrays go.
        """
        config = self.config
        rng = np.random.default_rng(self.seed)

        generator = self._corpus_generator()
        corpus = generator.generate(config.n_units, rng)

        topic_model = TopicModel(
            n_topics=config.n_topics, n_iterations=config.topic_model_iterations
        )
        z = topic_model.fit_transform(corpus.counts, rng=rng)

        # Centroids: z_c0 is the mean topic representation, z_c1 the topic
        # representation of one randomly sampled document (Sec. IV-A).
        centroid_control = z.mean(axis=0)
        centroid_treated = z[rng.integers(0, z.shape[0])]

        affinity_control = z @ centroid_control
        affinity_treated = z @ centroid_treated

        mu0 = config.outcome_scale * affinity_control
        mu1 = config.outcome_scale * (affinity_control + affinity_treated)

        k = config.selection_bias
        logits = k * (affinity_treated - affinity_control)
        propensities = 1.0 / (1.0 + np.exp(-logits))
        treatments = (rng.random(config.n_units) < propensities).astype(np.int64)

        noise = rng.normal(0.0, config.noise_std, size=config.n_units)
        outcomes = np.where(treatments == 1, mu1, mu0) + noise

        dominant = np.argmax(z, axis=1)
        population = _SimulatedPopulation(
            counts=corpus.counts,
            topic_proportions=z,
            dominant_topics=dominant,
            mu0=mu0,
            mu1=mu1,
            treatments=treatments,
            outcomes=outcomes,
            propensities=propensities,
        )
        self._mechanism = _OutcomeMechanism(
            topic_word=corpus.topic_word,
            topic_model=topic_model,
            centroid_control=centroid_control,
            centroid_treated=centroid_treated,
        )
        self._summary = self._summarise(population)
        if keep_population:
            self._population = population
        return population

    def mechanism(self) -> _OutcomeMechanism:
        """The bounded outcome mechanism (calibrating transiently if needed)."""
        if self._mechanism is None:
            self._build(keep_population=self._population is not None)
        return self._mechanism

    def release_population(self) -> None:
        """Drop the resident full population; mechanism and summary survive.

        Chunk iteration and :meth:`population_summary` keep working from the
        bounded calibration state; a later :meth:`generate_domain_pair`
        rebuilds the identical population from the seed.
        """
        self._population = None

    # ------------------------------------------------------------------ #
    # chunked streaming
    # ------------------------------------------------------------------ #
    def _labelled_chunk(self, key: int, rows: int) -> CausalDataset:
        """Draw and label ``rows`` fresh documents as chunk ``key``.

        A pure function of ``(self.seed, key, rows)``: documents come from
        the calibrated topic-word matrix, topic proportions from the fitted
        model, outcomes/treatments from the stored centroids — the same
        Sec. IV-A mechanism as the monolithic population, never touching it.
        """
        if rows < 1:
            raise ValueError("rows must be at least 1")
        config = self.config
        mechanism = self.mechanism()
        rng = np.random.default_rng([self.seed, 1009, key])
        corpus = self._corpus_generator().generate_with_topics(
            rows, rng, mechanism.topic_word
        )
        z = mechanism.topic_model.transform(corpus.counts, rng=rng)

        affinity_control = z @ mechanism.centroid_control
        affinity_treated = z @ mechanism.centroid_treated
        mu0 = config.outcome_scale * affinity_control
        mu1 = config.outcome_scale * (affinity_control + affinity_treated)
        logits = config.selection_bias * (affinity_treated - affinity_control)
        propensities = 1.0 / (1.0 + np.exp(-logits))
        treatments = (rng.random(rows) < propensities).astype(np.int64)
        noise = rng.normal(0.0, config.noise_std, size=rows)
        outcomes = np.where(treatments == 1, mu1, mu0) + noise

        return CausalDataset(
            covariates=corpus.counts,
            treatments=treatments,
            outcomes=outcomes,
            mu0=mu0,
            mu1=mu1,
            domain=0,
            name=f"{config.name}/chunk{key}",
        )

    def chunked(self) -> ChunkedPopulation:
        """This benchmark as a :class:`~repro.data.streams.ChunkedPopulation`."""
        return ChunkedPopulation(
            self._labelled_chunk, min_rows=1, name=f"{self.config.name}/chunked"
        )

    def iter_chunks(
        self, chunk_rows: int, n_chunks: Optional[int] = None, start_key: int = 0
    ) -> Iterator[CausalDataset]:
        """Stream the population as deterministic ``chunk_rows``-sized chunks.

        Peak memory is one chunk plus the bounded mechanism — a million-row
        stream never exists as a single array.  Replaying the same seed and
        keys reproduces every chunk bitwise.
        """
        return self.chunked().iter_chunks(chunk_rows, n_chunks, start_key=start_key)

    # ------------------------------------------------------------------ #
    # domain construction
    # ------------------------------------------------------------------ #
    def _topic_ranges(self, scenario: ShiftScenario) -> Tuple[np.ndarray, np.ndarray]:
        """Return the topic index sets defining the two domains."""
        n_topics = self.config.n_topics
        half = n_topics // 2
        if scenario == "substantial":
            first = np.arange(0, half)
            second = np.arange(half, n_topics)
        elif scenario == "moderate":
            # Paper: topics 1-35 vs 16-50 out of 50, i.e. 70% of the range each
            # with a 40% overlap in the middle.
            upper_first = int(round(0.7 * n_topics))
            lower_second = int(round(0.3 * n_topics))
            first = np.arange(0, upper_first)
            second = np.arange(lower_second, n_topics)
        elif scenario == "none":
            first = np.arange(0, n_topics)
            second = np.arange(0, n_topics)
        else:
            raise ValueError(f"unknown shift scenario '{scenario}'; valid: {_VALID_SCENARIOS}")
        return first, second

    def generate_domain_pair(
        self, scenario: ShiftScenario = "substantial"
    ) -> Tuple[CausalDataset, CausalDataset]:
        """Generate the two sequential domains for the given shift scenario.

        Under *substantial* and *moderate* shift, units are assigned to a
        domain according to their dominant topic (units whose dominant topic
        is in the overlap are split at random).  Under *no* shift the units
        are split uniformly at random, so both domains share one distribution.
        """
        population = self._simulate_population()
        rng = np.random.default_rng(self.seed + 1)
        n = len(population.outcomes)

        if scenario == "none":
            assignment = rng.random(n) < 0.5
            first_idx = np.flatnonzero(assignment)
            second_idx = np.flatnonzero(~assignment)
        else:
            first_topics, second_topics = self._topic_ranges(scenario)
            in_first = np.isin(population.dominant_topics, first_topics)
            in_second = np.isin(population.dominant_topics, second_topics)
            overlap = in_first & in_second
            only_first = in_first & ~in_second
            only_second = in_second & ~in_first
            # Units in the overlap region go to either domain with equal probability.
            overlap_to_first = overlap & (rng.random(n) < 0.5)
            first_mask = only_first | overlap_to_first
            second_mask = only_second | (overlap & ~overlap_to_first)
            first_idx = np.flatnonzero(first_mask)
            second_idx = np.flatnonzero(second_mask)

        return (
            self._build_dataset(first_idx, domain=0, scenario=scenario),
            self._build_dataset(second_idx, domain=1, scenario=scenario),
        )

    def _build_dataset(
        self, indices: np.ndarray, domain: int, scenario: ShiftScenario
    ) -> CausalDataset:
        population = self._simulate_population()
        if indices.size < 10:
            raise ValueError(
                "domain split produced fewer than 10 units; increase n_units or use a different seed"
            )
        return CausalDataset(
            covariates=population.counts[indices],
            treatments=population.treatments[indices],
            outcomes=population.outcomes[indices],
            mu0=population.mu0[indices],
            mu1=population.mu1[indices],
            domain=domain,
            name=f"{self.config.name}/{scenario}/domain{domain + 1}",
        )

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    @staticmethod
    def _summarise(population: _SimulatedPopulation) -> Dict[str, float]:
        return {
            "n_units": float(len(population.outcomes)),
            "treated_fraction": float(np.mean(population.treatments)),
            "true_ate": float(np.mean(population.mu1 - population.mu0)),
            "outcome_mean": float(np.mean(population.outcomes)),
            "outcome_std": float(np.std(population.outcomes)),
            "mean_propensity": float(np.mean(population.propensities)),
        }

    def population_summary(self) -> Dict[str, float]:
        """Summary statistics of the simulated population.

        Fast path: the summary is cached at calibration time, so callers that
        only need the scalars (sweep reports, the chunked SLO path) never
        force — or re-force — the full population to stay resident.
        """
        if self._summary is None:
            self._build(keep_population=self._population is not None)
        return dict(self._summary)
