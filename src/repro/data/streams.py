"""Domain streams: sequential availability of observational datasets.

The continual-learning protocol of the paper (Figure 4) is that datasets
``D_1, ..., D_d`` become available one at a time; when ``D_d`` arrives the
raw data of ``D_1 ... D_{d-1}`` are no longer accessible.  :class:`DomainStream`
packages that protocol: it holds the per-domain train/val/test splits, yields
only the training data of the current domain to the learner, and keeps the
held-out test sets around for evaluation of *all seen* domains (which the
evaluation, unlike the learner, is allowed to use).

:class:`ChunkedPopulation` is the streaming counterpart for populations too
large to materialise: it wraps a deterministic ``chunk_fn(key, rows)`` (the
``iter_chunks`` factories of the synthetic and semi-synthetic generators) and
serves fixed-size labelled chunks or bare covariate rows keyed by an integer
— the contract the SLO load harness replays million-row tapes against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .dataset import CausalDataset, train_val_test_split

__all__ = ["ChunkedPopulation", "DomainSplit", "DomainStream"]


@dataclass
class DomainSplit:
    """Train/validation/test split of one domain."""

    train: CausalDataset
    val: CausalDataset
    test: CausalDataset

    @property
    def name(self) -> str:
        """Name of the underlying domain dataset."""
        return self.train.name


class ChunkedPopulation:
    """A population served as deterministic fixed-size chunks, never whole.

    Parameters
    ----------
    chunk_fn:
        ``chunk_fn(key, rows) -> CausalDataset`` — a pure function of its
        arguments (and whatever seeds the factory closed over), so the same
        key always reproduces the same chunk bitwise.  Generator minimums
        (e.g. the synthetic generator's 10-unit floor) are the factory's
        business: :meth:`rows_for` over-asks and slices, so any ``rows >= 1``
        is valid here.
    min_rows:
        Smallest row count ``chunk_fn`` accepts; smaller requests are padded
        up to it and sliced back down.
    name:
        Diagnostic label.
    """

    def __init__(
        self,
        chunk_fn: Callable[[int, int], CausalDataset],
        min_rows: int = 10,
        name: str = "chunked",
    ) -> None:
        if min_rows < 1:
            raise ValueError("min_rows must be at least 1")
        self._chunk_fn = chunk_fn
        self.min_rows = min_rows
        self.name = name

    def chunk(self, key: int, rows: int) -> CausalDataset:
        """Labelled chunk ``key`` with exactly ``rows`` rows."""
        if rows < 1:
            raise ValueError("rows must be at least 1")
        dataset = self._chunk_fn(key, max(rows, self.min_rows))
        if len(dataset.outcomes) < rows:
            raise ValueError(
                f"chunk_fn returned {len(dataset.outcomes)} rows; needed {rows}"
            )
        if len(dataset.outcomes) == rows:
            return dataset
        return CausalDataset(
            covariates=dataset.covariates[:rows],
            treatments=dataset.treatments[:rows],
            outcomes=dataset.outcomes[:rows],
            mu0=dataset.mu0[:rows],
            mu1=dataset.mu1[:rows],
            domain=dataset.domain,
            name=dataset.name,
        )

    def rows_for(self, key: int, rows: int) -> np.ndarray:
        """Covariate rows of chunk ``key`` (the query-traffic fast path)."""
        return self.chunk(key, rows).covariates

    def iter_chunks(
        self, chunk_rows: int, n_chunks: Optional[int] = None, start_key: int = 0
    ) -> Iterator[CausalDataset]:
        """Yield successive ``chunk_rows``-sized chunks; O(1 chunk) memory."""
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        if n_chunks is not None and n_chunks < 1:
            raise ValueError("n_chunks must be at least 1 (or None for unbounded)")
        key = start_key
        while n_chunks is None or key < start_key + n_chunks:
            yield self.chunk(key, chunk_rows)
            key += 1


class DomainStream:
    """Sequence of domains made available one at a time.

    Parameters
    ----------
    datasets:
        The per-domain datasets, in arrival order.
    train_fraction, val_fraction:
        Split fractions applied to every domain (paper: 60/20/20).
    seed:
        Seed for the split randomisation.  The same ``(datasets, fractions,
        seed)`` always produces bit-identical splits, so experiment runs are
        reproducible end to end; the seed is kept on :attr:`seed` so several
        runners can share one stream instead of re-splitting per strategy.
    """

    def __init__(
        self,
        datasets: Sequence[CausalDataset],
        train_fraction: float = 0.6,
        val_fraction: float = 0.2,
        seed: int = 0,
    ) -> None:
        if not datasets:
            raise ValueError("DomainStream requires at least one dataset")
        dims = {d.n_features for d in datasets}
        if len(dims) != 1:
            raise ValueError(f"all domains must share the covariate dimension; got {sorted(dims)}")
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._splits: List[DomainSplit] = []
        for dataset in datasets:
            train, val, test = train_val_test_split(
                dataset, train_fraction=train_fraction, val_fraction=val_fraction, rng=rng
            )
            self._splits.append(DomainSplit(train=train, val=val, test=test))

    # ------------------------------------------------------------------ #
    # sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._splits)

    def __iter__(self) -> Iterator[DomainSplit]:
        return iter(self._splits)

    def __getitem__(self, index: int) -> DomainSplit:
        return self._splits[index]

    @property
    def n_features(self) -> int:
        """Covariate dimensionality shared by all domains."""
        return self._splits[0].train.n_features

    # ------------------------------------------------------------------ #
    # continual-learning protocol helpers
    # ------------------------------------------------------------------ #
    def train_data(self, domain_index: int) -> CausalDataset:
        """Training data of the given domain (the only data the learner sees)."""
        return self._splits[domain_index].train

    def val_data(self, domain_index: int) -> CausalDataset:
        """Validation data of the given domain."""
        return self._splits[domain_index].val

    def test_sets_seen(self, up_to_domain: int) -> List[CausalDataset]:
        """Test sets of every domain seen so far (inclusive)."""
        if not 0 <= up_to_domain < len(self):
            raise IndexError(f"domain index {up_to_domain} out of range")
        return [split.test for split in self._splits[: up_to_domain + 1]]

    def previous_and_new_test(self, new_domain: int) -> Tuple[CausalDataset, CausalDataset]:
        """Return (previous-domains test set, new-domain test set).

        For the two-domain tables of the paper this is simply
        ``(test of D1, test of D2)``; with more domains the previous test sets
        are concatenated.
        """
        if new_domain <= 0:
            raise ValueError("previous_and_new_test requires new_domain >= 1")
        previous = CausalDataset.concat([split.test for split in self._splits[:new_domain]])
        return previous, self._splits[new_domain].test

    def joint_training_data(self, up_to_domain: int) -> CausalDataset:
        """Union of all training data up to a domain (used by CFR-C only)."""
        return CausalDataset.concat(
            [split.train for split in self._splits[: up_to_domain + 1]]
        )
