"""Dataset containers for observational causal-inference data.

The central object is :class:`CausalDataset`, a unit-level container of
covariates, binary treatments, factual outcomes and (when the data are
synthetic or semi-synthetic) the true potential outcomes ``mu0``/``mu1`` used
to evaluate PEHE and the ATE error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CausalDataset", "train_val_test_split", "minibatches"]


@dataclass
class CausalDataset:
    """Observational dataset with (optionally) known potential outcomes.

    Attributes
    ----------
    covariates:
        Array ``(n, p)`` of observed covariates ``X``.
    treatments:
        Binary array ``(n,)`` of treatment assignments ``T``.
    outcomes:
        Array ``(n,)`` of factual outcomes ``Y`` (the outcome under the
        received treatment).
    mu0, mu1:
        Noise-free potential outcomes under control / treatment.  Present for
        synthetic and semi-synthetic data; ``None`` for purely observational
        data, in which case PEHE cannot be computed.
    domain:
        Integer tag of the data source / domain the units came from.
    name:
        Human-readable dataset name (used in reports).
    """

    covariates: np.ndarray
    treatments: np.ndarray
    outcomes: np.ndarray
    mu0: Optional[np.ndarray] = None
    mu1: Optional[np.ndarray] = None
    domain: int = 0
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.covariates = np.asarray(self.covariates, dtype=np.float64)
        self.treatments = np.asarray(self.treatments, dtype=np.int64).ravel()
        self.outcomes = np.asarray(self.outcomes, dtype=np.float64).ravel()
        if self.covariates.ndim != 2:
            raise ValueError("covariates must be a 2-D array (n, p)")
        n = self.covariates.shape[0]
        if self.treatments.shape[0] != n or self.outcomes.shape[0] != n:
            raise ValueError("covariates, treatments and outcomes must agree on n")
        unexpected = set(np.unique(self.treatments)) - {0, 1}
        if unexpected and n > 0:
            raise ValueError(f"treatments must be binary; found {sorted(unexpected)}")
        for attr in ("mu0", "mu1"):
            value = getattr(self, attr)
            if value is not None:
                value = np.asarray(value, dtype=np.float64).ravel()
                if value.shape[0] != n:
                    raise ValueError(f"{attr} must have length n={n}")
                setattr(self, attr, value)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.covariates.shape[0]

    @property
    def n_features(self) -> int:
        """Number of covariates per unit."""
        return self.covariates.shape[1]

    @property
    def n_treated(self) -> int:
        """Number of treated units."""
        return int(np.sum(self.treatments == 1))

    @property
    def n_control(self) -> int:
        """Number of control units."""
        return int(np.sum(self.treatments == 0))

    @property
    def has_counterfactuals(self) -> bool:
        """Whether the true potential outcomes are available."""
        return self.mu0 is not None and self.mu1 is not None

    @property
    def true_ite(self) -> np.ndarray:
        """True individual treatment effects ``mu1 - mu0``."""
        if not self.has_counterfactuals:
            raise ValueError("true ITE unavailable: dataset has no counterfactual outcomes")
        return self.mu1 - self.mu0

    @property
    def true_ate(self) -> float:
        """True average treatment effect."""
        return float(np.mean(self.true_ite))

    # ------------------------------------------------------------------ #
    # indexing / combination
    # ------------------------------------------------------------------ #
    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "CausalDataset":
        """Return the dataset restricted to ``indices`` (copy)."""
        indices = np.asarray(indices)
        return CausalDataset(
            covariates=self.covariates[indices].copy(),
            treatments=self.treatments[indices].copy(),
            outcomes=self.outcomes[indices].copy(),
            mu0=None if self.mu0 is None else self.mu0[indices].copy(),
            mu1=None if self.mu1 is None else self.mu1[indices].copy(),
            domain=self.domain,
            name=name if name is not None else self.name,
        )

    @classmethod
    def concat(cls, datasets: "Sequence[CausalDataset]", name: Optional[str] = None) -> "CausalDataset":
        """Concatenate several datasets (left-folded :meth:`merge`)."""
        if not datasets:
            raise ValueError("concat requires at least one dataset")
        merged = datasets[0]
        for extra in datasets[1:]:
            merged = merged.merge(extra)
        if name is not None:
            if merged is datasets[0]:
                # Single dataset: never rename the caller's object in place.
                merged = merged.subset(np.arange(len(merged)), name=name)
            else:
                merged.name = name
        return merged

    def merge(self, other: "CausalDataset", name: Optional[str] = None) -> "CausalDataset":
        """Concatenate two datasets (used by the CFR-C joint-retraining strategy)."""
        if self.n_features != other.n_features:
            raise ValueError(
                f"cannot merge datasets with different covariate dims "
                f"({self.n_features} vs {other.n_features})"
            )
        both_have_cf = self.has_counterfactuals and other.has_counterfactuals
        return CausalDataset(
            covariates=np.concatenate([self.covariates, other.covariates], axis=0),
            treatments=np.concatenate([self.treatments, other.treatments]),
            outcomes=np.concatenate([self.outcomes, other.outcomes]),
            mu0=np.concatenate([self.mu0, other.mu0]) if both_have_cf else None,
            mu1=np.concatenate([self.mu1, other.mu1]) if both_have_cf else None,
            domain=self.domain,
            name=name if name is not None else f"{self.name}+{other.name}",
        )


def train_val_test_split(
    dataset: CausalDataset,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[CausalDataset, CausalDataset, CausalDataset]:
    """Random train/validation/test split following the paper's 60/20/20.

    The split is performed uniformly at random over units; treatment
    proportions are therefore approximately preserved in expectation.

    Raises
    ------
    ValueError
        If the rounded split sizes would leave any of the three sets empty
        (small domains, extreme fractions).  An empty validation or test set
        would not fail here but poison everything downstream — standardisers
        fitted on zero rows, NaN metrics from ``evaluate_many`` — so the
        offending sizes are reported where the cause is still visible.
    """
    if not 0.0 < train_fraction < 1.0 or not 0.0 <= val_fraction < 1.0:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + val_fraction >= 1.0:
        raise ValueError("train_fraction + val_fraction must leave room for a test set")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    permutation = rng.permutation(n)
    n_train = int(round(train_fraction * n))
    n_val = int(round(val_fraction * n))
    n_test = n - n_train - n_val
    if n_train <= 0 or n_val <= 0 or n_test <= 0:
        raise ValueError(
            f"cannot split the {n} units of '{dataset.name}' into non-empty "
            f"train/val/test sets: fractions "
            f"({train_fraction:g}, {val_fraction:g}, "
            f"{1.0 - train_fraction - val_fraction:g}) round to sizes "
            f"(train={n_train}, val={n_val}, test={n_test}); "
            f"use a larger domain or adjust the fractions"
        )
    train_idx = permutation[:n_train]
    val_idx = permutation[n_train : n_train + n_val]
    test_idx = permutation[n_train + n_val :]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}/train"),
        dataset.subset(val_idx, name=f"{dataset.name}/val"),
        dataset.subset(test_idx, name=f"{dataset.name}/test"),
    )


# Fallback generator for callers that pass neither rng nor seed: seeded once
# per process so batch order is reproducible run-to-run, while successive
# calls (epochs) still draw fresh permutations.
_FALLBACK_RNG = np.random.default_rng(0)


def minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
    seed: Optional[int] = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in minibatches.

    Shuffling is driven by ``rng`` when given; by a fresh generator seeded
    with ``seed`` when that is given; otherwise by a process-wide generator
    with a fixed seed.  Global NumPy state is never consulted, so batch order
    is bit-reproducible run-to-run in every case, and the default still
    reshuffles on every call (epoch) within a process.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    indices = np.arange(n)
    if shuffle:
        if rng is None:
            rng = _FALLBACK_RNG if seed is None else np.random.default_rng(seed)
        indices = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]
