"""Datasets: containers, streams, semi-synthetic benchmarks and the synthetic generator."""

from .dataset import CausalDataset, train_val_test_split, minibatches
from .streams import ChunkedPopulation, DomainSplit, DomainStream
from .topics import TopicCorpus, TopicCorpusGenerator, TopicModel
from .semisynthetic import (
    SemiSyntheticBenchmark,
    SemiSyntheticConfig,
    ShiftScenario,
    blogcatalog_config,
    news_config,
)
from .news import NewsBenchmark, load_news_domain_pair
from .blogcatalog import BlogCatalogBenchmark, load_blogcatalog_domain_pair
from .synthetic import (
    SyntheticConfig,
    SyntheticDomainGenerator,
    build_block_correlation,
    hub_toeplitz_correlation,
)
from .drift import DRIFT_KINDS, DRIFT_MODES, DriftConfig, DriftScenario, TrafficTick

__all__ = [
    "CausalDataset",
    "train_val_test_split",
    "minibatches",
    "ChunkedPopulation",
    "DomainSplit",
    "DomainStream",
    "TopicCorpus",
    "TopicCorpusGenerator",
    "TopicModel",
    "SemiSyntheticBenchmark",
    "SemiSyntheticConfig",
    "ShiftScenario",
    "news_config",
    "blogcatalog_config",
    "NewsBenchmark",
    "load_news_domain_pair",
    "BlogCatalogBenchmark",
    "load_blogcatalog_domain_pair",
    "SyntheticConfig",
    "SyntheticDomainGenerator",
    "hub_toeplitz_correlation",
    "build_block_correlation",
    "DRIFT_KINDS",
    "DRIFT_MODES",
    "DriftConfig",
    "DriftScenario",
    "TrafficTick",
]
