"""News benchmark (semi-synthetic NY-Times-style corpus).

The paper's News benchmark consists of 5000 news items represented by word
counts over a 3477-word vocabulary, with 50 LDA topics, outcome scale C=60 and
selection-bias strength k=10.  The original UCI bag-of-words corpus is not
available offline, so the corpus itself is produced by the topic-model
substrate (see DESIGN.md, substitutions).  Everything downstream — outcome and
treatment simulation, topic-range domain splits — follows the paper.
"""

from __future__ import annotations

from typing import Tuple

from .dataset import CausalDataset
from .semisynthetic import SemiSyntheticBenchmark, ShiftScenario, news_config

__all__ = ["NewsBenchmark", "load_news_domain_pair"]


class NewsBenchmark(SemiSyntheticBenchmark):
    """News benchmark with the paper's dimensions (scaled by ``scale``)."""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        super().__init__(news_config(scale), seed=seed)


def load_news_domain_pair(
    scenario: ShiftScenario = "substantial",
    scale: float = 1.0,
    seed: int = 0,
) -> Tuple[CausalDataset, CausalDataset]:
    """Convenience loader returning the two sequential News domains.

    Parameters
    ----------
    scenario:
        ``"substantial"``, ``"moderate"`` or ``"none"`` domain shift.
    scale:
        Fraction of the paper-scale corpus to generate (1.0 = 5000 units,
        3477 words).  Smaller scales are used by tests and quick benchmarks.
    seed:
        Random seed controlling the corpus, simulation and split.
    """
    return NewsBenchmark(scale=scale, seed=seed).generate_domain_pair(scenario)
