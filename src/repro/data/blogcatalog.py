"""BlogCatalog benchmark (semi-synthetic blogger-keyword corpus).

The paper's BlogCatalog benchmark contains 5196 bloggers described by
bag-of-words keyword vectors over a 2160-word vocabulary, with the same
outcome/treatment simulation as the News benchmark.  As with News, the raw
corpus is not available offline and is produced by the topic-model substrate;
see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from typing import Tuple

from .dataset import CausalDataset
from .semisynthetic import SemiSyntheticBenchmark, ShiftScenario, blogcatalog_config

__all__ = ["BlogCatalogBenchmark", "load_blogcatalog_domain_pair"]


class BlogCatalogBenchmark(SemiSyntheticBenchmark):
    """BlogCatalog benchmark with the paper's dimensions (scaled by ``scale``)."""

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        super().__init__(blogcatalog_config(scale), seed=seed)


def load_blogcatalog_domain_pair(
    scenario: ShiftScenario = "substantial",
    scale: float = 1.0,
    seed: int = 0,
) -> Tuple[CausalDataset, CausalDataset]:
    """Convenience loader returning the two sequential BlogCatalog domains."""
    return BlogCatalogBenchmark(scale=scale, seed=seed).generate_domain_pair(scenario)
