"""Topic-model substrate used by the semi-synthetic News/BlogCatalog benchmarks.

The paper builds its News and BlogCatalog benchmarks from real bag-of-words
corpora plus an LDA topic model: outcomes and treatments are functions of a
document's topic proportions ``z(x)``, and the sequential domains are defined
by ranges of LDA topics.  Those corpora are not available offline, so this
module provides

* :class:`TopicCorpusGenerator` — a generative model of topic-structured
  bag-of-words corpora (Dirichlet document-topic mixtures, sparse topic-word
  distributions, Poisson document lengths), and
* :class:`TopicModel` — a lightweight PLSA-style topic model fitted with
  multiplicative (EM) updates, used to *re-estimate* topic proportions from
  word counts exactly as the paper re-estimates them with LDA.

Together they preserve the structural properties the benchmark relies on:
covariates are high-dimensional sparse counts, the topic proportions driving
outcomes/treatments are only indirectly observable, and topic ranges induce
controllable domain shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["TopicCorpus", "TopicCorpusGenerator", "TopicModel"]


@dataclass
class TopicCorpus:
    """A generated bag-of-words corpus with its latent topic structure.

    Attributes
    ----------
    counts:
        Word-count matrix of shape ``(n_docs, vocab_size)``.
    true_topic_mixtures:
        Latent document-topic proportions used during generation,
        shape ``(n_docs, n_topics)``.
    topic_word:
        Topic-word probability matrix, shape ``(n_topics, vocab_size)``.
    dominant_topics:
        Index of each document's most probable latent topic, shape ``(n_docs,)``.
    """

    counts: np.ndarray
    true_topic_mixtures: np.ndarray
    topic_word: np.ndarray
    dominant_topics: np.ndarray

    @property
    def n_documents(self) -> int:
        return self.counts.shape[0]

    @property
    def vocab_size(self) -> int:
        return self.counts.shape[1]

    @property
    def n_topics(self) -> int:
        return self.topic_word.shape[0]


class TopicCorpusGenerator:
    """Generator of topic-structured bag-of-words corpora.

    Parameters
    ----------
    n_topics:
        Number of latent topics (the paper uses 50).
    vocab_size:
        Vocabulary size (3477 for News, 2160 for BlogCatalog).
    doc_length:
        Mean document length; actual lengths are Poisson distributed around it.
    topic_concentration:
        Dirichlet concentration of document-topic mixtures.  Small values give
        documents dominated by a single topic, which makes topic-range domain
        splits produce pronounced covariate shift.
    word_concentration:
        Dirichlet concentration of topic-word distributions.  Small values
        give sparse, well-separated topics.
    """

    def __init__(
        self,
        n_topics: int = 50,
        vocab_size: int = 3477,
        doc_length: int = 120,
        topic_concentration: float = 0.08,
        word_concentration: float = 0.01,
    ) -> None:
        if n_topics < 2:
            raise ValueError("need at least two topics")
        if vocab_size < n_topics:
            raise ValueError("vocab_size must be at least n_topics")
        if doc_length <= 0:
            raise ValueError("doc_length must be positive")
        self.n_topics = n_topics
        self.vocab_size = vocab_size
        self.doc_length = doc_length
        self.topic_concentration = topic_concentration
        self.word_concentration = word_concentration

    def generate(self, n_documents: int, rng: np.random.Generator) -> TopicCorpus:
        """Generate a corpus of ``n_documents`` bag-of-words documents."""
        if n_documents <= 0:
            raise ValueError("n_documents must be positive")
        topic_word = rng.dirichlet(
            np.full(self.vocab_size, self.word_concentration), size=self.n_topics
        )
        return self.generate_with_topics(n_documents, rng, topic_word)

    def generate_with_topics(
        self, n_documents: int, rng: np.random.Generator, topic_word: np.ndarray
    ) -> TopicCorpus:
        """Generate documents from a *given* topic-word matrix.

        This is the streaming building block: a calibration corpus fixes
        ``topic_word`` once, after which arbitrarily many document chunks can
        be drawn from the same topics without regenerating (or retaining)
        the original corpus — each chunk is a pure function of its ``rng``.
        """
        if n_documents <= 0:
            raise ValueError("n_documents must be positive")
        topic_word = np.asarray(topic_word, dtype=np.float64)
        if topic_word.shape != (self.n_topics, self.vocab_size):
            raise ValueError(
                f"topic_word must have shape ({self.n_topics}, {self.vocab_size}); "
                f"got {tuple(topic_word.shape)}"
            )
        mixtures = rng.dirichlet(
            np.full(self.n_topics, self.topic_concentration), size=n_documents
        )
        lengths = rng.poisson(self.doc_length, size=n_documents)
        lengths = np.maximum(lengths, 10)

        doc_word_probs = mixtures @ topic_word
        counts = np.zeros((n_documents, self.vocab_size), dtype=np.float64)
        for i in range(n_documents):
            counts[i] = rng.multinomial(lengths[i], doc_word_probs[i])

        dominant = np.argmax(mixtures, axis=1)
        return TopicCorpus(
            counts=counts,
            true_topic_mixtures=mixtures,
            topic_word=topic_word,
            dominant_topics=dominant,
        )


class TopicModel:
    """PLSA-style topic model fitted with multiplicative EM updates.

    The model factorises the count matrix ``N ≈ diag(len) · Θ · Φ`` where
    ``Θ`` holds document-topic proportions and ``Φ`` topic-word distributions.
    It plays the role of the LDA model the paper trains on the corpus: the
    estimated document-topic proportions ``z(x)`` are what outcomes and
    treatment propensities are computed from.
    """

    def __init__(self, n_topics: int = 50, n_iterations: int = 60, smoothing: float = 1e-3) -> None:
        if n_topics < 2:
            raise ValueError("need at least two topics")
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        self.n_topics = n_topics
        self.n_iterations = n_iterations
        self.smoothing = smoothing
        self.topic_word_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, counts: np.ndarray, rng: Optional[np.random.Generator] = None) -> "TopicModel":
        """Fit topic-word distributions to a count matrix."""
        counts = self._validate_counts(counts)
        rng = rng if rng is not None else np.random.default_rng()
        n_docs, vocab = counts.shape
        theta = rng.dirichlet(np.ones(self.n_topics), size=n_docs)
        phi = rng.dirichlet(np.ones(vocab), size=self.n_topics)
        theta, phi = self._em(counts, theta, phi, update_phi=True)
        self.topic_word_ = phi
        return self

    def transform(self, counts: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Estimate document-topic proportions for new documents."""
        if self.topic_word_ is None:
            raise RuntimeError("TopicModel.transform called before fit")
        counts = self._validate_counts(counts)
        if counts.shape[1] != self.topic_word_.shape[1]:
            raise ValueError("vocabulary size does not match the fitted model")
        rng = rng if rng is not None else np.random.default_rng()
        theta = rng.dirichlet(np.ones(self.n_topics), size=counts.shape[0])
        theta, _ = self._em(counts, theta, self.topic_word_, update_phi=False)
        return theta

    def fit_transform(
        self, counts: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Fit the model and return document-topic proportions of the input."""
        rng = rng if rng is not None else np.random.default_rng()
        counts = self._validate_counts(counts)
        n_docs, vocab = counts.shape
        theta = rng.dirichlet(np.ones(self.n_topics), size=n_docs)
        phi = rng.dirichlet(np.ones(vocab), size=self.n_topics)
        theta, phi = self._em(counts, theta, phi, update_phi=True)
        self.topic_word_ = phi
        return theta

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _validate_counts(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 2:
            raise ValueError("counts must be a 2-D (n_docs, vocab) matrix")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        return counts

    def _em(
        self,
        counts: np.ndarray,
        theta: np.ndarray,
        phi: np.ndarray,
        update_phi: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Multiplicative EM updates minimising the KL divergence to the counts."""
        eps = 1e-12
        for _ in range(self.n_iterations):
            reconstruction = theta @ phi + eps
            ratio = counts / reconstruction
            theta = theta * (ratio @ phi.T)
            theta = theta + self.smoothing
            theta = theta / theta.sum(axis=1, keepdims=True)
            if update_phi:
                reconstruction = theta @ phi + eps
                ratio = counts / reconstruction
                phi = phi * (theta.T @ ratio)
                phi = phi + self.smoothing
                phi = phi / phi.sum(axis=1, keepdims=True)
        return theta, phi
