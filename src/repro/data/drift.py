"""Parameterised drift injectors over the synthetic generator.

The monitoring subsystem (:mod:`repro.monitor`) needs traffic whose
distribution shifts in controlled, diverse ways.  :class:`DriftScenario`
turns a :class:`~repro.data.synthetic.SyntheticDomainGenerator` into a
**traffic tape** — a sequence of labelled ticks — across a scenario grid:

* **covariate shift**: query covariates move from the base domain's
  distribution toward another domain's (the generator's own inter-domain
  mean/covariance shift), interpolated by ``magnitude``.  The causal
  mechanism (``tau``, ``g``, the propensity) is shared across domains, so
  ground-truth labels remain well-defined for every shifted row.
* **concept shift**: covariates stay on the base distribution while the
  treatment-effect surface ``tau`` blends toward an independently drawn
  mechanism.  Covariate-window detectors *cannot* see this (the paper's
  monitors watch ``X``, not ``Y | X``) — the scenario exists precisely to
  pin that blind spot in tests and docs.
* **abrupt vs gradual**: the drifted fraction of each tick's rows jumps to 1
  at ``drift_at`` or ramps linearly over ``ramp_ticks``.

Everything is a deterministic function of the generator seed, the scenario
seed and the tick index, so a tape can be replayed bit-identically — the
property the auto-adaptation replay tests are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .dataset import CausalDataset
from .synthetic import SyntheticDomainGenerator

__all__ = ["DriftConfig", "DriftScenario", "TrafficTick", "DRIFT_KINDS", "DRIFT_MODES"]

DRIFT_KINDS = ("covariate", "concept")
DRIFT_MODES = ("abrupt", "gradual")


@dataclass(frozen=True)
class DriftConfig:
    """Shape of one drift scenario.

    Attributes
    ----------
    kind:
        ``"covariate"`` (detectable from query rows) or ``"concept"``
        (invisible to covariate-window detectors).
    mode:
        ``"abrupt"`` — the drifted fraction jumps straight to 1;
        ``"gradual"`` — it ramps linearly over ``ramp_ticks`` ticks.
    magnitude:
        Severity of the drifted source in ``[0, 1]``-ish scale: 0 is no
        drift, 1 interpolates fully to the drifted domain / mechanism.
    ramp_ticks:
        Length of the gradual ramp (ignored for ``"abrupt"``).
    """

    kind: str = "covariate"
    mode: str = "abrupt"
    magnitude: float = 1.0
    ramp_ticks: int = 4

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(f"kind must be one of {DRIFT_KINDS}; got '{self.kind}'")
        if self.mode not in DRIFT_MODES:
            raise ValueError(f"mode must be one of {DRIFT_MODES}; got '{self.mode}'")
        if self.magnitude < 0.0:
            raise ValueError("magnitude must be non-negative")
        if self.ramp_ticks < 1:
            raise ValueError("ramp_ticks must be at least 1")


@dataclass(frozen=True)
class TrafficTick:
    """One tick of a traffic tape: labelled units whose covariates are queries."""

    index: int
    #: Fraction of this tick's rows drawn from the drifted source (0 to 1).
    drift_fraction: float
    dataset: CausalDataset


class DriftScenario:
    """Deterministic drift injector over one synthetic generator.

    Parameters
    ----------
    generator:
        The synthetic multi-domain generator; its ``base_domain`` plays the
        training distribution, ``drifted_domain`` the post-drift one.
    config:
        The scenario shape (:class:`DriftConfig`).
    seed:
        Scenario-level seed for treatment draws, noise and row mixing —
        independent of the generator's own seed so several tapes can share
        one generator.
    """

    def __init__(
        self,
        generator: SyntheticDomainGenerator,
        config: Optional[DriftConfig] = None,
        seed: int = 0,
        base_domain: int = 0,
        drifted_domain: int = 1,
    ) -> None:
        if base_domain == drifted_domain:
            raise ValueError("base_domain and drifted_domain must differ")
        self.generator = generator
        self.config = config if config is not None else DriftConfig()
        self.seed = seed
        self.base_domain = base_domain
        self.drifted_domain = drifted_domain
        # Independent causal mechanism for concept shift: same covariate
        # config, different mechanism weights.
        self._shifted_mechanism = SyntheticDomainGenerator(
            generator.config, seed=generator.seed + 7919
        )

    # ------------------------------------------------------------------ #
    # pieces
    # ------------------------------------------------------------------ #
    def base_dataset(self, n_units: Optional[int] = None, repetition: int = 0) -> CausalDataset:
        """The training-domain dataset the served model starts from."""
        return self.generator.generate_domain(
            self.base_domain, n_units=n_units, repetition=repetition
        )

    def drift_fraction(self, tick: int, drift_at: int) -> float:
        """Drifted fraction of tick ``tick`` when drift starts at ``drift_at``."""
        if tick < drift_at:
            return 0.0
        if self.config.mode == "abrupt":
            return 1.0
        return min(1.0, (tick - drift_at + 1) / self.config.ramp_ticks)

    def tick_covariates(self, tick: int, rows: int, fraction: float) -> np.ndarray:
        """Sample one tick's query covariates with the given drifted fraction."""
        base = self.generator.generate_domain(
            self.base_domain, n_units=rows, repetition=tick + 1
        ).covariates
        if self.config.kind != "covariate" or fraction <= 0.0 or self.config.magnitude == 0.0:
            return base
        drifted_draw = self.generator.generate_domain(
            self.drifted_domain, n_units=rows, repetition=tick + 1
        ).covariates
        # Interpolate each drifted row from the base draw toward the drifted
        # domain's draw: magnitude 1 is exactly the drifted distribution.
        drifted = base + self.config.magnitude * (drifted_draw - base)
        n_drifted = int(round(fraction * rows))
        if n_drifted <= 0:
            return base
        mixed = base.copy()
        rng = np.random.default_rng([self.seed, 3, tick])
        replaced = rng.choice(rows, size=n_drifted, replace=False)
        mixed[replaced] = drifted[replaced]
        return mixed

    def label(
        self, covariates: np.ndarray, key: int, fraction: float = 1.0, name: str = "drift"
    ) -> CausalDataset:
        """Assemble covariate rows into a labelled dataset (ground truth).

        The outcome mechanism is the generator's shared structural functions;
        under concept shift ``tau`` blends toward the independently drawn
        mechanism by ``magnitude * fraction``.  ``key`` seeds the treatment
        and noise draws, so the same (rows, key) always labels identically.
        """
        covariates = np.asarray(covariates, dtype=np.float64)
        if covariates.ndim != 2:
            raise ValueError("covariates must be a 2-D array (n, p)")
        generator = self.generator
        tau = generator.treatment_effect(covariates)
        if self.config.kind == "concept" and fraction > 0.0 and self.config.magnitude > 0.0:
            blend = min(1.0, self.config.magnitude * fraction)
            tau = (1.0 - blend) * tau + blend * self._shifted_mechanism.treatment_effect(
                covariates
            )
        g = generator.baseline_outcome(covariates)
        propensity = generator.propensity(covariates)
        rng = np.random.default_rng([self.seed, 7, key])
        treatments = (rng.random(covariates.shape[0]) < propensity).astype(np.int64)
        noise = rng.normal(0.0, generator.config.noise_std, size=covariates.shape[0])
        mu0 = g
        mu1 = g + tau
        outcomes = np.where(treatments == 1, mu1, mu0) + noise
        return CausalDataset(
            covariates=covariates,
            treatments=treatments,
            outcomes=outcomes,
            mu0=mu0,
            mu1=mu1,
            domain=self.drifted_domain if fraction > 0.0 else self.base_domain,
            name=name,
        )

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def make_tape(self, n_ticks: int, rows_per_tick: int, drift_at: int) -> List[TrafficTick]:
        """Build the full labelled traffic tape for one scenario run."""
        if n_ticks < 1:
            raise ValueError("n_ticks must be at least 1")
        if rows_per_tick < 10:
            raise ValueError("rows_per_tick must be at least 10 (generator minimum)")
        if not 0 <= drift_at <= n_ticks:
            raise ValueError("drift_at must lie in [0, n_ticks]")
        tape = []
        for tick in range(n_ticks):
            fraction = self.drift_fraction(tick, drift_at)
            covariates = self.tick_covariates(tick, rows_per_tick, fraction)
            dataset = self.label(
                covariates,
                key=tick,
                fraction=fraction,
                name=f"drift/{self.config.kind}-{self.config.mode}/tick{tick}",
            )
            tape.append(TrafficTick(index=tick, drift_fraction=fraction, dataset=dataset))
        return tape

    def make_labeler(self, fraction: float = 1.0) -> Callable[[np.ndarray], CausalDataset]:
        """Ground-truth feedback for the adaptation controller.

        Returns ``labeler(covariates) -> CausalDataset`` labelling drained
        traffic with the *post-drift steady-state* mechanism (``fraction``
        defaults to 1).  Each call uses a fresh deterministic key, so a
        replayed run labels every adaptation identically.
        """
        calls = {"count": 0}

        def labeler(covariates: np.ndarray) -> CausalDataset:
            key = 100_000 + calls["count"]
            calls["count"] += 1
            return self.label(
                covariates, key=key, fraction=fraction, name=f"drift/adapt{key - 100_000}"
            )

        return labeler
