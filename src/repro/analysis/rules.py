"""The six repo-specific invariant checkers.

Each checker is a :class:`~repro.analysis.core.ContextVisitor` with a stable
rule ID; :func:`run_rules` drives them over one parsed module.  Rules are
deliberately *scoped*: a rule only fires in the part of the tree whose
contract it encodes (``RPR002`` in serve/monitor/engine, ``RPR005`` in the
persistence layers, …), so running the analyzer over unrelated code —
``benchmarks/check_regression.py``, fixture trees in tests — is silent by
construction, not by baseline.

==========  ===============================================================
Rule        Contract
==========  ===============================================================
RPR001      rng-discipline: no legacy ``np.random.*`` global-state API
            anywhere; no argless ``default_rng()`` and no module-level RNG
            outside ``repro.data`` fixtures — seeded Generators must flow
            from parameters.
RPR002      wall-clock: ``time.time``/``datetime.now`` banned in
            serve/monitor/engine/slo and the estimator zoo
            (``core/learners``, ``core/api``) — the deterministic paths;
            ``perf_counter`` only in stats/bench modules.  ``time.monotonic`` is allowed —
            it feeds deadlines and TTLs through injectable clocks, never
            response values.
RPR003      lock-discipline: attributes registered via ``# guarded-by:``
            (or the single-lock counter heuristic) may only be touched
            inside a ``with <base>.<lock>:`` block, ``__init__``, or a
            ``*_locked`` caller-holds-lock method.
RPR004      infer-purity: no ``Tensor(...)`` construction and no
            ``_parents``/``_backward`` reachable from ``infer*`` kernels
            (same-module call closure through ``self.*`` and local calls).
RPR005      atomic-writes: ``open(..., "w")``/``np.save*``/``write_text``
            under serve/, core/persistence and utils/ must sit inside
            ``with atomic_write(...)``.
RPR006      tape-traceability: ``feeds()`` implementations must not touch
            RNG and must not mutate module state (``self.* = ...``) — the
            tape replays them every step and assumes they are pure host
            work.
==========  ===============================================================
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Type

from .core import ContextVisitor, Finding, SourceModule, expr_chain, guarded_attributes

__all__ = ["RULES", "run_rules", "rule_ids"]


# --------------------------------------------------------------------------- #
# RPR001 — rng-discipline
# --------------------------------------------------------------------------- #
#: The module-level-state numpy.random API (one hidden global RandomState).
LEGACY_NP_RANDOM = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "normal", "uniform", "choice", "shuffle", "permutation",
    "binomial", "poisson", "beta", "gamma", "exponential", "standard_normal",
    "standard_cauchy", "lognormal", "laplace", "multivariate_normal",
    "get_state", "set_state", "RandomState",
}


class RngDiscipline(ContextVisitor):
    """RPR001: seeded ``np.random.Generator`` objects only, flowing from parameters."""

    rule = "RPR001"

    def _in_data_fixtures(self) -> bool:
        return bool(self.mod.package_parts) and self.mod.package_parts[0] == "data"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        qual = self.mod.resolve(node)
        if qual and qual.startswith("numpy.random."):
            tail = qual[len("numpy.random."):]
            if tail in LEGACY_NP_RANDOM:
                self.emit(
                    node,
                    f"legacy global-state API numpy.random.{tail} — "
                    "use a seeded np.random.Generator flowing from a parameter",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.mod.resolve(node.func)
        if qual == "numpy.random.default_rng":
            if not node.args and not node.keywords and not self._in_data_fixtures():
                self.emit(
                    node,
                    "argless default_rng() draws OS entropy — outside repro.data "
                    "fixtures a seeded Generator must flow from a parameter",
                )
            elif not self._functions and not self._in_data_fixtures():
                self.emit(
                    node,
                    "module-level RNG is shared mutable state — construct "
                    "Generators inside the flow that owns the seed",
                )
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# RPR002 — wall-clock
# --------------------------------------------------------------------------- #
BANNED_CLOCKS = {
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "time.strftime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
#: Fine-grained timers: legitimate for measuring, never for behaviour, so
#: they are confined to modules that exist to measure.
RESTRICTED_CLOCKS = {"time.perf_counter", "time.perf_counter_ns", "time.process_time"}

#: ``slo`` is deliberately in scope: the load harness *measures* time, but
#: only through its injected monotonic-clock protocol — a direct
#: ``time.time``/``perf_counter`` there would make replayed tapes
#: unreproducible in exactly the runs that gate CI.
DETERMINISTIC_PACKAGES = {"serve", "monitor", "engine", "slo"}
#: Individual modules whose package head is shared with out-of-scope code:
#: the estimator zoo and registry promise bitwise retrain determinism, so
#: they are wall-clock-free even though most of ``core`` is unscoped.
DETERMINISTIC_MODULES = {("core", "learners"), ("core", "api")}


class WallClock(ContextVisitor):
    """RPR002: deterministic paths must not read the wall clock."""

    rule = "RPR002"

    @classmethod
    def in_scope(cls, mod: SourceModule) -> bool:
        parts = mod.package_parts
        if not parts:
            return False
        return parts[0] in DETERMINISTIC_PACKAGES or parts[:2] in DETERMINISTIC_MODULES

    def _is_stats_module(self) -> bool:
        stem = self.mod.path.stem
        return "bench" in stem or "stats" in stem

    def _check(self, node: ast.AST) -> None:
        qual = self.mod.resolve(node)
        if qual in BANNED_CLOCKS:
            self.emit(
                node,
                f"wall clock {qual} in a deterministic path — replay cannot "
                "reproduce it; inject a clock or derive time from the tape",
            )
        elif qual in RESTRICTED_CLOCKS and not self._is_stats_module():
            self.emit(
                node,
                f"{qual} outside a stats/bench module — fine-grained timers "
                "belong to measurement code, not serving/training logic",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # No double-reporting risk from recursing: no banned name is a
        # prefix of another, so inner chain nodes resolve to unbanned names.
        self._check(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        self._check(node)


# --------------------------------------------------------------------------- #
# RPR003 — lock-discipline
# --------------------------------------------------------------------------- #
class LockDiscipline(ContextVisitor):
    """RPR003: guarded attributes only under their registered lock."""

    rule = "RPR003"

    def __init__(self, mod: SourceModule) -> None:
        super().__init__(mod)
        self.by_class: Dict[str, Dict[str, Set[str]]] = guarded_attributes(mod)
        self.module_wide: Dict[str, Set[str]] = {}
        for guarded in self.by_class.values():
            for attr, locks in guarded.items():
                self.module_wide.setdefault(attr, set()).update(locks)

    def _exempt(self) -> bool:
        if self.in_frozen_dataclass:
            # Immutable snapshot types (ShardStats & co.) legitimately reuse
            # guarded field names; there is no shared state to lock.
            return True
        fn = self.current_function
        # __init__ happens-before publication; *_locked names declare the
        # caller-holds-lock convention (see repro.serve.registry).
        return fn is not None and (fn == "__init__" or fn.endswith("_locked"))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = expr_chain(node.value)
        if base == "self":
            # Only the enclosing class's own registrations apply to self.
            guarded = self.by_class.get(self.current_class or "", {})
            locks = guarded.get(node.attr)
        elif base is not None:
            locks = self.module_wide.get(node.attr)
        else:
            locks = None
        if (
            locks
            and not self._exempt()
            and not any(self.holds_lock(base, lock) for lock in locks)
        ):
            wanted = " or ".join(f"with {base}.{lock}:" for lock in sorted(locks))
            self.emit(
                node,
                f"guarded attribute .{node.attr} accessed outside its "
                f"lock (requires {wanted})",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# RPR004 — infer-purity
# --------------------------------------------------------------------------- #
GRAPH_ATTRS = {"_parents", "_backward"}


class InferPurity(ContextVisitor):
    """RPR004: no graph machinery reachable from ``infer*`` kernels."""

    rule = "RPR004"

    @classmethod
    def in_scope(cls, mod: SourceModule) -> bool:
        # The Tensor implementation itself owns _parents/_backward.
        return mod.module != "repro.nn.tensor"

    def __init__(self, mod: SourceModule) -> None:
        super().__init__(mod)
        self._reachable = _infer_closure(mod)
        self._active = 0

    def _is_target(self, node) -> bool:
        return id(node) in self._reachable

    def _visit_function(self, node) -> None:
        entered = self._is_target(node)
        if entered:
            self._active += 1
        super()._visit_function(node)
        if entered:
            self._active -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._active:
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            qual = self.mod.resolve(func)
            if (qual or name or "").rsplit(".", 1)[-1] == "Tensor":
                self.emit(
                    node,
                    "Tensor construction inside an infer kernel — the "
                    "inference fast path must stay graph-free on raw ndarrays",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._active and node.attr in GRAPH_ATTRS:
            self.emit(
                node,
                f"autograd internals .{node.attr} touched inside an infer "
                "kernel — graph bookkeeping must be unreachable from infer",
            )
        self.generic_visit(node)


def _infer_closure(mod: SourceModule) -> Set[int]:
    """Node ids of functions reachable from infer entry points in-module.

    Entry points: every function in ``repro.nn.infer`` (the kernel module),
    plus any function named ``infer``/``infer_*``.  Reachability follows
    simple calls (``helper(...)``, ``self._helper(...)``) to functions
    defined in the same module, by name — conservative, but exactly the
    shape the hand-written kernels use.
    """
    functions: Dict[str, List[ast.AST]] = {}
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, []).append(node)

    def is_entry(name: str) -> bool:
        if mod.module == "repro.nn.infer":
            return True
        return name == "infer" or name.startswith("infer_")

    queue = [fn for name, fns in functions.items() if is_entry(name) for fn in fns]
    reachable: Set[int] = set()
    while queue:
        fn = queue.pop()
        if id(fn) in reachable:
            continue
        reachable.add(id(fn))
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            callee: Optional[str] = None
            if isinstance(node.func, ast.Name):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute) and expr_chain(node.func.value) == "self":
                callee = node.func.attr
            if callee in functions:
                queue.extend(functions[callee])
    return reachable


# --------------------------------------------------------------------------- #
# RPR005 — atomic-writes
# --------------------------------------------------------------------------- #
SAVE_CALLS = {"numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.savetxt"}
WRITE_METHODS = {"write_text", "write_bytes"}
WRITE_MODE_CHARS = set("wax+")


class AtomicWrites(ContextVisitor):
    """RPR005: persistence-layer writes must route through ``atomic_write``."""

    rule = "RPR005"

    @classmethod
    def in_scope(cls, mod: SourceModule) -> bool:
        parts = mod.package_parts
        if not parts:
            return False
        if mod.module == "repro.utils.files":
            return False  # the atomic_write implementation itself
        return parts[0] in {"serve", "utils"} or mod.module == "repro.core.persistence"

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            mode = next((kw.value for kw in node.keywords if kw.arg == "mode"), None)
        if mode is None:
            return "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: cannot tell, stay silent

    def visit_Call(self, node: ast.Call) -> None:
        if not self.in_atomic_write():
            message = None
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and WRITE_MODE_CHARS & set(mode):
                    message = f"open(..., {mode!r})"
            elif self.mod.resolve(func) in SAVE_CALLS:
                message = self.mod.resolve(func)
            elif isinstance(func, ast.Attribute) and func.attr in WRITE_METHODS:
                message = f".{func.attr}()"
            if message is not None:
                self.emit(
                    node,
                    f"{message} outside a `with atomic_write(...)` block — a "
                    "crash mid-write must never leave a truncated artefact "
                    "(route through repro.utils.atomic_write)",
                )
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# RPR006 — tape-traceability
# --------------------------------------------------------------------------- #
RNG_METHODS = {
    "normal", "uniform", "choice", "integers", "random", "shuffle",
    "permutation", "standard_normal", "binomial", "poisson",
}


class TapeTraceability(ContextVisitor):
    """RPR006: ``feeds()`` is replayed every step — it must be pure host work."""

    rule = "RPR006"

    def __init__(self, mod: SourceModule) -> None:
        super().__init__(mod)
        self._depth = 0

    def _visit_function(self, node) -> None:
        entered = node.name == "feeds"
        if entered:
            self._depth += 1
        super()._visit_function(node)
        if entered:
            self._depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth:
            qual = self.mod.resolve(node.func)
            if qual and qual.startswith("numpy.random."):
                self.emit(
                    node,
                    f"{qual} inside feeds() — the tape replays feeds every "
                    "step, so RNG here diverges from the eager draw order",
                )
            elif isinstance(node.func, ast.Attribute):
                base = expr_chain(node.func.value)
                if (
                    node.func.attr in RNG_METHODS
                    and base is not None
                    and "rng" in base.rsplit(".", 1)[-1].lower()
                ):
                    self.emit(
                        node,
                        f"RNG draw {base}.{node.func.attr}(...) inside feeds() "
                        "— feeds must be RNG-free for tape/eager bit-identity",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._depth
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and expr_chain(node.value) == "self"
        ):
            self.emit(
                node,
                f"feeds() mutates module state self.{node.attr} — replayed "
                "host work must be side-effect-free",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------------- #
RULES: Dict[str, Type[ContextVisitor]] = {
    "RPR001": RngDiscipline,
    "RPR002": WallClock,
    "RPR003": LockDiscipline,
    "RPR004": InferPurity,
    "RPR005": AtomicWrites,
    "RPR006": TapeTraceability,
}


def rule_ids() -> List[str]:
    return sorted(RULES)


def run_rules(mod: SourceModule, rules: Optional[List[str]] = None) -> List[Finding]:
    """Run the selected (default: all) checkers over one module."""
    findings: List[Finding] = []
    for rule_id in rules if rules is not None else rule_ids():
        checker_cls = RULES[rule_id]
        in_scope = getattr(checker_cls, "in_scope", None)
        if in_scope is not None and not in_scope(mod):
            continue
        checker = checker_cls(mod)
        checker.visit(mod.tree)
        findings.extend(checker.findings)
    return sorted(findings)
