"""AST infrastructure for the repo's static invariant checkers.

The correctness story of this reproduction rests on a handful of contracts
that runtime tests can only sample: seeded-RNG-only determinism, no wall
clock in deterministic paths, stats counters mutated only under their lock,
graph-free inference, atomic checkpoint writes, RNG-free ``feeds()``.  The
checkers in :mod:`repro.analysis.rules` enforce them *statically*; this
module is their shared substrate:

- :class:`SourceModule` — one parsed file with its comments (via
  ``tokenize``, so ``#`` inside strings never confuses annotation parsing),
  an import table that resolves local names to qualified dotted names
  (``np.random.default_rng`` → ``numpy.random.default_rng``, including
  relative ``from ..utils import atomic_write``), and the file's dotted
  module path derived from its location under ``repro/``.
- :class:`ContextVisitor` — an ``ast.NodeVisitor`` that tracks the lexical
  context every checker needs: the enclosing class/function symbol (the
  stable key baseline entries match on), the stack of held locks
  (``with self._lock:`` / ``with shard.lock:``), and whether the position is
  inside a ``with atomic_write(...)`` block.
- :func:`guarded_attributes` — the per-module registry of lock-guarded
  attributes, fed by explicit ``# guarded-by: _lock`` annotations on
  ``__init__`` assignments and by a narrow heuristic for counter-named
  attributes in single-lock classes.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

__all__ = [
    "Finding",
    "SourceModule",
    "ContextVisitor",
    "guarded_attributes",
    "expr_chain",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source position.

    ``symbol`` is the dotted in-file scope (``Class.method``, nested
    functions included, ``<module>`` at top level).  Baseline entries match
    on ``(rule, path, symbol)`` — line numbers shift on every edit, symbols
    do not.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message} [{self.symbol}]"


GUARDED_BY_RE = re.compile(r"guarded-by:\s*([A-Za-z_]\w*)")

#: Attribute names eligible for the counter heuristic of
#: :func:`guarded_attributes` (only applied in classes owning exactly one
#: lock; explicit ``# guarded-by:`` annotations always win).
COUNTER_NAME_RE = re.compile(
    r"(^|_)(queries|batches|hits|misses|evictions|expirations|answered|shed|"
    r"in_?flight|count|counts|total|seen|largest|latency|admitted|stats)($|_)"
)

LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "threading.Condition"}


def expr_chain(node: ast.AST) -> Optional[str]:
    """Dotted source form of a plain name/attribute chain, else ``None``.

    ``self._lock`` → ``"self._lock"``; ``request.shard.lock`` →
    ``"request.shard.lock"``.  Calls, subscripts and other expressions have
    no stable chain and return ``None`` (checkers stay conservative).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class SourceModule:
    """One parsed source file plus the lookup tables the checkers share."""

    def __init__(self, path: Union[str, Path], text: Optional[str] = None) -> None:
        self.path = Path(path)
        if text is None:
            text = self.path.read_text(encoding="utf-8")
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.comments = self._collect_comments(text)
        self.module = self._module_name(self.path)
        #: Path components below the ``repro`` package (``("serve",
        #: "fleet", "worker")``); empty for files outside it.
        self.package_parts: Tuple[str, ...] = (
            tuple(self.module.split(".")[1:]) if self.module else ()
        )
        self.imports = self._collect_imports(self.tree)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _collect_comments(text: str) -> Dict[int, str]:
        comments: Dict[int, str] = {}
        # TokenError on malformed tails is survivable: ast.parse catches worse.
        with contextlib.suppress(tokenize.TokenError):
            for token in tokenize.generate_tokens(io.StringIO(text).readline):
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        return comments

    @staticmethod
    def _module_name(path: Path) -> Optional[str]:
        parts = list(path.resolve().parts)
        if "repro" not in parts:
            return None
        index = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[index:]
        dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)

    def _collect_imports(self, tree: ast.AST) -> Dict[str, str]:
        imports: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top name only.
                        top = alias.name.split(".")[0]
                        imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        return imports

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        if self.module is None:
            return node.module  # best effort outside the repro tree
        # Relative import: walk ``level`` packages up from this module's
        # package (the module itself is not a package component).
        package = self.module.split(".")[:-1]
        if node.level - 1 > len(package):
            return node.module
        base = package[: len(package) - (node.level - 1)]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else node.module

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Qualified dotted name of a name/attribute chain, else ``None``.

        Only chains rooted in an imported name resolve — a local variable
        that happens to shadow an import is (conservatively) resolved to the
        import, which is the right bias for a lint gate.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def comment_in_range(self, first: int, last: Optional[int]) -> str:
        """Concatenated comments on the lines ``first..last`` (inclusive)."""
        last = last if last is not None else first
        return " ".join(
            self.comments[line] for line in range(first, last + 1) if line in self.comments
        )


@dataclass
class _WithEntry:
    locks: List[Tuple[str, str]] = field(default_factory=list)
    atomic: bool = False


class ContextVisitor(ast.NodeVisitor):
    """Base visitor tracking scope symbols, held locks and atomic blocks.

    Subclasses override ``visit_*`` hooks as usual but must call
    ``self.generic_visit(node)`` (or ``super()``'s visitor) so context
    bookkeeping keeps running.
    """

    rule = "RPR000"

    def __init__(self, mod: SourceModule) -> None:
        self.mod = mod
        self.findings: List[Finding] = []
        self._scope: List[str] = []
        self._functions: List[str] = []
        self._classes: List[str] = []
        self._frozen_depth = 0
        self._withs: List[_WithEntry] = []

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def symbol(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    @property
    def current_function(self) -> Optional[str]:
        return self._functions[-1] if self._functions else None

    @property
    def current_class(self) -> Optional[str]:
        return self._classes[-1] if self._classes else None

    @property
    def in_frozen_dataclass(self) -> bool:
        """Whether the position sits inside a ``@dataclass(frozen=True)``
        body — immutable snapshot types may reuse guarded attribute names."""
        return self._frozen_depth > 0

    def emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.mod.path),
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=self.rule,
                message=message,
                symbol=self.symbol,
            )
        )

    # ------------------------------------------------------------------ #
    # context bookkeeping
    # ------------------------------------------------------------------ #
    def holds_lock(self, base: str, lock: str) -> bool:
        """Whether a ``with <base>.<lock>:`` block encloses the position."""
        return any(
            (entry_base == base and entry_lock == lock)
            for entry in self._withs
            for entry_base, entry_lock in entry.locks
        )

    def in_atomic_write(self) -> bool:
        """Whether a ``with atomic_write(...):`` block encloses the position."""
        return any(entry.atomic for entry in self._withs)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        frozen = any(_is_frozen_dataclass(dec) for dec in node.decorator_list)
        self._scope.append(node.name)
        self._classes.append(node.name)
        self._frozen_depth += frozen
        self.generic_visit(node)
        self._frozen_depth -= frozen
        self._classes.pop()
        self._scope.pop()

    def _visit_function(self, node) -> None:
        self._scope.append(node.name)
        self._functions.append(node.name)
        self.generic_visit(node)
        self._functions.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_with(self, node) -> None:
        entry = _WithEntry()
        for item in node.items:
            ctx = item.context_expr
            if isinstance(ctx, ast.Call):
                resolved = self.mod.resolve(ctx.func)
                name = resolved or (ctx.func.id if isinstance(ctx.func, ast.Name) else "")
                if name.rsplit(".", 1)[-1] == "atomic_write":
                    entry.atomic = True
                continue
            chain = expr_chain(ctx)
            if chain is None:
                continue
            base, _, attr = chain.rpartition(".")
            entry.locks.append((base, attr))
        self._withs.append(entry)
        self.generic_visit(node)
        self._withs.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)


def _is_frozen_dataclass(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    func = decorator.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name != "dataclass":
        return False
    return any(
        kw.arg == "frozen" and isinstance(kw.value, ast.Constant) and kw.value.value is True
        for kw in decorator.keywords
    )


def _is_counter_literal(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def guarded_attributes(mod: SourceModule) -> Dict[str, Dict[str, Set[str]]]:
    """Lock-guarded attribute registry: ``class -> attr -> {locks}``.

    Two sources, in priority order:

    1. **Annotations** — an ``__init__`` assignment carrying a
       ``# guarded-by: <lockattr>`` comment registers the attribute against
       that lock, e.g. ``self._queries = 0  # guarded-by: _cond``.
    2. **Heuristic** — in a class whose ``__init__`` creates exactly one
       ``threading.Lock/RLock/Condition``, numeric-literal attributes with
       counter-ish names (:data:`COUNTER_NAME_RE`) are auto-registered
       against that lock.  Classes with several locks get no heuristic —
       ambiguity demands the explicit annotation.

    ``self.X`` accesses are checked against the enclosing class's own
    registrations; accesses through any other base (``shard.answered``)
    match by attribute name module-wide — that is what lets the checker
    follow guarded objects into the methods that hold them.
    """
    registry: Dict[str, Dict[str, Set[str]]] = {}
    for klass in ast.walk(mod.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        explicit: Dict[str, str] = {}
        lock_attrs: List[str] = []
        counters: List[str] = []
        for func in klass.body:
            if not isinstance(func, ast.FunctionDef) or func.name != "__init__":
                continue
            for stmt in ast.walk(func):
                target, value = _self_assignment(stmt)
                if target is None:
                    continue
                comment = mod.comment_in_range(stmt.lineno, getattr(stmt, "end_lineno", None))
                match = GUARDED_BY_RE.search(comment)
                if match:
                    explicit[target] = match.group(1)
                    continue
                if isinstance(value, ast.Call) and mod.resolve(value.func) in LOCK_FACTORIES:
                    lock_attrs.append(target)
                elif _is_counter_literal(value) and COUNTER_NAME_RE.search(target):
                    counters.append(target)
        guarded: Dict[str, Set[str]] = {}
        for attr, lock in explicit.items():
            guarded.setdefault(attr, set()).add(lock)
        if len(lock_attrs) == 1:
            for attr in counters:
                if attr not in explicit:
                    guarded.setdefault(attr, set()).add(lock_attrs[0])
        if guarded:
            registry[klass.name] = guarded
    return registry


def _self_assignment(stmt: ast.AST) -> Tuple[Optional[str], Optional[ast.AST]]:
    """``("attr", value_node)`` for ``self.attr = value`` statements."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None, None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, value
    return None, None
