"""Baseline file: intentional, justified exceptions to the invariant rules.

A baseline entry suppresses every finding of one rule inside one symbol of
one file — the *symbol* (``Class.method``) is the match key, not the line
number, so entries survive unrelated edits.  Every entry **must** carry a
non-empty ``justification`` string: the baseline is documentation of why a
contract is deliberately bent (a lock-free fast path, the Tensor fallback
under ``no_grad``), never a mute button.  Entries that no longer match
anything are reported so the file cannot silently rot.

Format (``analysis_baseline.json``, committed at the repo root)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "RPR003",
          "path": "src/repro/serve/service.py",
          "symbol": "PredictionService.version_hint",
          "justification": "deliberate lock-free advisory read; ..."
        }
      ]
    }

Entry paths are resolved relative to the baseline file's directory, so the
analyzer works from any working directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

from .core import Finding
from .rules import RULES

__all__ = ["BaselineEntry", "Baseline", "BaselineError"]


class BaselineError(ValueError):
    """The baseline file is malformed (wrong shape, unknown rule, missing
    or empty justification) — a usage error, distinct from rule findings."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    justification: str

    def key(self, root: Path) -> Tuple[str, str, str]:
        return (self.rule, str((root / self.path).resolve()), self.symbol)


class Baseline:
    """Loaded baseline: suppression lookup plus unused-entry accounting."""

    def __init__(self, entries: List[BaselineEntry], root: Path) -> None:
        self.entries = entries
        self.root = root
        self._index = {entry.key(root): entry for entry in entries}
        self._used: set = set()

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([], Path("."))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise BaselineError(f"cannot read baseline {path}: {error}") from error
        if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
            raise BaselineError(
                f"{path}: baseline must be an object with an 'entries' list"
            )
        entries = []
        for position, raw in enumerate(data["entries"]):
            entries.append(cls._parse_entry(path, position, raw))
        return cls(entries, path.resolve().parent)

    @staticmethod
    def _parse_entry(path: Path, position: int, raw) -> BaselineEntry:
        where = f"{path}: entries[{position}]"
        if not isinstance(raw, dict):
            raise BaselineError(f"{where} must be an object")
        for field in ("rule", "path", "symbol", "justification"):
            if not isinstance(raw.get(field), str) or not raw[field].strip():
                raise BaselineError(
                    f"{where} requires a non-empty string {field!r} — every "
                    "baselined exception must say what it is and why it is okay"
                )
        if raw["rule"] not in RULES:
            raise BaselineError(
                f"{where}: unknown rule {raw['rule']!r} (known: {sorted(RULES)})"
            )
        return BaselineEntry(
            rule=raw["rule"],
            path=raw["path"],
            symbol=raw["symbol"],
            justification=raw["justification"],
        )

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def suppresses(self, finding: Finding) -> bool:
        key = (finding.rule, str(Path(finding.path).resolve()), finding.symbol)
        entry = self._index.get(key)
        if entry is None:
            return False
        self._used.add(key)
        return True

    def unused_entries(self) -> List[BaselineEntry]:
        """Entries that suppressed nothing in the last run (stale — remove
        them, or the invariant they excuse has silently been fixed)."""
        return [
            entry for entry in self.entries if entry.key(self.root) not in self._used
        ]
