"""Command-line front door: ``python -m repro.analysis [paths ...]``.

Exit codes: ``0`` clean (all findings baselined), ``1`` unsuppressed
findings, ``2`` usage or baseline-format error.  Output is
``path:line:col: RULE message [symbol]`` — the ``[symbol]`` suffix is the
key a baseline entry needs to suppress the finding.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from .baseline import Baseline, BaselineError
from .core import Finding, SourceModule
from .rules import RULES, rule_ids, run_rules

__all__ = ["main", "analyze_paths"]

DEFAULT_BASELINE = "analysis_baseline.json"


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(path)
    return files


def analyze_paths(
    paths: Iterable[Path], rules: Optional[List[str]] = None
) -> List[Finding]:
    """All findings (pre-baseline) for every ``*.py`` under ``paths``."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        try:
            mod = SourceModule(file)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(file),
                    line=error.lineno or 0,
                    col=error.offset or 0,
                    rule="RPR000",
                    message=f"syntax error: {error.msg}",
                    symbol="<module>",
                )
            )
            continue
        findings.extend(run_rules(mod, rules))
    return sorted(findings)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checks for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RPRnnn",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of justified exceptions (default: {DEFAULT_BASELINE} "
        "next to the current directory, if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule IDs and exit"
    )
    return parser


def _load_baseline(args) -> Baseline:
    if args.no_baseline:
        return Baseline.empty()
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    default = Path(DEFAULT_BASELINE)
    if default.exists():
        return Baseline.load(default)
    return Baseline.empty()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id in rule_ids():
            doc = (RULES[rule_id].__doc__ or "").strip().splitlines()[0]
            print(f"{rule_id}  {doc}")
        return 0

    if args.rules:
        unknown = [rule for rule in args.rules if rule not in RULES]
        if unknown:
            print(f"error: unknown rule(s) {unknown}; known: {rule_ids()}", file=sys.stderr)
            return 2

    try:
        baseline = _load_baseline(args)
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {missing}", file=sys.stderr)
        return 2

    findings = analyze_paths([Path(p) for p in args.paths], args.rules)
    unsuppressed = [f for f in findings if not baseline.suppresses(f)]

    for finding in unsuppressed:
        print(finding.render())
    for entry in baseline.unused_entries():
        print(
            f"warning: unused baseline entry {entry.rule} {entry.path} "
            f"[{entry.symbol}] — remove it or re-justify it",
            file=sys.stderr,
        )
    suppressed = len(findings) - len(unsuppressed)
    summary = f"{len(unsuppressed)} finding(s), {suppressed} baselined"
    if unsuppressed:
        print(summary, file=sys.stderr)
        return 1
    print(f"repro.analysis: clean ({summary})", file=sys.stderr)
    return 0
