"""Static invariant checkers for the repro codebase.

``python -m repro.analysis src`` runs six AST-based rules (RPR001–RPR006)
that enforce the contracts the runtime tests can only sample: RNG
discipline, wall-clock bans, lock discipline, infer purity, atomic writes
and tape-traceable ``feeds()``.  See :mod:`repro.analysis.rules` for the
rule table and ``ARCHITECTURE.md`` for the annotate-vs-baseline workflow.
"""

from .baseline import Baseline, BaselineEntry, BaselineError
from .cli import analyze_paths, main
from .core import ContextVisitor, Finding, SourceModule, guarded_attributes
from .rules import RULES, rule_ids, run_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "ContextVisitor",
    "Finding",
    "RULES",
    "SourceModule",
    "analyze_paths",
    "guarded_attributes",
    "main",
    "rule_ids",
    "run_rules",
]
