"""Herding-based exemplar selection (Welling 2009; iCaRL-style).

After training on a domain, CERL stores only a budget-limited subset of
feature representations.  The subset is chosen by *herding*: exemplars are
added greedily so that the running mean of the selected representations stays
as close as possible to the mean of the full representation distribution.
Herding requires far fewer samples than random subsampling to approximate the
distribution mean, which the paper's ablation (CERL w/o herding) confirms
matters for the feature-transformation step.

The paper runs herding separately for the treatment and control groups so the
memory stays balanced; that logic lives in :mod:`repro.memory.buffer`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["herding_selection", "random_selection"]


def herding_selection(
    features: np.ndarray,
    budget: int,
    normalize: bool = True,
) -> np.ndarray:
    """Select ``budget`` row indices of ``features`` by greedy herding.

    Parameters
    ----------
    features:
        Array of shape ``(n, d)`` with one representation per row.
    budget:
        Number of exemplars to select.  If ``budget >= n`` all indices are
        returned (in herding order).
    normalize:
        Whether to L2-normalise rows before herding.  CERL representations are
        cosine-normalised, so herding on the unit sphere matches the geometry
        used by the rest of the model.

    Returns
    -------
    np.ndarray
        Integer indices of the selected rows, in selection order.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array of shape (n, d)")
    n = features.shape[0]
    if n == 0:
        raise ValueError("cannot run herding on an empty feature set")
    if budget <= 0:
        raise ValueError("budget must be positive")
    budget = min(budget, n)

    working = features.copy()
    if normalize:
        norms = np.linalg.norm(working, axis=1, keepdims=True)
        norms = np.maximum(norms, 1e-12)
        working = working / norms

    target_mean = working.mean(axis=0)
    selected: list[int] = []
    selected_mask = np.zeros(n, dtype=bool)
    running_sum = np.zeros_like(target_mean)

    # Greedy objective at step t: argmin_i || (running_sum + x_i)/t - mu ||.
    # Expanding the square and dropping candidate-independent terms leaves
    #
    #   score_i = ||x_i||^2 + 2 * <x_i, running_sum> - 2t * <x_i, mu>,
    #
    # so each step needs one GEMV (working @ running_sum) and O(n) arithmetic
    # instead of materialising the (n, d) candidate-means temporary and its
    # row norms.  In exact arithmetic the argmin is unchanged (monotone
    # transform of the distances); candidates whose distances agree to within
    # rounding could in principle tie-break differently than the naive form,
    # which the regression test rules out on seeded data.
    sq_norms = np.einsum("ij,ij->i", working, working)
    target_dots = working @ target_mean
    scores = np.empty(n)

    for step in range(1, budget + 1):
        np.dot(working, running_sum, out=scores)
        scores *= 2.0
        scores += sq_norms
        scores -= (2.0 * step) * target_dots
        scores[selected_mask] = np.inf
        best = int(np.argmin(scores))
        selected.append(best)
        selected_mask[best] = True
        running_sum += working[best]

    return np.asarray(selected, dtype=np.int64)


def random_selection(
    features: np.ndarray,
    budget: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Uniform random exemplar selection (the "w/o herding" ablation)."""
    features = np.asarray(features)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array of shape (n, d)")
    n = features.shape[0]
    if n == 0:
        raise ValueError("cannot subsample an empty feature set")
    if budget <= 0:
        raise ValueError("budget must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    budget = min(budget, n)
    return rng.choice(n, size=budget, replace=False).astype(np.int64)
