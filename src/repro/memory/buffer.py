"""Memory buffer of feature representations stored between domains.

After the model finishes training on domain ``d``, CERL stores the memory set
``M_d = {R_d, Y_d, T_d} ∪ φ_{d-1→d}(M_{d-1})`` reduced to a fixed budget by
running the herding algorithm separately on the treatment and control groups
(Sec. III-A.2 and III-B of the paper).  Raw covariates are never stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from .herding import herding_selection, random_selection

__all__ = ["MemoryBuffer"]


@dataclass
class MemoryBuffer:
    """Budget-limited store of representations with outcomes and treatments.

    Attributes
    ----------
    representations:
        Array of shape ``(m, d)`` with the stored feature representations.
    outcomes:
        Array of shape ``(m,)`` with the corresponding factual outcomes.
    treatments:
        Array of shape ``(m,)`` with binary treatment indicators.
    """

    representations: np.ndarray
    outcomes: np.ndarray
    treatments: np.ndarray

    def __post_init__(self) -> None:
        self.representations = np.asarray(self.representations, dtype=np.float64)
        self.outcomes = np.asarray(self.outcomes, dtype=np.float64).ravel()
        self.treatments = np.asarray(self.treatments, dtype=np.int64).ravel()
        if self.representations.ndim != 2:
            raise ValueError("representations must be 2-D (n, d)")
        n = self.representations.shape[0]
        if self.outcomes.shape[0] != n or self.treatments.shape[0] != n:
            raise ValueError(
                "representations, outcomes and treatments must have matching first dimensions"
            )
        unexpected = set(np.unique(self.treatments)) - {0, 1}
        if unexpected:
            raise ValueError(f"treatments must be binary; found values {sorted(unexpected)}")

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.representations.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality of the stored representations."""
        return self.representations.shape[1]

    @property
    def n_treated(self) -> int:
        """Number of stored treated units."""
        return int(np.sum(self.treatments == 1))

    @property
    def n_control(self) -> int:
        """Number of stored control units."""
        return int(np.sum(self.treatments == 0))

    def group(self, treatment: int) -> "MemoryBuffer":
        """Return the sub-buffer for one treatment arm."""
        mask = self.treatments == treatment
        return MemoryBuffer(
            self.representations[mask], self.outcomes[mask], self.treatments[mask]
        )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty(dim: int) -> "MemoryBuffer":
        """Return an empty buffer with representation dimensionality ``dim``."""
        return MemoryBuffer(
            np.zeros((0, dim), dtype=np.float64),
            np.zeros((0,), dtype=np.float64),
            np.zeros((0,), dtype=np.int64),
        )

    def merge(self, other: "MemoryBuffer") -> "MemoryBuffer":
        """Return the concatenation of this buffer with ``other``."""
        if len(self) and len(other) and self.dim != other.dim:
            raise ValueError(
                f"cannot merge buffers with different dims ({self.dim} vs {other.dim})"
            )
        return MemoryBuffer(
            np.concatenate([self.representations, other.representations], axis=0),
            np.concatenate([self.outcomes, other.outcomes]),
            np.concatenate([self.treatments, other.treatments]),
        )

    def with_representations(self, representations: np.ndarray) -> "MemoryBuffer":
        """Return a copy of the buffer with the representations replaced.

        Used when the transformation ``φ_{d-1→d}`` maps stored representations
        into the new feature space while outcomes/treatments are unchanged.
        """
        representations = np.asarray(representations, dtype=np.float64)
        if representations.shape[0] != len(self):
            raise ValueError("replacement representations must keep the number of rows")
        return MemoryBuffer(representations, self.outcomes.copy(), self.treatments.copy())

    # ------------------------------------------------------------------ #
    # budget reduction
    # ------------------------------------------------------------------ #
    def reduce(
        self,
        budget: int,
        strategy: Literal["herding", "random"] = "herding",
        rng: Optional[np.random.Generator] = None,
    ) -> "MemoryBuffer":
        """Return a new buffer reduced to at most ``budget`` units.

        The budget is split evenly between the treatment and control arms (as
        in the paper, which stores the same number of exemplars per arm); if
        one arm has too few units the remainder goes to the other arm.
        """
        if budget <= 0:
            raise ValueError("budget must be positive")
        if len(self) <= budget:
            return MemoryBuffer(
                self.representations.copy(), self.outcomes.copy(), self.treatments.copy()
            )

        treated_idx = np.flatnonzero(self.treatments == 1)
        control_idx = np.flatnonzero(self.treatments == 0)
        per_arm = budget // 2
        n_treated = min(per_arm, treated_idx.size)
        n_control = min(budget - n_treated, control_idx.size)
        # Give any slack back to the treated arm if control ran out.
        n_treated = min(budget - n_control, treated_idx.size)

        def select(indices: np.ndarray, count: int) -> np.ndarray:
            if count == 0 or indices.size == 0:
                return np.zeros(0, dtype=np.int64)
            feats = self.representations[indices]
            if strategy == "herding":
                chosen = herding_selection(feats, count)
            elif strategy == "random":
                chosen = random_selection(feats, count, rng=rng)
            else:
                raise ValueError(f"unknown selection strategy '{strategy}'")
            return indices[chosen]

        keep = np.concatenate([select(treated_idx, n_treated), select(control_idx, n_control)])
        keep.sort()
        return MemoryBuffer(
            self.representations[keep], self.outcomes[keep], self.treatments[keep]
        )
