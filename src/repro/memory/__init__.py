"""Rehearsal memory: herding-based exemplar selection and representation buffers."""

from .herding import herding_selection, random_selection
from .buffer import MemoryBuffer

__all__ = ["herding_selection", "random_selection", "MemoryBuffer"]
