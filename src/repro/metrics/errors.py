"""Evaluation metrics for treatment-effect estimation.

The paper reports two metrics (Sec. IV-B):

* ``sqrt(eps_PEHE)`` — the square root of the expected Precision in the
  Estimation of Heterogeneous Effects, i.e. the RMSE between the true and
  estimated individual treatment effects;
* ``eps_ATE`` — the absolute error of the estimated average treatment effect.

Additional helpers cover factual-outcome error and the continual-learning
summary metrics (average accuracy over seen domains and forgetting), which
are used by the Figure-3 style evaluation and the library's own reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "pehe",
    "sqrt_pehe",
    "ate_error",
    "factual_rmse",
    "EffectEstimate",
    "evaluate_effect_estimate",
    "forgetting",
    "average_over_domains",
]


def _validate_pair(true: np.ndarray, estimated: np.ndarray) -> tuple:
    true = np.asarray(true, dtype=np.float64).ravel()
    estimated = np.asarray(estimated, dtype=np.float64).ravel()
    if true.shape != estimated.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {estimated.shape}")
    if true.size == 0:
        raise ValueError("metric inputs must be non-empty")
    return true, estimated


def pehe(true_ite: np.ndarray, estimated_ite: np.ndarray) -> float:
    """Expected precision in estimating heterogeneous effects (mean squared ITE error)."""
    true_ite, estimated_ite = _validate_pair(true_ite, estimated_ite)
    return float(np.mean((true_ite - estimated_ite) ** 2))


def sqrt_pehe(true_ite: np.ndarray, estimated_ite: np.ndarray) -> float:
    """Square root of PEHE — the metric reported in the paper's tables."""
    return float(np.sqrt(pehe(true_ite, estimated_ite)))


def ate_error(true_ite: np.ndarray, estimated_ite: np.ndarray) -> float:
    """Absolute difference between the true and estimated average treatment effect."""
    true_ite, estimated_ite = _validate_pair(true_ite, estimated_ite)
    return float(abs(np.mean(true_ite) - np.mean(estimated_ite)))


def factual_rmse(true_outcomes: np.ndarray, predicted_outcomes: np.ndarray) -> float:
    """Root mean squared error of factual-outcome predictions."""
    true_outcomes, predicted_outcomes = _validate_pair(true_outcomes, predicted_outcomes)
    return float(np.sqrt(np.mean((true_outcomes - predicted_outcomes) ** 2)))


@dataclass
class EffectEstimate:
    """Predicted potential outcomes for a set of units.

    Attributes
    ----------
    y0_hat, y1_hat:
        Predicted potential outcomes under control / treatment.
    """

    y0_hat: np.ndarray
    y1_hat: np.ndarray

    def __post_init__(self) -> None:
        self.y0_hat = np.asarray(self.y0_hat, dtype=np.float64).ravel()
        self.y1_hat = np.asarray(self.y1_hat, dtype=np.float64).ravel()
        if self.y0_hat.shape != self.y1_hat.shape:
            raise ValueError("y0_hat and y1_hat must have the same shape")

    @property
    def ite_hat(self) -> np.ndarray:
        """Estimated individual treatment effects."""
        return self.y1_hat - self.y0_hat

    @property
    def ate_hat(self) -> float:
        """Estimated average treatment effect."""
        return float(np.mean(self.ite_hat))

    def factual_predictions(self, treatments: np.ndarray) -> np.ndarray:
        """Predicted factual outcomes given the observed treatments."""
        treatments = np.asarray(treatments).ravel()
        if treatments.shape != self.y0_hat.shape:
            raise ValueError("treatments must match the number of predictions")
        return np.where(treatments == 1, self.y1_hat, self.y0_hat)


def evaluate_effect_estimate(
    estimate: EffectEstimate,
    true_ite: np.ndarray,
    treatments: Optional[np.ndarray] = None,
    factual_outcomes: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Compute the paper's metrics (and factual RMSE when outcomes are given)."""
    metrics = {
        "sqrt_pehe": sqrt_pehe(true_ite, estimate.ite_hat),
        "pehe": pehe(true_ite, estimate.ite_hat),
        "ate_error": ate_error(true_ite, estimate.ite_hat),
        "ate_hat": estimate.ate_hat,
        "ate_true": float(np.mean(np.asarray(true_ite, dtype=np.float64))),
    }
    if treatments is not None and factual_outcomes is not None:
        metrics["factual_rmse"] = factual_rmse(
            factual_outcomes, estimate.factual_predictions(treatments)
        )
    return metrics


def forgetting(metric_history: Sequence[Sequence[float]]) -> float:
    """Average forgetting of a lower-is-better metric across a domain stream.

    ``metric_history[t][d]`` is the metric on domain ``d``'s test set after
    training on domain ``t`` (``d <= t``).  Forgetting of domain ``d`` is the
    increase of the metric at the end of training relative to the best value
    observed for that domain; the average is over all but the final domain.
    Positive values indicate catastrophic forgetting.
    """
    if not metric_history:
        raise ValueError("metric_history must be non-empty")
    final = metric_history[-1]
    n_domains = len(final)
    if n_domains <= 1:
        return 0.0
    losses = []
    for d in range(n_domains - 1):
        best = min(step[d] for step in metric_history if len(step) > d)
        losses.append(final[d] - best)
    return float(np.mean(losses))


def average_over_domains(per_domain_metrics: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Average a list of per-domain metric dictionaries key-wise."""
    if not per_domain_metrics:
        raise ValueError("per_domain_metrics must be non-empty")
    keys = set(per_domain_metrics[0])
    for metrics in per_domain_metrics[1:]:
        keys &= set(metrics)
    return {key: float(np.mean([metrics[key] for metrics in per_domain_metrics])) for key in sorted(keys)}
