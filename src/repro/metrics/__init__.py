"""Treatment-effect and continual-learning evaluation metrics."""

from .errors import (
    EffectEstimate,
    ate_error,
    average_over_domains,
    evaluate_effect_estimate,
    factual_rmse,
    forgetting,
    pehe,
    sqrt_pehe,
)

__all__ = [
    "EffectEstimate",
    "ate_error",
    "average_over_domains",
    "evaluate_effect_estimate",
    "factual_rmse",
    "forgetting",
    "pehe",
    "sqrt_pehe",
]
