"""Benchmark: regenerate Table II (synthetic two-domain comparison + ablations).

Paper protocol: two sequential synthetic domains (100 covariates with the
Figure 2 roles, partially linear outcomes), memory budget M = 10000, strategies
CFR-A / CFR-B / CFR-C / CERL plus the three CERL ablations (w/o FRT,
w/o herding, w/o cosine norm), averaged over 10 repetitions.  The quick profile
scales units, dimensionality and repetitions down.
"""

from __future__ import annotations

import pytest

from repro.experiments import QUICK, TABLE2_ABLATIONS, TABLE2_STRATEGIES, run_table2


@pytest.mark.benchmark(group="table2")
def test_bench_table2_strategies_and_ablations(benchmark, once, bench_profile):
    """All Table II rows: the four strategies and the three CERL ablations."""
    result = once(
        benchmark,
        run_table2,
        bench_profile,
        strategies=TABLE2_STRATEGIES,
        ablations=TABLE2_ABLATIONS,
        seed=0,
        repetitions=1,
    )
    print()
    print(result.report())

    # Reproduction shape (Table II): CFR-A degrades on new data, CFR-B shows
    # catastrophic forgetting on previous data; CERL improves on both failure
    # modes simultaneously.  Only asserted at quick scale and above; the
    # smoke profile (CI) just exercises the code paths.
    if bench_profile is QUICK:
        cerl = result.get("CERL")
        cfr_a = result.get("CFR-A")
        cfr_b = result.get("CFR-B")
        assert cerl.get("new_sqrt_pehe") < 1.1 * cfr_a.get("new_sqrt_pehe")
        assert cerl.get("prev_sqrt_pehe") < 1.1 * cfr_b.get("prev_sqrt_pehe")
