"""Micro-benchmarks of the substrate components plus the IPM-choice ablation.

These are not paper tables; they document the cost of the main building blocks
(herding, Sinkhorn-Wasserstein, a training epoch) and the DESIGN.md ablation of
the IPM choice (Wasserstein vs MMD), so regressions in the substrate are easy
to spot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.balance import ipm_distance
from repro.core import BaselineCausalModel, ModelConfig
from repro.data import SyntheticDomainGenerator
from repro.experiments import QUICK
from repro.memory import herding_selection
from repro.nn import Tensor


@pytest.fixture(scope="module")
def representations():
    rng = np.random.default_rng(0)
    treated = rng.normal(size=(256, 32)) + 0.5
    control = rng.normal(size=(256, 32))
    return Tensor(treated), Tensor(control)


@pytest.mark.benchmark(group="components")
def test_bench_herding_selection(benchmark):
    """Herding 500 exemplars out of 5000 32-d representations."""
    rng = np.random.default_rng(1)
    features = rng.normal(size=(5000, 32))
    selected = benchmark(herding_selection, features, 500)
    assert selected.shape == (500,)


@pytest.mark.benchmark(group="components")
def test_bench_sinkhorn_wasserstein(benchmark, representations):
    """Sinkhorn-Wasserstein between two 256-unit batches (training-time cost)."""
    treated, control = representations
    value = benchmark(
        lambda: ipm_distance(treated, control, kind="wasserstein", num_iters=20).item()
    )
    assert value > 0


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize("kind", ["wasserstein", "mmd_linear", "mmd_rbf"])
def test_bench_ipm_choice_ablation(benchmark, representations, kind):
    """DESIGN.md ablation: relative cost of the IPM choices."""
    treated, control = representations
    value = benchmark(lambda: ipm_distance(treated, control, kind=kind).item())
    assert np.isfinite(value)


@pytest.mark.benchmark(group="components")
def test_bench_baseline_training_epoch(benchmark):
    """One epoch of the baseline learner on a quick-profile synthetic domain."""
    generator = SyntheticDomainGenerator(QUICK.synthetic_config(n_units=1000), seed=0)
    dataset = generator.generate_domain(0)
    config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=1,
        batch_size=128,
        seed=0,
    )

    def one_epoch():
        model = BaselineCausalModel(dataset.n_features, config)
        model.fit(dataset, epochs=1)
        return model

    model = benchmark.pedantic(one_epoch, rounds=1, iterations=1)
    assert len(model.history) == 1
