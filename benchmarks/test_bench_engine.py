"""Engine perf guard: substrate hot paths versus the frozen seed implementation.

Measures the hot paths below and records them into ``BENCH_engine.json`` (via
the ``engine_bench`` fixture in ``conftest.py``; enforced against
``benchmarks/baseline/BENCH_baseline.json`` by ``check_regression.py``):

* the autograd **backward pass** of a CERL-shaped batch loss (encoder MLP,
  two outcome heads, elastic net, group-balancing term) — new ``repro.nn``
  tensors versus the verbatim seed autograd in ``_seed_reference.py``;
* the **Sinkhorn** transport-plan solver — vectorised in-place inner loop
  versus the seed's allocate-per-iteration loop;
* the **inference forward** fast path (``Module.infer`` on raw ndarrays with
  reusable workspaces) versus the Tensor forward under ``no_grad``, on the
  full CERL evaluation stack at batch 1024;
* **suite evaluation**: the batched ``evaluate_many`` (one concatenated
  forward for all seen test sets) versus the seed's per-dataset Tensor-path
  evaluation loop on an 8-domain stream;
* **parallel Table I**: the process-pool experiment executor versus the
  serial cell loop, with the tables asserted identical;
* **serving throughput**: the micro-batched ``repro.serve.PredictionService``
  under pipelined multi-thread load versus naive per-query (batch-1)
  serving, with every response asserted bit-identical to the direct batched
  reference;
* **gateway throughput**: the sharded multi-tenant ``ServingGateway`` under
  interleaved multi-stream traffic versus a single-service front door that
  must hot-swap models between queries, responses asserted bit-identical;
* **gateway cache**: the TTL+LRU response-cache hit path versus re-executing
  repeated queries, transparency asserted bitwise first;
* **drift detection**: one ``repro.monitor`` drift check (RBF-MMD of the
  rolling traffic window against the frozen reference) on the cached ndarray
  scorer versus recomputing the full statistic through the Tensor IPM path,
  scores asserted bit-identical;
* one **CERL continual stage** (fit_next) at a small fixed size, as an
  absolute wall-time trajectory point for future PRs.

The timed sections isolate exactly the code the engine PRs optimised.
Gradients, transport plans, forward outputs and metric tables are asserted
bit-identical to the reference paths before any timing is trusted.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _seed_reference import SeedTensor, seed_sinkhorn_plan
from repro.balance.ipm import _sinkhorn_plan
from repro.core import CERL, BaselineCausalModel, ContinualConfig, ModelConfig
from repro.data import DomainStream, SyntheticDomainGenerator
from repro.experiments import QUICK, SMOKE, run_table1
from repro.metrics import EffectEstimate, evaluate_effect_estimate
from repro.nn import Tensor, no_grad

# --------------------------------------------------------------------------- #
# shared workload: a batch loss with the same structure as the CERL objective
# --------------------------------------------------------------------------- #
_RNG = np.random.default_rng(0)
_N, _P, _D, _H = 128, 25, 32, 64
_X = _RNG.normal(size=(_N, _P))
_Y = _RNG.normal(size=(_N, 1))
_WEIGHTS = {
    "w1": _RNG.normal(size=(_P, _H)),
    "b1": _RNG.normal(size=(1, _H)),
    "w2": _RNG.normal(size=(_H, _D)),
    "b2": _RNG.normal(size=(1, _D)),
    "h0w": _RNG.normal(size=(_D, 1)),
    "h0b": _RNG.normal(size=(1, 1)),
    "h1w": _RNG.normal(size=(_D, 1)),
    "h1b": _RNG.normal(size=(1, 1)),
}
_TMASK = (_RNG.random(_N) > 0.5).astype(np.float64)
_CMASK = 1.0 - _TMASK
_ONES_D = np.ones((_D, 1))


def _loss_graph(tensor_cls):
    """Build the CERL-shaped loss with either tensor implementation."""
    T = tensor_cls
    params = {k: T(v, requires_grad=True) for k, v in _WEIGHTS.items()}
    x = T(_X)
    y = T(_Y)
    hidden = (x @ params["w1"] + params["b1"]).relu()
    reps = hidden @ params["w2"] + params["b2"]
    row_energy = (reps * reps) @ T(_ONES_D)
    y0 = (reps @ params["h0w"] + params["h0b"]).relu()
    y1 = (reps @ params["h1w"] + params["h1b"]).relu()
    pred = y0 * T(_CMASK.reshape(_N, 1)) + y1 * T(_TMASK.reshape(_N, 1))
    diff = pred - y
    factual = (diff * diff).sum()
    enet = (params["w1"] * params["w1"]).sum()
    for key in ("w2", "h0w", "h1w"):
        enet = enet + (params[key] * params[key]).sum()
    group_t = T(_TMASK.reshape(1, _N) / _TMASK.sum()) @ reps
    group_c = T(_CMASK.reshape(1, _N) / _CMASK.sum()) @ reps
    group_diff = group_t - group_c
    balance = (group_diff * group_diff).sum()
    total = factual + balance * T(1.0) + enet * T(1e-4) + (row_energy * T(1.0 / _N)).sum()
    return total, params


def _timed_round(fn, repetitions):
    """One measurement round for :func:`_interleaved_best`: mean time of ``fn``."""

    def measure() -> float:
        start = time.perf_counter()
        for _ in range(repetitions):
            fn()
        return (time.perf_counter() - start) / repetitions

    return measure


def _interleaved_best(measure_a, measure_b, rounds: int = 6):
    """Alternate measurement rounds of two subjects and keep each one's best.

    Interleaving keeps slow drifts of the machine (frequency scaling, noisy
    neighbours) from biasing one side of the comparison.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        best_a = min(best_a, measure_a())
        best_b = min(best_b, measure_b())
    return best_a, best_b


def _backward_round(tensor_cls, repetitions: int = 150):
    """Mean backward time over one round; forward construction is untimed."""

    def measure() -> float:
        total = 0.0
        for _ in range(repetitions):
            loss, _ = _loss_graph(tensor_cls)
            start = time.perf_counter()
            loss.backward()
            total += time.perf_counter() - start
        return total / repetitions

    return measure


@pytest.mark.benchmark(group="engine")
def test_bench_backward_pass_vs_seed(engine_bench):
    """Optimised autograd backward vs the frozen seed implementation."""
    new_loss, new_params = _loss_graph(Tensor)
    new_loss.backward()
    seed_loss, seed_params = _loss_graph(SeedTensor)
    seed_loss.backward()
    for key in new_params:
        assert np.array_equal(new_params[key].grad, seed_params[key].grad), key

    seed_time, new_time = _interleaved_best(
        _backward_round(SeedTensor), _backward_round(Tensor)
    )
    speedup = seed_time / new_time
    engine_bench(
        "backward_pass",
        seed_us=round(seed_time * 1e6, 2),
        engine_us=round(new_time * 1e6, 2),
        speedup=round(speedup, 3),
        workload=f"CERL-shaped batch loss, n={_N}, d={_D}",
    )
    print(
        f"\nbackward: seed {seed_time * 1e6:.1f}us -> engine {new_time * 1e6:.1f}us "
        f"({speedup:.2f}x)"
    )
    # Regression guard only (>1.0): shared CI runners are too noisy to gate
    # on the full measured margin; BENCH_engine.json records the real ratio.
    assert speedup > 1.0, f"backward pass regressed: {speedup:.2f}x vs seed"


_SINKHORN_SUBPROCESS = """
import json, sys, time
import numpy as np

sys.path.insert(0, {src_path!r})
sys.path.insert(0, {bench_path!r})
from repro.balance.ipm import _sinkhorn_plan
from _seed_reference import seed_sinkhorn_plan

cost = np.random.default_rng(1).random((256, 256)) * 4.0


def one_round(fn, repetitions=25):
    start = time.perf_counter()
    for _ in range(repetitions):
        fn(cost, 0.1, 20)
    return (time.perf_counter() - start) / repetitions


best_seed = best_new = float("inf")
for _ in range(6):
    best_seed = min(best_seed, one_round(seed_sinkhorn_plan))
    best_new = min(best_new, one_round(_sinkhorn_plan))
print(json.dumps({{"seed": best_seed, "new": best_new}}))
"""


@pytest.mark.benchmark(group="engine")
def test_bench_sinkhorn_vs_seed(engine_bench):
    """Vectorised in-place Sinkhorn vs the seed allocate-per-iteration loop.

    The seed implementation allocates several fresh ``(n, m)`` arrays per
    iteration, which makes its wall time depend heavily on the process's
    allocator state (we measured the identical call ranging from 9ms to 30ms
    with warm vs cold malloc arenas).  The timing therefore runs in a fresh
    subprocess so both sides are measured under the same, reproducible
    conditions; the in-place implementation is insensitive to this either way.
    """
    rng = np.random.default_rng(1)
    cost = rng.random((256, 256)) * 4.0
    assert np.array_equal(
        _sinkhorn_plan(cost, epsilon=0.1, num_iters=20),
        seed_sinkhorn_plan(cost, epsilon=0.1, num_iters=20),
    )

    bench_dir = Path(__file__).resolve().parent
    script = _SINKHORN_SUBPROCESS.format(
        src_path=str(bench_dir.parent / "src"), bench_path=str(bench_dir)
    )
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    times = json.loads(output.stdout.strip().splitlines()[-1])
    seed_time, new_time = times["seed"], times["new"]
    speedup = seed_time / new_time
    engine_bench(
        "sinkhorn",
        seed_ms=round(seed_time * 1e3, 3),
        engine_ms=round(new_time * 1e3, 3),
        speedup=round(speedup, 3),
        workload="256x256 cost matrix, 20 log-domain iterations",
    )
    print(
        f"\nsinkhorn: seed {seed_time * 1e3:.2f}ms -> engine {new_time * 1e3:.2f}ms "
        f"({speedup:.2f}x)"
    )
    assert speedup > 1.0, f"sinkhorn regressed: {speedup:.2f}x vs seed"


# --------------------------------------------------------------------------- #
# inference fast path
# --------------------------------------------------------------------------- #
def _fitted_eval_model(n_units: int, n_domains: int):
    """A briefly-trained baseline learner plus its domain stream."""
    generator = SyntheticDomainGenerator(QUICK.synthetic_config(n_units=n_units), seed=0)
    stream = DomainStream(generator.generate_stream(n_domains), seed=0)
    config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=3,
        batch_size=128,
        seed=0,
    )
    model = BaselineCausalModel(stream.n_features, config)
    model.fit(stream.train_data(0), epochs=3)
    return model, stream


@pytest.mark.benchmark(group="engine")
def test_bench_inference_forward_vs_tensor(engine_bench):
    """``Module.infer`` fast path vs the Tensor forward at batch 1024.

    The workload is the full CERL evaluation stack — representation network
    (cosine-normalised encoder) plus both outcome heads — which is what every
    ``predict``/``evaluate``/validation call runs.  Outputs are asserted
    bitwise identical before timing.
    """
    model, _ = _fitted_eval_model(n_units=600, n_domains=1)
    rng = np.random.default_rng(7)
    covariates = rng.normal(size=(1024, model.n_features))
    prepared = model.encoder.prepare_inputs(covariates)
    encoder, heads = model.encoder, model.heads

    def tensor_forward():
        with no_grad():
            reps = encoder.forward(Tensor(prepared))
            y0 = heads.control_head(reps).reshape(-1)
            y1 = heads.treated_head(reps).reshape(-1)
        return y0.data, y1.data

    def fast_forward():
        reps = encoder.infer(prepared)
        y0 = heads.control_head.infer(reps).ravel()
        y1 = heads.treated_head.infer(reps).ravel()
        return y0, y1

    ref0, ref1 = tensor_forward()
    out0, out1 = fast_forward()
    assert np.array_equal(ref0, out0) and np.array_equal(ref1, out1)

    tensor_time, fast_time = _interleaved_best(
        _timed_round(tensor_forward, 100), _timed_round(fast_forward, 100)
    )
    speedup = tensor_time / fast_time
    engine_bench(
        "inference_forward",
        tensor_us=round(tensor_time * 1e6, 2),
        infer_us=round(fast_time * 1e6, 2),
        speedup=round(speedup, 3),
        workload="CERL eval stack (encoder + both heads), batch 1024",
    )
    print(
        f"\ninference forward: tensor {tensor_time * 1e6:.1f}us -> "
        f"infer {fast_time * 1e6:.1f}us ({speedup:.2f}x)"
    )
    assert speedup > 1.0, f"inference fast path regressed: {speedup:.2f}x vs Tensor forward"


@pytest.mark.benchmark(group="engine")
def test_bench_suite_evaluation_batched_vs_per_dataset(engine_bench):
    """Batched ``evaluate_many`` vs the seed's per-dataset evaluation loop.

    The workload is the Figure-3 seen-test-sets sweep on an 8-domain stream.
    The per-dataset baseline reproduces the seed path verbatim (one Tensor
    forward per dataset); metric dictionaries are asserted identical before
    timing.
    """
    model, stream = _fitted_eval_model(n_units=600, n_domains=8)
    tests = stream.test_sets_seen(len(stream) - 1)

    def seed_evaluate(dataset):
        representations = model.encoder.encode(dataset.covariates, track_gradients=False)
        with no_grad():
            y0 = model.heads.control_head(representations).reshape(-1)
            y1 = model.heads.treated_head(representations).reshape(-1)
        estimate = EffectEstimate(
            y0_hat=model._unscale_outcomes(y0.numpy().copy()),
            y1_hat=model._unscale_outcomes(y1.numpy().copy()),
        )
        return evaluate_effect_estimate(
            estimate,
            dataset.true_ite,
            treatments=dataset.treatments,
            factual_outcomes=dataset.outcomes,
        )

    assert [seed_evaluate(test) for test in tests] == model.evaluate_many(tests)

    seed_time, batched_time = _interleaved_best(
        _timed_round(lambda: [seed_evaluate(test) for test in tests], 20),
        _timed_round(lambda: model.evaluate_many(tests), 20),
    )
    speedup = seed_time / batched_time
    engine_bench(
        "suite_evaluation",
        per_dataset_ms=round(seed_time * 1e3, 3),
        batched_ms=round(batched_time * 1e3, 3),
        speedup=round(speedup, 3),
        workload="8-domain stream, 120-unit test sets, seed Tensor path vs evaluate_many",
    )
    print(
        f"\nsuite evaluation: per-dataset {seed_time * 1e3:.2f}ms -> "
        f"batched {batched_time * 1e3:.2f}ms ({speedup:.2f}x)"
    )
    assert speedup > 1.0, f"batched suite evaluation regressed: {speedup:.2f}x"


@pytest.mark.benchmark(group="engine")
def test_bench_parallel_table1(engine_bench):
    """Serial vs process-pool Table I execution (identical tables required).

    On multi-core machines the pool fans dataset × scenario cells out and the
    recorded speedup approaches the cell count.  On a single-core runner a
    2-worker pool cannot express any parallelism — ``parallel_map`` itself
    now clamps to serial there — so the section records ``"gated": true``
    (no ``speedup`` key) instead of a misleading ratio, and the regression
    gate skips it rather than flagging phantom regressions on 1-core CI.
    Determinism is asserted either way — the pool path is forced with
    ``force_parallel`` so the equivalence property is exercised even on the
    machines that gate the timing.
    """
    kwargs = dict(
        datasets=("news",),
        scenarios=("substantial", "none"),
        strategies=("CFR-A", "CERL"),
        seed=0,
    )
    # Warm the process-local population cache so both timed paths start from
    # the same state (fork-based workers inherit it as well).
    from repro.experiments.table1 import _benchmark

    _benchmark("news", SMOKE, 0)._simulate_population()
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        # The timing comparison is meaningless here, but the correctness
        # property is not: force the real pool path once and assert the
        # tables are identical before recording the gate.
        serial = run_table1(SMOKE, workers=1, **kwargs)
        parallel = run_table1(SMOKE, workers=2, force_parallel=True, **kwargs)
        assert serial.rows() == parallel.rows(), "parallel Table I diverged from serial"
        engine_bench(
            "parallel_table1",
            gated=True,
            gate_reason=f"cpu_count={cpu_count} cannot express 2-worker parallelism",
            workers=2,
            cpu_count=cpu_count,
            workload="smoke Table I, 2 cells (news x substantial/none), 2 strategies",
        )
        print(f"\nparallel table1: gated on {cpu_count}-cpu machine (parity asserted)")
        return

    start = time.perf_counter()
    serial = run_table1(SMOKE, workers=1, **kwargs)
    serial_time = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_table1(SMOKE, workers=2, **kwargs)
    parallel_time = time.perf_counter() - start
    assert serial.rows() == parallel.rows(), "parallel Table I diverged from serial"

    speedup = serial_time / parallel_time
    engine_bench(
        "parallel_table1",
        serial_s=round(serial_time, 4),
        parallel_s=round(parallel_time, 4),
        speedup=round(speedup, 3),
        workers=2,
        cpu_count=cpu_count,
        workload="smoke Table I, 2 cells (news x substantial/none), 2 strategies",
    )
    print(
        f"\nparallel table1: serial {serial_time:.2f}s -> workers=2 "
        f"{parallel_time:.2f}s ({speedup:.2f}x on {cpu_count} cpu)"
    )


@pytest.mark.benchmark(group="engine")
def test_bench_meta_learner_table1(engine_bench):
    """Table I over registry-built meta-learners, serial vs process pool.

    The estimator API promises that meta-learners (here the S-learner and the
    crossfit R-learner) drop into the Table I executor exactly like the paper
    strategies: cells fan out over the same ``parallel_map`` and the parallel
    table must be bit-identical to the serial one.  The R-learner is the
    expensive column — nuisance crossfitting multiplies the fits per cell —
    which is exactly why the pool speedup is worth tracking separately from
    ``parallel_table1``.  Same single-core policy: parity is asserted with a
    forced pool and the section records ``"gated": true`` instead of timing
    noise (``check_regression.py`` skips gated sections).
    """
    kwargs = dict(
        datasets=("news",),
        scenarios=("substantial", "none"),
        strategies=("S-learner", "R-learner"),
        seed=0,
    )
    from repro.experiments.table1 import _benchmark

    _benchmark("news", SMOKE, 0)._simulate_population()
    cpu_count = os.cpu_count() or 1
    workload = "smoke Table I, 2 cells (news x substantial/none), S-learner + R-learner"
    if cpu_count < 2:
        serial = run_table1(SMOKE, workers=1, **kwargs)
        parallel = run_table1(SMOKE, workers=2, force_parallel=True, **kwargs)
        assert serial.rows() == parallel.rows(), "meta-learner Table I diverged from serial"
        engine_bench(
            "meta_learner_table1",
            gated=True,
            gate_reason=f"cpu_count={cpu_count} cannot express 2-worker parallelism",
            workers=2,
            cpu_count=cpu_count,
            workload=workload,
        )
        print(f"\nmeta-learner table1: gated on {cpu_count}-cpu machine (parity asserted)")
        return

    start = time.perf_counter()
    serial = run_table1(SMOKE, workers=1, **kwargs)
    serial_time = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_table1(SMOKE, workers=2, **kwargs)
    parallel_time = time.perf_counter() - start
    assert serial.rows() == parallel.rows(), "meta-learner Table I diverged from serial"

    speedup = serial_time / parallel_time
    engine_bench(
        "meta_learner_table1",
        serial_s=round(serial_time, 4),
        parallel_s=round(parallel_time, 4),
        speedup=round(speedup, 3),
        workers=2,
        cpu_count=cpu_count,
        workload=workload,
    )
    print(
        f"\nmeta-learner table1: serial {serial_time:.2f}s -> workers=2 "
        f"{parallel_time:.2f}s ({speedup:.2f}x on {cpu_count} cpu)"
    )


# --------------------------------------------------------------------------- #
# serving throughput
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="engine")
def test_bench_serve_throughput(engine_bench):
    """Micro-batched ``PredictionService`` vs naive per-query serving.

    Eight client threads pipeline single-unit ITE queries into the service
    (submit everything, then collect — the shape of heavy concurrent
    traffic); the dispatcher coalesces whatever queues up during each
    execution into the next canonical-size batch on the inference fast path.
    The baseline answers the same queries one ``predict`` call at a time
    (batch 1), which is what a service without a batcher would do.  Every
    micro-batched response is asserted bit-identical to the direct batched
    reference before any timing is trusted.
    """
    import threading

    from repro.serve import PredictionService

    model, _ = _fitted_eval_model(n_units=600, n_domains=1)
    rng = np.random.default_rng(11)
    queries = rng.normal(size=(256, model.n_features))
    reference = model.predict(queries)
    n_threads, per_thread = 8, 96
    indices = [
        np.random.default_rng(thread).integers(0, len(queries), size=per_thread)
        for thread in range(n_threads)
    ]
    last_stats = {}

    def service_round() -> float:
        with PredictionService(model, max_batch=len(queries)) as service:
            service.predict_one(queries[0])  # warm the inference workspaces
            warmup = service.stats()
            failures = []
            barrier = threading.Barrier(n_threads)

            def client(thread_index: int) -> None:
                barrier.wait()
                pendings = [
                    (index, service.submit(queries[index]))
                    for index in indices[thread_index]
                ]
                for index, pending in pendings:
                    response = pending.result(timeout=60.0)
                    if (
                        response.mu0 != reference.y0_hat[index]
                        or response.mu1 != reference.y1_hat[index]
                        or response.ite != reference.ite_hat[index]
                    ):
                        failures.append(int(index))

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            final = service.stats()
            # Report the timed phase only (the warm-up batch of one query
            # would otherwise understate the coalescing).
            last_stats["mean_batch"] = (final.queries - warmup.queries) / (
                final.batches - warmup.batches
            )
        assert failures == [], "micro-batched responses diverged from batched predict"
        return elapsed

    flat = np.concatenate(indices)

    def serial_round() -> float:
        start = time.perf_counter()
        for index in flat:
            model.predict(queries[index : index + 1])
        return time.perf_counter() - start

    serial_time, service_time = _interleaved_best(serial_round, service_round, rounds=4)
    mean_batch = last_stats["mean_batch"]
    total = n_threads * per_thread
    service_qps = total / service_time
    serial_qps = total / serial_time
    speedup = service_qps / serial_qps
    engine_bench(
        "serve_throughput",
        service_qps=round(service_qps, 1),
        serial_qps=round(serial_qps, 1),
        speedup=round(speedup, 3),
        threads=n_threads,
        queries=total,
        mean_batch=round(mean_batch, 2),
        workload="8 pipelined client threads x 96 single-unit ITE queries, canonical batch 256",
    )
    print(
        f"\nserve throughput: per-query {serial_qps:,.0f} q/s -> micro-batched "
        f"{service_qps:,.0f} q/s ({speedup:.2f}x, mean batch {mean_batch:.1f})"
    )
    assert speedup > 1.0, f"micro-batched serving regressed: {speedup:.2f}x vs per-query"


# --------------------------------------------------------------------------- #
# multi-tenant gateway
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="engine")
def test_bench_gateway_throughput(engine_bench):
    """Sharded ``ServingGateway`` vs one ``PredictionService`` front door.

    The load is interleaved multi-stream traffic: 8 client threads each
    pipeline single-unit ITE queries that cycle across 4 streams (4 distinct
    models).  The gateway digest-routes each stream to its own shard, so
    every shard's micro-batcher coalesces its stream's queries onto one
    canonical-size inference batch.  The baseline is what a deployment
    without the gateway would do: a single ``PredictionService`` front door
    must hot-swap to the right model whenever consecutive queries hit
    different streams, which reduces it to swap + batch-1 ``predict`` per
    query — batching cannot survive model interleaving.  Every gateway
    response is asserted bit-identical to the direct batched reference of
    its stream before any timing is trusted.
    """
    import copy
    import threading

    from repro.serve import PredictionService, ServingGateway

    base_model, _ = _fitted_eval_model(n_units=600, n_domains=1)
    n_streams = 4
    streams = [f"s{i:02d}" for i in range(n_streams)]
    # Each stream's service must own its learner (inference workspaces are
    # per-module); identical copies keep the reference check trivial.
    models = {name: copy.deepcopy(base_model) for name in streams}
    rng = np.random.default_rng(13)
    queries = rng.normal(size=(256, base_model.n_features))
    reference = base_model.predict(queries)
    n_threads, per_thread = 8, 96
    thread_indices = [
        np.random.default_rng(thread).integers(0, len(queries), size=per_thread)
        for thread in range(n_threads)
    ]

    def gateway_round() -> float:
        with ServingGateway(
            loader=lambda stream: (models[stream], 0),
            n_shards=n_streams,
            max_batch=len(queries),
            cache_capacity=0,
        ) as gateway:
            for name in streams:  # spin up + warm the inference workspaces
                gateway.predict_one(name, queries[0])
            failures: list = []
            barrier = threading.Barrier(n_threads)

            def client(thread_index: int) -> None:
                barrier.wait()
                pendings = [
                    (index, gateway.submit(streams[(thread_index + q) % n_streams], queries[index]))
                    for q, index in enumerate(thread_indices[thread_index])
                ]
                mine = []
                for index, pending in pendings:
                    response = pending.result(timeout=60.0)
                    if (
                        response.mu0 != reference.y0_hat[index]
                        or response.mu1 != reference.y1_hat[index]
                        or response.ite != reference.ite_hat[index]
                    ):
                        mine.append(int(index))
                if mine:
                    failures.append(mine)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        assert failures == [], "gateway responses diverged from the batched reference"
        return elapsed

    # The no-gateway baseline: one service, forced to swap models whenever
    # the stream changes (every query under interleaved traffic).
    flat = [
        (streams[(thread + q) % n_streams], index)
        for thread in range(n_threads)
        for q, index in enumerate(thread_indices[thread])
    ]

    def single_service_round() -> float:
        with PredictionService(models[streams[0]], model_version=0) as service:
            service.predict(queries[:1])  # warm
            start = time.perf_counter()
            current = streams[0]
            for stream, index in flat:
                if stream != current:
                    service.swap_model(models[stream], model_version=0)
                    current = stream
                service.predict(queries[index : index + 1])
            return time.perf_counter() - start

    single_time, gateway_time = _interleaved_best(
        single_service_round, gateway_round, rounds=4
    )
    total = n_threads * per_thread
    gateway_qps = total / gateway_time
    single_qps = total / single_time
    speedup = gateway_qps / single_qps
    engine_bench(
        "gateway_throughput",
        gateway_qps=round(gateway_qps, 1),
        single_service_qps=round(single_qps, 1),
        speedup=round(speedup, 3),
        streams=n_streams,
        shards=n_streams,
        threads=n_threads,
        queries=total,
        workload="8 threads x 96 queries interleaved over 4 streams, canonical batch 256",
    )
    print(
        f"\ngateway throughput: single service {single_qps:,.0f} q/s -> "
        f"{n_streams}-shard gateway {gateway_qps:,.0f} q/s ({speedup:.2f}x)"
    )
    assert speedup > 1.0, f"gateway throughput regressed: {speedup:.2f}x vs single service"


@pytest.mark.benchmark(group="engine")
def test_bench_gateway_cache(engine_bench):
    """Response-cache hit path vs re-executing repeated queries.

    Serving traffic repeats (refreshes, dashboards, replayed tapes); the
    gateway's TTL+LRU cache answers a repeat without touching the batcher.
    Transparency is asserted first: every cached response is bit-identical
    to the direct batched reference at the canonical execution size.
    """
    import copy

    from repro.serve import ServingGateway

    model, _ = _fitted_eval_model(n_units=600, n_domains=1)
    rng = np.random.default_rng(17)
    hot_rows = rng.normal(size=(64, model.n_features))
    reference = model.predict(hot_rows)
    lookups = np.random.default_rng(23).integers(0, len(hot_rows), size=2000)

    def make_gateway(cache_capacity: int) -> ServingGateway:
        # Each gateway's service owns its learner copy (workspace hygiene).
        return ServingGateway(
            loader=lambda stream: (copy.deepcopy(model), 0),
            n_shards=1,
            max_batch=len(hot_rows),
            cache_capacity=cache_capacity,
        )

    with make_gateway(cache_capacity=4096) as cached, make_gateway(
        cache_capacity=0
    ) as uncached:
        for index in range(len(hot_rows)):  # prime the cache / warm workspaces
            response = cached.predict_one("hot", hot_rows[index])
            assert response.mu0 == reference.y0_hat[index]
            assert response.ite == reference.ite_hat[index]
            uncached.predict_one("hot", hot_rows[index])

        def cached_round() -> None:
            for index in lookups:
                cached.predict_one("hot", hot_rows[index])

        def uncached_round() -> None:
            for index in lookups:
                uncached.predict_one("hot", hot_rows[index])

        uncached_time, cached_time = _interleaved_best(
            _timed_round(uncached_round, 1), _timed_round(cached_round, 1), rounds=4
        )
        sample = cached.predict_one("hot", hot_rows[5])
        assert sample.mu0 == reference.y0_hat[5] and sample.ite == reference.ite_hat[5]
        hit_rate = cached.stats().cache_hit_rate

    cached_qps = len(lookups) / cached_time
    uncached_qps = len(lookups) / uncached_time
    speedup = cached_qps / uncached_qps
    engine_bench(
        "gateway_cache",
        cached_qps=round(cached_qps, 1),
        uncached_qps=round(uncached_qps, 1),
        speedup=round(speedup, 3),
        hit_rate=round(hit_rate, 4),
        workload="2000 repeated single-unit queries over 64 hot rows, canonical batch 64",
    )
    print(
        f"\ngateway cache: uncached {uncached_qps:,.0f} q/s -> cached "
        f"{cached_qps:,.0f} q/s ({speedup:.2f}x, hit rate {100 * hit_rate:.0f}%)"
    )
    assert speedup > 1.0, f"gateway cache regressed: {speedup:.2f}x vs uncached"


@pytest.mark.benchmark(group="engine")
def test_bench_gateway_multiproc(engine_bench, tmp_path):
    """Out-of-process worker fleet vs the in-process sharded gateway.

    Same interleaved multi-stream load as ``test_bench_gateway_throughput``,
    but served by ``MultiprocGateway``: every stream's model runs in a
    separate worker *process* (mmap-loaded from the registry), so inference
    escapes the GIL entirely at the price of a length-prefixed socket
    round-trip per query.  The baseline is the in-process ``ServingGateway``
    over identical models.  Bitwise parity with the direct batched reference
    is asserted on every multiproc response before any timing is trusted.

    On a 1-core runner two worker processes cannot express any parallelism —
    the run would only measure IPC overhead — so the benchmark asserts the
    parity contract and records ``"gated": true`` instead of a misleading
    ratio (``check_regression.py`` skips gated sections).
    """
    import threading

    from repro.core import CERL
    from repro.experiments.multiproc import _spanning_names
    from repro.serve import ModelRegistry, MultiprocGateway, ServingGateway

    cpu_count = os.cpu_count() or 1
    n_workers = 2

    # One briefly-trained CERL registered under every stream name: identical
    # models keep the reference check trivial (mirrors the deepcopy trick in
    # the in-process gateway bench) while the registry/mmap path stays real.
    generator = SyntheticDomainGenerator(SMOKE.synthetic_config(), seed=0)
    stream_data = DomainStream([generator.generate_domain(0)], seed=0)
    learner = CERL(
        stream_data.n_features,
        SMOKE.model_config(seed=0, epochs=3),
        SMOKE.continual_config(memory_budget=SMOKE.memory_budget_table1),
    )
    learner.observe(stream_data.train_data(0), epochs=3)

    n_streams = 4
    streams = _spanning_names("s", n_streams, n_workers)
    registry_root = tmp_path / "registry"
    registry = ModelRegistry(registry_root)
    for name in streams:
        registry.save(name, 0, learner, metadata={"trigger": "bench"})

    rng = np.random.default_rng(13)
    queries = rng.normal(size=(256, learner.n_features))
    reference = learner.predict(queries)

    def check(index: int, response) -> bool:
        return (
            response.mu0 == reference.y0_hat[index]
            and response.mu1 == reference.y1_hat[index]
            and response.ite == reference.ite_hat[index]
        )

    if cpu_count < n_workers:
        # Parity contract still holds across the process boundary; only the
        # throughput claim is meaningless here.
        with MultiprocGateway(
            registry_root,
            streams,
            n_workers=n_workers,
            max_batch=len(queries),
            cache_capacity=0,
        ) as gateway:
            indices = np.random.default_rng(7).integers(0, len(queries), size=32)
            pendings = [
                (int(i), gateway.submit(streams[q % n_streams], queries[i]))
                for q, i in enumerate(indices)
            ]
            for index, pending in pendings:
                assert check(index, pending.result(timeout=60.0)), (
                    "multiproc response diverged from the batched reference"
                )
        engine_bench(
            "gateway_multiproc",
            gated=True,
            gate_reason=(
                f"cpu_count={cpu_count} cannot express {n_workers}-process "
                "parallelism"
            ),
            workers=n_workers,
            cpu_count=cpu_count,
            parity_queries=len(indices),
            workload="parity-only: 32 queries over 4 streams, canonical batch 256",
        )
        print(
            f"\ngateway multiproc: gated on cpu_count={cpu_count} "
            f"(parity asserted on {len(indices)} cross-process responses)"
        )
        return

    n_threads, per_thread = 8, 96
    thread_indices = [
        np.random.default_rng(thread).integers(0, len(queries), size=per_thread)
        for thread in range(n_threads)
    ]

    def fleet_round() -> float:
        with MultiprocGateway(
            registry_root,
            streams,
            n_workers=n_workers,
            max_batch=len(queries),
            cache_capacity=0,
        ) as gateway:
            for name in streams:  # spin up workers + warm their workspaces
                gateway.predict_one(name, queries[0])
            failures: list = []
            barrier = threading.Barrier(n_threads)

            def client(thread_index: int) -> None:
                barrier.wait()
                pendings = [
                    (index, gateway.submit(streams[(thread_index + q) % n_streams], queries[index]))
                    for q, index in enumerate(thread_indices[thread_index])
                ]
                mine = [
                    int(index)
                    for index, pending in pendings
                    if not check(index, pending.result(timeout=60.0))
                ]
                if mine:
                    failures.append(mine)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        assert failures == [], "multiproc responses diverged from the batched reference"
        return elapsed

    def inprocess_round() -> float:
        import copy

        with ServingGateway(
            loader=lambda stream: (copy.deepcopy(learner), 0),
            n_shards=n_streams,
            max_batch=len(queries),
            cache_capacity=0,
        ) as gateway:
            for name in streams:
                gateway.predict_one(name, queries[0])
            barrier = threading.Barrier(n_threads)

            def client(thread_index: int) -> None:
                barrier.wait()
                pendings = [
                    gateway.submit(streams[(thread_index + q) % n_streams], queries[index])
                    for q, index in enumerate(thread_indices[thread_index])
                ]
                for pending in pendings:
                    pending.result(timeout=60.0)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(n_threads)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - start

    inprocess_time, fleet_time = _interleaved_best(
        inprocess_round, fleet_round, rounds=3
    )
    total = n_threads * per_thread
    fleet_qps = total / fleet_time
    inprocess_qps = total / inprocess_time
    speedup = fleet_qps / inprocess_qps
    engine_bench(
        "gateway_multiproc",
        fleet_qps=round(fleet_qps, 1),
        inprocess_qps=round(inprocess_qps, 1),
        speedup=round(speedup, 3),
        workers=n_workers,
        streams=n_streams,
        threads=n_threads,
        queries=total,
        workload="8 threads x 96 queries interleaved over 4 streams, canonical batch 256",
    )
    print(
        f"\ngateway multiproc: in-process {inprocess_qps:,.0f} q/s -> "
        f"{n_workers}-process fleet {fleet_qps:,.0f} q/s ({speedup:.2f}x)"
    )
    # IPC has a real per-query cost; the fleet must stay within a conservative
    # fraction of the in-process gateway even when socket overhead dominates.
    assert speedup > 0.3, f"multiproc fleet collapsed: {speedup:.2f}x vs in-process"


# --------------------------------------------------------------------------- #
# drift detection
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="engine")
def test_bench_drift_detection(engine_bench):
    """Drift-check throughput: cached ndarray scorer vs the Tensor IPM path.

    The monitor scores every traffic window against a *frozen* reference, so
    the reference-side kernel term of the RBF MMD is computed once at
    calibration; a naive monitor would rebuild the full statistic through the
    Tensor IPM (graph bookkeeping plus the reference self-kernel) on every
    check.  Scores are asserted bit-identical before timing — caching must
    not change a single ulp of the detection decision.
    """
    from repro.balance import mmd2_rbf
    from repro.monitor import DriftDetector

    rng = np.random.default_rng(5)
    reference = rng.normal(size=(512, 25))
    window = rng.normal(size=(128, 25)) + 0.25
    detector = DriftDetector("mmd_rbf", quantile=0.95, n_permutations=20, seed=0)
    detector.calibrate(reference, window_size=128)
    sigma = detector.bandwidth
    reference_tensor, window_tensor = Tensor(reference), Tensor(window)

    def tensor_check() -> float:
        with no_grad():
            return float(mmd2_rbf(reference_tensor, window_tensor, sigma=sigma).data)

    def monitor_check() -> float:
        return detector.score(window).statistic

    assert monitor_check() == tensor_check()

    tensor_time, monitor_time = _interleaved_best(
        _timed_round(tensor_check, 40), _timed_round(monitor_check, 40)
    )
    speedup = tensor_time / monitor_time
    engine_bench(
        "drift_detection",
        checks_per_s=round(1.0 / monitor_time, 1),
        tensor_us=round(tensor_time * 1e6, 2),
        monitor_us=round(monitor_time * 1e6, 2),
        speedup=round(speedup, 3),
        workload="rbf-MMD drift check, reference 512x25, window 128x25, median bandwidth",
    )
    print(
        f"\ndrift detection: tensor {tensor_time * 1e6:.1f}us -> monitor "
        f"{monitor_time * 1e6:.1f}us ({speedup:.2f}x, {1.0 / monitor_time:,.0f} checks/s)"
    )
    assert speedup > 1.0, f"cached drift scoring regressed: {speedup:.2f}x vs Tensor path"


def _tape_stage_learner(backend: str, epochs: int):
    """One CERL continual stage (fit_first done, fit_next timed) per backend."""
    generator = SyntheticDomainGenerator(QUICK.synthetic_config(n_units=600), seed=0)
    first, second = generator.generate_domain(0), generator.generate_domain(1)
    model_config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=epochs,
        batch_size=128,
        sinkhorn_iterations=20,
        seed=0,
        backend=backend,
    )
    continual_config = ContinualConfig(memory_budget=200, rehearsal_batch_size=64)
    learner = CERL(first.n_features, model_config, continual_config)
    learner.observe(first)
    start = time.perf_counter()
    learner.observe(second)
    elapsed = time.perf_counter() - start
    return elapsed, learner


@pytest.mark.benchmark(group="engine")
def test_bench_training_tape(engine_bench):
    """Tape-replay training backend vs eager autograd on a full CERL stage.

    The tape traces the Eq. 9 objective once per batch signature and replays
    the recorded kernels in preallocated workspaces, eliminating the per-step
    graph construction (closures, parent tuples, fresh arrays) of the eager
    ``Tensor`` path.  Bit-identity of the resulting parameters is asserted
    before any timing is trusted.

    The ratio is honest wall-clock over the whole stage, which also contains
    work the tape deliberately shares with the eager path: the detached
    Sinkhorn transport solve, minibatch feed construction (old-encoder
    inference, memory gathers) and the optimiser.  On a single-core runner
    there is no BLAS parallelism to shrink the numeric kernels, that shared
    host work dominates the step, and the graph-bookkeeping share the tape
    removes is too small to express the multi-core headline ratio — so the
    section records ``"gated": true`` with the measured numbers instead of
    gating a misleading floor (same policy as ``gateway_multiproc``).
    """
    epochs = 8  # long enough to amortise the two trace compiles
    eager_time, eager_learner = min(
        (_tape_stage_learner("eager", epochs) for _ in range(2)), key=lambda r: r[0]
    )
    tape_time, tape_learner = min(
        (_tape_stage_learner("tape", epochs) for _ in range(2)), key=lambda r: r[0]
    )

    for module_pair in zip(
        (eager_learner.encoder, eager_learner.heads),
        (tape_learner.encoder, tape_learner.heads),
    ):
        for eager_param, tape_param in zip(
            module_pair[0].parameters(), module_pair[1].parameters()
        ):
            assert np.array_equal(eager_param.data, tape_param.data), (
                "tape backend diverged from eager training"
            )

    speedup = eager_time / tape_time
    workload = "fit_next: 600 units, 8 epochs, batch 128, memory 200, wasserstein IPM"
    cpu_count = os.cpu_count() or 1
    if cpu_count < 2:
        engine_bench(
            "training_tape",
            gated=True,
            gate_reason=(
                f"cpu_count={cpu_count}: shared host work (Sinkhorn solve, feeds, "
                "optimiser) dominates the single-core step, hiding the graph-"
                "construction savings the tape delivers"
            ),
            eager_s=round(eager_time, 4),
            tape_s=round(tape_time, 4),
            measured_speedup=round(speedup, 3),
            cpu_count=cpu_count,
            workload=workload,
        )
        print(
            f"\ntraining tape: gated on {cpu_count}-cpu machine "
            f"(eager {eager_time:.3f}s -> tape {tape_time:.3f}s, "
            f"{speedup:.2f}x, parity asserted)"
        )
        return

    engine_bench(
        "training_tape",
        eager_s=round(eager_time, 4),
        tape_s=round(tape_time, 4),
        speedup=round(speedup, 3),
        workload=workload,
    )
    print(
        f"\ntraining tape: eager {eager_time:.3f}s -> tape {tape_time:.3f}s "
        f"({speedup:.2f}x)"
    )
    assert speedup > 1.0, f"tape backend regressed below eager: {speedup:.2f}x"


@pytest.mark.benchmark(group="engine")
def test_bench_cerl_continual_stage(engine_bench):
    """Absolute wall-time of one engine-driven CERL continual stage."""
    generator = SyntheticDomainGenerator(QUICK.synthetic_config(n_units=600), seed=0)
    first, second = generator.generate_domain(0), generator.generate_domain(1)
    model_config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=3,
        batch_size=128,
        sinkhorn_iterations=20,
        seed=0,
    )
    continual_config = ContinualConfig(memory_budget=200, rehearsal_batch_size=64)
    learner = CERL(first.n_features, model_config, continual_config)
    learner.observe(first)

    start = time.perf_counter()
    learner.observe(second)
    elapsed = time.perf_counter() - start
    engine_bench(
        "cerl_stage",
        seconds=round(elapsed, 4),
        workload="fit_next: 600 units, 3 epochs, memory 200",
    )
    print(f"\ncerl continual stage: {elapsed:.3f}s")
    assert learner.domains_seen == 2
