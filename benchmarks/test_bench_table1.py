"""Benchmark: regenerate Table I (News / BlogCatalog under domain shift).

Paper protocol: two sequential domains, memory budget M = 500, strategies
CFR-A / CFR-B / CFR-C / CERL under substantial, moderate and no shift.  The
quick profile scales the corpora and budget down (see EXPERIMENTS.md for the
recorded rows and the paper-vs-measured comparison).
"""

from __future__ import annotations

import pytest

from repro.experiments import QUICK, TABLE1_STRATEGIES, run_table1


@pytest.mark.benchmark(group="table1")
def test_bench_table1_news_all_shifts(benchmark, once, bench_profile):
    """News benchmark, all three shift scenarios, all four strategies."""
    result = once(
        benchmark,
        run_table1,
        bench_profile,
        datasets=("news",),
        scenarios=("substantial", "moderate", "none"),
        strategies=TABLE1_STRATEGIES,
        seed=0,
    )
    print()
    print(result.report())
    # Sanity of the reproduction shape: under substantial shift CFR-A degrades
    # on new data and CFR-B on previous data relative to the ideal CFR-C.
    # Only meaningful at quick scale and above; the smoke profile (CI) just
    # exercises the code paths.
    if bench_profile is QUICK:
        cfr_a = result.get("news", "substantial", "CFR-A")
        cfr_b = result.get("news", "substantial", "CFR-B")
        cfr_c = result.get("news", "substantial", "CFR-C")
        assert cfr_a.new["sqrt_pehe"] >= 0.9 * cfr_c.new["sqrt_pehe"]
        assert cfr_b.previous["sqrt_pehe"] >= 0.9 * cfr_c.previous["sqrt_pehe"]


@pytest.mark.benchmark(group="table1")
def test_bench_table1_blogcatalog_substantial_shift(benchmark, once, bench_profile):
    """BlogCatalog benchmark under substantial shift (the hardest column)."""
    result = once(
        benchmark,
        run_table1,
        bench_profile,
        datasets=("blogcatalog",),
        scenarios=("substantial",),
        strategies=TABLE1_STRATEGIES,
        seed=0,
    )
    print()
    print(result.report())
    assert len(result.rows()) == len(TABLE1_STRATEGIES)
