#!/usr/bin/env python
"""Perf-regression gate: compare ``BENCH_engine.json`` against the baseline.

The engine perf guard (``benchmarks/test_bench_engine.py``) records the
speedup of every optimised hot path into ``BENCH_engine.json``, but recording
alone enforces nothing — a PR could halve the micro-batcher's throughput and
CI would still be green.  This script closes that gap: it compares the
freshly emitted trajectory against the committed snapshot in
``benchmarks/baseline/BENCH_baseline.json`` and fails when any speedup ratio
degrades beyond the tolerance.

Rules
-----
* every baseline section carrying a ``speedup`` is gated: the current run
  must contain that section, and its speedup must be at least
  ``baseline * (1 - tolerance)`` (default tolerance 20%, ``--tolerance`` /
  ``BENCH_TOLERANCE`` override; ``--tolerance 0`` means any degradation
  below the baseline fails);
* sections without a ``speedup`` (absolute wall-time trajectory points like
  ``cerl_stage``) and file metadata are not gated;
* a current section carrying ``"gated": true`` is *skipped*, not failed:
  the benchmark itself determined the machine cannot express the measured
  parallelism (e.g. a process-pool speedup on a 1-core runner) and recorded
  that fact instead of a misleading sub-1.0 ratio.  The skip is reported, so
  a machine that silently gates every section is still visible in the log;
* sections present in the current run but not in the baseline are reported
  as new-and-ungated — commit them to the baseline to start gating them.

Re-baselining
-------------
The committed baseline holds *conservative floors* (the minimum honestly
observed across runs/machines), not a single lucky measurement — shared CI
runners are noisy and the gate must only fail for real regressions.  After a
deliberate perf change, re-baseline with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py -x -q
    cp BENCH_engine.json benchmarks/baseline/BENCH_baseline.json

then review the diff (lower the fresh numbers toward previously observed
minima where a section is known to be noisy) and commit it alongside the
change that justified it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINE = BENCH_DIR / "baseline" / "BENCH_baseline.json"
DEFAULT_CURRENT = BENCH_DIR.parent / "BENCH_engine.json"

#: Top-level keys that describe the file, not a benchmark section.
METADATA_KEYS = {"generated_by", "python", "machine", "note"}


def load_speedups(payload: dict) -> Dict[str, float]:
    """Extract ``section -> speedup`` from a benchmark payload."""
    speedups = {}
    for section, values in payload.items():
        if section in METADATA_KEYS or not isinstance(values, dict):
            continue
        if "speedup" in values:
            speedups[section] = float(values["speedup"])
    return speedups


def gated_sections(payload: dict) -> set:
    """Sections that declared themselves machine-gated (``"gated": true``)."""
    return {
        section
        for section, values in payload.items()
        if section not in METADATA_KEYS
        and isinstance(values, dict)
        and values.get("gated") is True
    }


def compare(
    baseline: dict, current: dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(failures, report)`` — human-readable failure strings (empty
    when the gate passes) and one status line per inspected section.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    baseline_speedups = load_speedups(baseline)
    current_speedups = load_speedups(current)
    gated = gated_sections(current)
    failures: List[str] = []
    report: List[str] = []
    for section, base in sorted(baseline_speedups.items()):
        floor = base * (1.0 - tolerance)
        got = current_speedups.get(section)
        if section in gated and got is None:
            reason = ""
            values = current.get(section)
            if isinstance(values, dict):
                reason = str(values.get("gate_reason", ""))
            report.append(
                f"skip {section}: gated by the benchmark on this machine"
                + (f" ({reason})" if reason else "")
            )
            continue
        if got is None:
            failures.append(
                f"{section}: missing from the current run (baseline {base:.3f}x) — "
                f"a deleted benchmark must be removed from the baseline explicitly"
            )
            report.append(f"FAIL {section}: missing (baseline {base:.3f}x)")
        elif got < floor:
            failures.append(
                f"{section}: {got:.3f}x is below the gate "
                f"({base:.3f}x baseline - {100 * tolerance:.0f}% tolerance = "
                f"{floor:.3f}x floor)"
            )
            report.append(f"FAIL {section}: {got:.3f}x < floor {floor:.3f}x")
        else:
            report.append(
                f"ok   {section}: {got:.3f}x (floor {floor:.3f}x, baseline {base:.3f}x)"
            )
    for section in sorted(set(current_speedups) - set(baseline_speedups)):
        report.append(
            f"new  {section}: {current_speedups[section]:.3f}x (not in baseline, ungated)"
        )
    return failures, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when BENCH_engine.json regresses against the baseline."
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed snapshot"
    )
    parser.add_argument(
        "--current", type=Path, default=DEFAULT_CURRENT, help="freshly emitted results"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.2")),
        help="allowed fractional degradation of each speedup (default 0.2; "
        "0 fails on any degradation)",
    )
    args = parser.parse_args(argv)

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not path.exists():
            print(f"perf gate: {label} file not found: {path}", file=sys.stderr)
            return 2
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    failures, report = compare(baseline, current, args.tolerance)

    print(f"perf gate: {args.current} vs {args.baseline} (tolerance {args.tolerance})")
    for line in report:
        print(f"  {line}")
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\nIf the regression is intended (or the baseline was set too "
            "optimistically), re-baseline as described in "
            "benchmarks/check_regression.py.",
            file=sys.stderr,
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
