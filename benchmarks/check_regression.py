#!/usr/bin/env python
"""Perf-regression gate: compare emitted BENCH files against committed floors.

The engine perf guard (``benchmarks/test_bench_engine.py``) records the
speedup of every optimised hot path into ``BENCH_engine.json``, and the SLO
harness (``examples/slo_harness.py``) records load/chaos outcomes into
``BENCH_slo.json`` — but recording alone enforces nothing: a PR could halve
the micro-batcher's throughput or break chaos recovery and CI would still be
green.  This script closes that gap: it compares each freshly emitted file
against its committed snapshot under ``benchmarks/baseline/`` and fails when
any gated metric degrades beyond the tolerance.

Rules
-----
* a section's gated metric is ``speedup`` by default; a section may declare a
  different one with ``"gate_metric": "<key>"`` (always bigger-is-better —
  rates, fractions, 0/1 outcomes).  Every baseline section carrying a value
  for its metric is gated: the current run must contain that section, and its
  value must be at least ``baseline * (1 - tolerance)`` (default tolerance
  20%, ``--tolerance`` / ``BENCH_TOLERANCE`` override; ``--tolerance 0``
  means any degradation below the baseline fails);
* sections without a gated metric (absolute wall-time trajectory points like
  ``cerl_stage``, informational latency quantiles) and file metadata are not
  gated;
* a current section carrying ``"gated": true`` *without* a metric value is
  skipped, not failed: the benchmark itself determined the machine cannot
  express the measured property (e.g. a process-pool speedup or a
  multiprocess SLO run on a 1-core runner) and recorded that fact instead of
  a misleading number.  The skip is reported, so a machine that silently
  gates every section is still visible in the log.  A section recording both
  a value and the flag is still compared — a benchmark cannot smuggle a
  regression through by also flagging itself gated;
* sections present in the current run but not in the baseline are reported
  as new-and-ungated — commit them to the baseline to start gating them;
* the SLO pair is optional by default (not every CI job runs the harness):
  a missing ``BENCH_slo.json`` is reported and skipped unless
  ``--require-slo`` is given, which turns it into a hard error.

Re-baselining
-------------
The committed baselines hold *conservative floors* (the minimum honestly
observed across runs/machines), not a single lucky measurement — shared CI
runners are noisy and the gate must only fail for real regressions.  After a
deliberate perf change, re-baseline with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py -x -q
    cp BENCH_engine.json benchmarks/baseline/BENCH_baseline.json
    PYTHONPATH=src python examples/slo_harness.py --smoke
    cp BENCH_slo.json benchmarks/baseline/BENCH_slo_baseline.json

then review the diff (lower the fresh numbers toward previously observed
minima where a section is known to be noisy; contract metrics like
``recovered_fraction`` and ``verified`` stay at 1.0) and commit it alongside
the change that justified it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINE = BENCH_DIR / "baseline" / "BENCH_baseline.json"
DEFAULT_CURRENT = BENCH_DIR.parent / "BENCH_engine.json"
DEFAULT_SLO_BASELINE = BENCH_DIR / "baseline" / "BENCH_slo_baseline.json"
DEFAULT_SLO_CURRENT = BENCH_DIR.parent / "BENCH_slo.json"

#: Top-level keys that describe the file, not a benchmark section.
METADATA_KEYS = {"generated_by", "python", "machine", "note"}


def section_metric(values: dict) -> Optional[Tuple[str, Optional[float]]]:
    """The gated ``(metric, value)`` of one section, or None when ungated.

    ``value`` is None when the section declares its metric but recorded no
    number (a machine-gated section).
    """
    if "gate_metric" in values:
        metric = str(values["gate_metric"])
        raw = values.get(metric)
        return metric, (float(raw) if raw is not None else None)
    if "speedup" in values:
        return "speedup", float(values["speedup"])
    return None


def load_metrics(payload: dict) -> Dict[str, Tuple[str, Optional[float]]]:
    """Extract ``section -> (metric, value)`` from a benchmark payload."""
    metrics = {}
    for section, values in payload.items():
        if section in METADATA_KEYS or not isinstance(values, dict):
            continue
        gated_metric = section_metric(values)
        if gated_metric is not None:
            metrics[section] = gated_metric
    return metrics


def load_speedups(payload: dict) -> Dict[str, float]:
    """Extract ``section -> speedup`` from a benchmark payload."""
    return {
        section: value
        for section, (metric, value) in load_metrics(payload).items()
        if metric == "speedup" and value is not None
    }


def gated_sections(payload: dict) -> set:
    """Sections that declared themselves machine-gated (``"gated": true``)."""
    return {
        section
        for section, values in payload.items()
        if section not in METADATA_KEYS
        and isinstance(values, dict)
        and values.get("gated") is True
    }


def _unit(metric: str) -> str:
    return "x" if metric == "speedup" else f" {metric}"


def compare(
    baseline: dict, current: dict, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(failures, report)`` — human-readable failure strings (empty
    when the gate passes) and one status line per inspected section.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    baseline_metrics = load_metrics(baseline)
    gated = gated_sections(current)
    failures: List[str] = []
    report: List[str] = []
    for section, (metric, base) in sorted(baseline_metrics.items()):
        if base is None:
            # The committed baseline itself recorded a machine gate for this
            # section — nothing to compare against; keep it visible.
            report.append(f"skip {section}: baseline carries no {metric} value")
            continue
        unit = _unit(metric)
        floor = base * (1.0 - tolerance)
        values = current.get(section)
        got = None
        if isinstance(values, dict) and values.get(metric) is not None:
            got = float(values[metric])
        if section in gated and got is None:
            reason = ""
            if isinstance(values, dict):
                reason = str(values.get("gate_reason", ""))
            report.append(
                f"skip {section}: gated by the benchmark on this machine"
                + (f" ({reason})" if reason else "")
            )
            continue
        if got is None:
            failures.append(
                f"{section}: missing from the current run (baseline {base:.3f}{unit}) — "
                f"a deleted benchmark must be removed from the baseline explicitly"
            )
            report.append(f"FAIL {section}: missing (baseline {base:.3f}{unit})")
        elif got < floor:
            failures.append(
                f"{section}: {got:.3f}{unit} is below the gate "
                f"({base:.3f}{unit} baseline - {100 * tolerance:.0f}% tolerance = "
                f"{floor:.3f}{unit} floor)"
            )
            report.append(f"FAIL {section}: {got:.3f}{unit} < floor {floor:.3f}{unit}")
        else:
            report.append(
                f"ok   {section}: {got:.3f}{unit} (floor {floor:.3f}{unit}, "
                f"baseline {base:.3f}{unit})"
            )
    current_metrics = load_metrics(current)
    for section in sorted(set(current_metrics) - set(baseline_metrics)):
        metric, value = current_metrics[section]
        if value is None:
            continue
        report.append(
            f"new  {section}: {value:.3f}{_unit(metric)} (not in baseline, ungated)"
        )
    return failures, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when BENCH_engine.json or BENCH_slo.json regresses "
        "against the committed baselines."
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed snapshot"
    )
    parser.add_argument(
        "--current", type=Path, default=DEFAULT_CURRENT, help="freshly emitted results"
    )
    parser.add_argument(
        "--slo-baseline",
        type=Path,
        default=DEFAULT_SLO_BASELINE,
        help="committed SLO snapshot",
    )
    parser.add_argument(
        "--slo-current",
        type=Path,
        default=DEFAULT_SLO_CURRENT,
        help="freshly emitted SLO harness results",
    )
    parser.add_argument(
        "--require-slo",
        action="store_true",
        help="fail (exit 2) when the SLO results file is missing instead of "
        "skipping the SLO gate",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_TOLERANCE", "0.2")),
        help="allowed fractional degradation of each gated metric (default 0.2; "
        "0 fails on any degradation)",
    )
    args = parser.parse_args(argv)

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not path.exists():
            print(f"perf gate: {label} file not found: {path}", file=sys.stderr)
            return 2

    pairs = [(args.baseline, args.current)]
    if args.slo_current.exists():
        if not args.slo_baseline.exists():
            print(
                f"perf gate: slo baseline file not found: {args.slo_baseline}",
                file=sys.stderr,
            )
            return 2
        pairs.append((args.slo_baseline, args.slo_current))
    elif args.require_slo:
        print(
            f"perf gate: slo current file not found: {args.slo_current} "
            f"(--require-slo)",
            file=sys.stderr,
        )
        return 2
    else:
        print(
            f"perf gate: no SLO results at {args.slo_current}; skipping the "
            f"SLO gate (pass --require-slo to make this an error)"
        )

    failures: List[str] = []
    for baseline_path, current_path in pairs:
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        pair_failures, report = compare(baseline, current, args.tolerance)
        failures.extend(pair_failures)
        print(
            f"perf gate: {current_path} vs {baseline_path} "
            f"(tolerance {args.tolerance})"
        )
        for line in report:
            print(f"  {line}")
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\nIf the regression is intended (or the baseline was set too "
            "optimistically), re-baseline as described in "
            "benchmarks/check_regression.py.",
            file=sys.stderr,
        )
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
