"""Frozen seed-state implementations used as benchmark baselines.

``BENCH_engine.json`` records the speedup of the optimised autograd backward
pass and the vectorised Sinkhorn solver *relative to the seed implementation*.
To keep that comparison honest and self-contained, this module carries a
trimmed, verbatim copy of the seed's hot paths (``repro.nn.tensor.Tensor``
backward machinery and ``repro.balance.ipm._sinkhorn_plan``) as they were
before the engine refactor.  Do not "fix" or optimise this file — its entire
purpose is to stay slow and identical to the seed.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class SeedTensor:
    """Seed-state autograd tensor: unfused grads, copying accumulate, slow topo."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: tuple = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @staticmethod
    def _make(data, parents: Sequence["SeedTensor"], backward) -> "SeedTensor":
        out = SeedTensor(data, requires_grad=any(p.requires_grad for p in parents))
        if out.requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def __add__(self, other: "SeedTensor") -> "SeedTensor":
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return SeedTensor._make(data, (self, other), backward)

    def __sub__(self, other: "SeedTensor") -> "SeedTensor":
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return SeedTensor._make(data, (self, other), backward)

    def __mul__(self, other: "SeedTensor") -> "SeedTensor":
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return SeedTensor._make(data, (self, other), backward)

    def __matmul__(self, other: "SeedTensor") -> "SeedTensor":
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return SeedTensor._make(data, (self, other), backward)

    def relu(self) -> "SeedTensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return SeedTensor._make(data, (self,), backward)

    def sum(self) -> "SeedTensor":
        data = self.data.sum()

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.broadcast_to(np.asarray(grad), self.shape).copy())

        return SeedTensor._make(data, (self,), backward)

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Verbatim seed backward: resumable-iterator DFS + per-node set ops."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar output")
            grad = np.ones_like(self.data)

        topo: list = []
        visited: set = set()

        def build(node: "SeedTensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def seed_logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    maxes = values.max(axis=axis, keepdims=True)
    out = np.log(np.exp(values - maxes).sum(axis=axis, keepdims=True)) + maxes
    return np.squeeze(out, axis=axis)


def seed_sinkhorn_plan(cost: np.ndarray, epsilon: float, num_iters: int) -> np.ndarray:
    """Verbatim seed Sinkhorn: fresh array allocations on every iteration."""
    n, m = cost.shape
    log_mu = -np.log(n) * np.ones(n)
    log_nu = -np.log(m) * np.ones(m)
    log_k = -cost / epsilon
    f = np.zeros(n)
    g = np.zeros(m)
    for _ in range(num_iters):
        f = epsilon * (log_mu - seed_logsumexp(log_k + g[None, :] / epsilon, axis=1))
        g = epsilon * (log_nu - seed_logsumexp(log_k + f[:, None] / epsilon, axis=0))
    log_plan = log_k + f[:, None] / epsilon + g[None, :] / epsilon
    return np.exp(log_plan)
