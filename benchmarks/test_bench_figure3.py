"""Benchmark: regenerate Figure 3 (memory-budget curves, hyper-parameter sweeps)
and the in-text cosine-normalisation ablation.

Paper protocol: five sequential synthetic domains; CERL with memory budgets
M in {1000, 5000, 10000} versus the ideal learner that keeps all raw data
(panels a/b); sensitivity of alpha and delta (panels c/d); cosine-norm
ablation on the five-domain stream (Sec. IV-C in-text numbers).
The quick profile uses fewer domains/units so the full benchmark run stays in
the minutes range.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    QUICK,
    run_cosine_ablation_stream,
    run_figure3_memory,
    run_figure3_sensitivity,
)

#: Domains used for the stream benches (paper: 5; reduced for runtime).
N_DOMAINS = 3


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_memory_budget_curves(benchmark, once, bench_profile):
    """Panels (a)/(b): per-stage metrics for several memory budgets vs the ideal."""
    base = bench_profile.synthetic_units
    result = once(
        benchmark,
        run_figure3_memory,
        bench_profile,
        memory_budgets=[base // 10, base // 2, base],
        n_domains=N_DOMAINS,
        include_ideal=True,
        seed=0,
    )
    print()
    print(result.report())
    # Larger budgets should not be worse than the smallest budget at the final stage.
    if bench_profile is QUICK:
        final = {label: stages[-1]["sqrt_pehe"] for label, stages in result.curves.items()}
        smallest = final[f"CERL (M={base // 10})"]
        largest = final[f"CERL (M={base})"]
        assert largest <= smallest * 1.25


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_alpha_sensitivity(benchmark, once, bench_profile):
    """Panel (c): sensitivity of the IPM weight alpha."""
    result = once(
        benchmark,
        run_figure3_sensitivity,
        "alpha",
        [0.1, 0.5, 1.0, 2.0],
        bench_profile,
        n_domains=2,
        seed=0,
    )
    print()
    print(result.report())
    # The paper reports stability over a large range; allow a generous factor
    # (asserted at quick scale; smoke only exercises the code paths).
    if bench_profile is QUICK:
        assert result.relative_spread < 2.0


@pytest.mark.benchmark(group="figure3")
def test_bench_figure3_delta_sensitivity(benchmark, once, bench_profile):
    """Panel (d): sensitivity of the transformation weight delta."""
    result = once(
        benchmark,
        run_figure3_sensitivity,
        "delta",
        [0.1, 0.5, 1.0, 2.0],
        bench_profile,
        n_domains=2,
        seed=0,
    )
    print()
    print(result.report())
    if bench_profile is QUICK:
        assert result.relative_spread < 2.0


@pytest.mark.benchmark(group="figure3")
def test_bench_cosine_norm_ablation_stream(benchmark, once, bench_profile):
    """In-text ablation: cosine normalisation on the multi-domain stream."""
    outcomes = once(
        benchmark, run_cosine_ablation_stream, bench_profile, n_domains=N_DOMAINS, seed=0
    )
    print()
    for label, metrics in outcomes.items():
        print(f"{label}: sqrt_pehe={metrics['sqrt_pehe']:.3f} ate_error={metrics['ate_error']:.3f}")
    assert set(outcomes) == {"CERL", "CERL (w/o cosine norm)"}
