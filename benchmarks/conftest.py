"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at the
``QUICK`` profile (see ``repro.experiments.profiles``): the same code paths as
the paper-scale experiment, scaled down so a full ``pytest benchmarks/
--benchmark-only`` run finishes in minutes on a laptop.  The generated
rows/series are printed so the run doubles as a reproduction report; the
paper-vs-measured comparison is recorded in EXPERIMENTS.md.

Setting ``BENCH_PROFILE=smoke`` in the environment switches the table/figure
benchmarks to the ``SMOKE`` profile — every code path still runs, at a scale
CI can afford per push (the numbers are then reproduction smoke checks, not
report material).  The :func:`bench_profile` fixture resolves the choice.

Engine perf guard
-----------------
``benchmarks/test_bench_engine.py`` measures the substrate hot paths (autograd
backward pass, Sinkhorn inner loop, inference fast path, batched suite
evaluation, parallel Table I execution, micro-batched serving throughput,
gateway fleet throughput and response cache, drift-check scoring, one CERL
continual stage) against the frozen seed implementations in
``benchmarks/_seed_reference.py`` and the reference serial/Tensor paths.  Whatever it records through the
:func:`engine_bench` fixture is written to ``BENCH_engine.json`` in the
repository root at session end, giving future PRs a perf trajectory to
compare against — and ``benchmarks/check_regression.py`` *enforces* it in CI
against the committed floor snapshot ``benchmarks/baseline/BENCH_baseline.json``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.experiments import QUICK, SMOKE

_ENGINE_BENCH_RESULTS: dict = {}

BENCH_ENGINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def resolve_bench_profile():
    """Profile for the table/figure benchmarks (``BENCH_PROFILE`` env override)."""
    choice = os.environ.get("BENCH_PROFILE", "quick").lower()
    if choice == "smoke":
        return SMOKE
    if choice == "quick":
        return QUICK
    raise ValueError(f"unknown BENCH_PROFILE '{choice}' (expected 'quick' or 'smoke')")


@pytest.fixture(scope="session")
def bench_profile():
    """Fixture form of :func:`resolve_bench_profile`."""
    return resolve_bench_profile()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment drivers train many neural networks, so repeated rounds
    would multiply minutes of work for no extra statistical value; a single
    timed round per benchmark keeps the harness usable.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once


@pytest.fixture
def engine_bench():
    """Recorder for the engine perf guard; results land in BENCH_engine.json."""

    def record(section: str, **values) -> None:
        _ENGINE_BENCH_RESULTS.setdefault(section, {}).update(values)

    return record


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write BENCH_engine.json when the engine benchmarks recorded anything."""
    if not _ENGINE_BENCH_RESULTS:
        return
    payload = {
        "generated_by": "PYTHONPATH=src python -m pytest benchmarks/test_bench_engine.py -q",
        "python": platform.python_version(),
        "machine": platform.machine(),
        **_ENGINE_BENCH_RESULTS,
    }
    BENCH_ENGINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
