"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at the
``QUICK`` profile (see ``repro.experiments.profiles``): the same code paths as
the paper-scale experiment, scaled down so a full ``pytest benchmarks/
--benchmark-only`` run finishes in minutes on a laptop.  The generated
rows/series are printed so the run doubles as a reproduction report; the
paper-vs-measured comparison is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiment drivers train many neural networks, so repeated rounds
    would multiply minutes of work for no extra statistical value; a single
    timed round per benchmark keeps the harness usable.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    """Fixture exposing :func:`run_once`."""
    return run_once
