"""Setuptools shim.

The environment used for the reproduction has no network access and an older
setuptools without PEP 660 editable-install support, so this ``setup.py``
enables the legacy ``pip install -e . --no-build-isolation --no-use-pep517``
path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
