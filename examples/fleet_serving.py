#!/usr/bin/env python
"""Fleet serving: many streams, one gateway, live adaptation under load.

The multi-tenant counterpart of ``examples/continual_serving.py``:

1. several independent streams are trained (one CERL lineage each) and
   registered in one shared :class:`~repro.serve.ModelRegistry`;
2. a :class:`~repro.serve.ServingGateway` fronts the fleet — stream keys are
   digest-routed onto shards, each stream's service is spun up lazily from
   its registry head, and responses are cached (TTL+LRU, keyed on stream,
   model version and row digest — bitwise transparent);
3. concurrent client threads hammer every stream at once; while they serve,
   one stream observes a new domain, saves version 1 and hot-swaps through
   the gateway — the other streams keep answering undisturbed;
4. every response is verified bitwise against the direct batched ``predict``
   of the model version it reports, and the fleet-wide gateway stats
   (per-shard throughput, latency, occupancy, cache hit rate) are printed.

Run with:  python examples/fleet_serving.py [--smoke]

``--smoke`` shrinks everything so the script finishes in seconds (used by CI).
"""

from __future__ import annotations

import argparse

from repro.experiments import QUICK, SMOKE, format_table, run_fleet_deployment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else QUICK

    result = run_fleet_deployment(
        n_streams=3 if args.smoke else 4,
        profile=profile,
        queries_per_stream=24 if args.smoke else 200,
        clients_per_stream=2 if args.smoke else 4,
        epochs=3 if args.smoke else 20,
        seed=1,
    )

    print(format_table(result.summary_rows(), title="Fleet deployment"))
    print(
        f"adapted '{result.adapted_stream}' to version {result.adapted_version} "
        f"while the rest of the fleet kept serving"
    )
    stats = result.stats
    print(
        f"served {result.total_queries} single-unit queries across "
        f"{len(result.streams)} streams in {result.elapsed_s:.2f}s "
        f"({result.throughput_qps:,.0f} q/s), cache hit rate "
        f"{100.0 * stats.cache_hit_rate:.0f}%, shed {stats.shed}"
    )
    for shard in stats.shards:
        if not shard.streams:
            continue
        print(
            f"  shard {shard.index}: streams {list(shard.streams)}, "
            f"answered {shard.answered}, mean latency "
            f"{1e3 * shard.mean_latency_s:.2f}ms, occupancy {shard.occupancy:.2f}, "
            f"batches {shard.service.batches} (largest {shard.service.largest_batch})"
        )
    if not result.parity:
        raise SystemExit(
            "responses diverged from the batched reference: "
            f"{[r.name for r in result.streams if not r.parity]}"
        )
    print("every response bit-identical to its version's direct batched predict")


if __name__ == "__main__":
    main()
