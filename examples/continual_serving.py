#!/usr/bin/env python
"""The full continual-deployment lifecycle: train, version, serve, roll back.

Walks the paper's deployment scenario end to end:

1. domains arrive one at a time; after each one, CERL is updated and the
   engine's ``Checkpoint`` callback stores a new version in a
   :class:`~repro.serve.ModelRegistry` (model + representation memory only —
   no raw data ever persists);
2. every stored version is reloaded and re-evaluated — per-domain PEHE must
   match the live learner *exactly* at each point of the stream;
3. a :class:`~repro.serve.PredictionService` serves the head version to
   concurrent clients, micro-batching their single-unit ITE queries onto the
   no-graph inference fast path;
4. the head is rolled back one version and the service hot-swaps to it.

Run with:  python examples/continual_serving.py [--smoke]

``--smoke`` shrinks everything so the script finishes in seconds (used by CI).
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.data import DomainStream, SyntheticDomainGenerator
from repro.experiments import format_table, run_continual_deployment
from repro.serve import ModelRegistry, PredictionService
from repro.experiments import SMOKE, QUICK


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else QUICK
    n_domains = 3
    epochs = 3 if args.smoke else 30

    generator = SyntheticDomainGenerator(
        profile.synthetic_config(n_units=240 if args.smoke else 1200), seed=1
    )
    stream = DomainStream(generator.generate_stream(n_domains), seed=1)
    registry = ModelRegistry(Path(tempfile.mkdtemp(prefix="cerl_registry_")))

    # --- 1+2: continual training with per-domain versioning and verification --
    result = run_continual_deployment(
        stream,
        registry,
        profile.model_config(seed=1, epochs=epochs),
        profile.continual_config(memory_budget=120 if args.smoke else 400),
        stream_name="synthetic",
        epochs=epochs,
    )
    rows = [
        {
            "domain": stage.domain_index,
            "checkpoint": Path(stage.checkpoint).name,
            "mean sqrt_pehe (seen)": pehe,
            "reload parity": "exact" if stage.parity else "DIVERGED",
        }
        for stage, pehe in zip(result.stages, result.live_pehe_trajectory())
    ]
    print(format_table(rows, title="Continual deployment of stream 'synthetic'"))
    if not result.parity:
        raise SystemExit(f"reload parity failed at domains {result.mismatches()}")
    print(
        f"registry versions: {registry.list_versions('synthetic')} "
        f"(head = {registry.head_version('synthetic')})\n"
    )

    # --- 3: serve the head version under concurrent single-unit queries -------
    queries = stream[n_domains - 1].test.covariates
    n_clients = 4
    per_client = 25 if args.smoke else 100
    with PredictionService.from_registry(
        registry, "synthetic", max_batch=len(queries)
    ) as service:
        reference = service.predict(queries)  # direct batched reference

        mismatches = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for index in rng.integers(0, len(queries), size=per_client):
                response = service.predict_one(queries[index], timeout=30.0)
                if response.ite != reference.ite_hat[index]:
                    mismatches.append(int(index))

        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(s,)) for s in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = service.stats()
        print(
            f"served {stats.queries} single-unit queries from {n_clients} threads "
            f"in {elapsed:.2f}s ({stats.queries / elapsed:,.0f} q/s), "
            f"coalesced into {stats.batches} batches "
            f"(mean {stats.mean_batch:.1f}, largest {stats.largest_batch})"
        )
        if mismatches:
            raise SystemExit(f"serving diverged from the batched reference: {mismatches[:5]}")
        print("every response bit-identical to the direct batched predict\n")

        # --- 4: roll back one version; the service hot-swaps ------------------
        registry.rollback("synthetic", n_domains - 2)
        service.reload(registry, "synthetic")
        sample = service.predict_one(queries[0])
        print(
            f"rolled back to version {service.model_version}; "
            f"sample query now answers ite={sample.ite:+.4f} "
            f"(head was {reference.ite_hat[0]:+.4f})"
        )


if __name__ == "__main__":
    main()
