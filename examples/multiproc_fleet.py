#!/usr/bin/env python
"""Out-of-process fleet: worker processes, kill/restart, live adaptation.

The process-fleet counterpart of ``examples/fleet_serving.py``:

1. several independent streams are trained and registered in one shared
   :class:`~repro.serve.ModelRegistry`;
2. a :class:`~repro.serve.fleet.MultiprocGateway` fronts the fleet — each
   stream's checkpoint is **memory-mapped** inside its digest-assigned worker
   *process*, queries travel a pickle-free length-prefixed wire protocol,
   and responses stay **bitwise identical** to an in-process batched
   ``predict`` of the version each response reports;
3. one worker is SIGKILLed mid-load: every stream on another worker keeps
   answering without a single error, while the victim's queries fail with
   typed errors only (no hangs, no garbage);
4. the dead worker is restarted (its stream recovers, bitwise), then the
   recovered stream observes a new domain, saves version 1, and hot-swaps
   through the controller-compatible ``gateway.service(stream).reload``
   hook — a deterministic post-swap wave proves version isolation.

Run with:  python examples/multiproc_fleet.py [--smoke]

``--smoke`` shrinks everything so the script finishes in seconds (used by CI).
"""

from __future__ import annotations

import argparse

from repro.experiments import QUICK, SMOKE, format_table, run_multiproc_fleet


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else QUICK

    result = run_multiproc_fleet(
        n_streams=3 if args.smoke else 4,
        profile=profile,
        n_workers=2,
        queries_per_stream=16 if args.smoke else 120,
        clients_per_stream=2 if args.smoke else 4,
        epochs=3 if args.smoke else 20,
        seed=1,
    )

    print(format_table(result.summary_rows(), title="Multiprocess fleet"))
    print(
        f"killed worker {result.victim_worker} (stream '{result.victim_stream}') "
        f"mid-load: {result.outage_typed_failures} typed failures, "
        f"{result.outage_untyped_failures} untyped, "
        f"{result.outage_cache_hits} served from cache, "
        f"survivors {result.survivors} with {result.survivor_errors} errors"
    )
    print(
        f"restarted worker {result.victim_worker}: recovered={result.recovered}; "
        f"adapted '{result.adapted_stream}' to version {result.adapted_version} "
        f"through the controller-compatible reload hook"
    )
    stats = result.stats
    print(
        f"served {result.total_queries} single-unit queries across "
        f"{len(result.streams)} streams in {result.elapsed_s:.2f}s "
        f"({result.throughput_qps:,.0f} q/s), cache hit rate "
        f"{100.0 * stats.cache_hit_rate:.0f}%, shed {stats.shed}"
    )
    for shard in stats.shards:
        if not shard.streams:
            continue
        print(
            f"  worker {shard.index}: streams {list(shard.streams)}, "
            f"answered {shard.answered}, mean latency "
            f"{1e3 * shard.mean_latency_s:.2f}ms, "
            f"batches {shard.service.batches} (largest {shard.service.largest_batch})"
        )
    if not result.isolated:
        raise SystemExit(
            f"worker kill leaked across tenants: survivor_errors="
            f"{result.survivor_errors}, untyped={result.outage_untyped_failures}, "
            f"recovered={result.recovered}"
        )
    if not result.parity:
        raise SystemExit(
            "responses diverged from the batched reference: "
            f"{[r.name for r in result.streams if not r.parity]}"
        )
    print(
        "every response bit-identical to its version's direct batched predict "
        "— across the process boundary, the kill, the restart and the hot swap"
    )


if __name__ == "__main__":
    main()
