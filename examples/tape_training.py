#!/usr/bin/env python
"""The tape training backend: trace the CERL objective once, replay every step.

Demonstrates ``ModelConfig(backend="tape")`` end to end:

1. two identical CERL learners train on the same two-domain synthetic stream,
   one on the default eager autograd, one on the tape backend that records
   the Eq. 5 / Eq. 9 loss as a flat kernel list with preallocated
   forward/backward workspaces and replays it allocation-free;
2. every parameter of the two learners is compared bit for bit — the tape is
   a pure performance switch, down to the rehearsal RNG draws, dropout masks
   and gradient clipping of the continual stage;
3. the executor's compile/replay counters show the trace amortisation, and
   both stage wall-times are reported.

Run with:  python examples/tape_training.py [--smoke]

``--smoke`` shrinks everything so the script finishes in seconds (used by CI).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import CERL, ContinualConfig, ModelConfig
from repro.data import SyntheticDomainGenerator
from repro.experiments import QUICK, SMOKE


def train(backend: str, profile, n_units: int, epochs: int):
    """Train fit_first + fit_next on a fixed stream; return learner and times."""
    generator = SyntheticDomainGenerator(profile.synthetic_config(n_units=n_units), seed=0)
    first, second = generator.generate_domain(0), generator.generate_domain(1)
    model_config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=epochs,
        batch_size=128,
        seed=0,
        backend=backend,
    )
    continual_config = ContinualConfig(memory_budget=200, rehearsal_batch_size=64)
    learner = CERL(first.n_features, model_config, continual_config)
    start = time.perf_counter()
    learner.observe(first)
    learner.observe(second)
    elapsed = time.perf_counter() - start
    return learner, elapsed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else QUICK
    n_units = 200 if args.smoke else 600
    epochs = 3 if args.smoke else 8

    print(f"training two CERL learners on the same stream ({n_units} units/domain)")
    eager_learner, eager_time = train("eager", profile, n_units, epochs)
    tape_learner, tape_time = train("tape", profile, n_units, epochs)

    mismatches = 0
    n_params = 0
    for eager_module, tape_module in (
        (eager_learner.encoder, tape_learner.encoder),
        (eager_learner.heads, tape_learner.heads),
    ):
        for eager_param, tape_param in zip(
            eager_module.parameters(), tape_module.parameters()
        ):
            n_params += 1
            if not np.array_equal(eager_param.data, tape_param.data):
                mismatches += 1
    print(f"parameters compared: {n_params}, bitwise mismatches: {mismatches}")
    if mismatches:
        raise SystemExit("tape backend diverged from eager training")

    print(f"eager stage: {eager_time:.3f}s   tape stage: {tape_time:.3f}s")
    print(
        "tape learner memory size:",
        tape_learner.memory_size,
        "| domains seen:",
        tape_learner.domains_seen,
    )
    print("bit-identical: the tape backend is a pure performance switch")


if __name__ == "__main__":
    main()
