#!/usr/bin/env python
"""Memory-budget study: accuracy versus stored feature representations.

Regenerates the protocol of Figure 3(a)/(b): CERL is run over a stream of
synthetic domains with several memory budgets, and compared against the ideal
learner that keeps every raw observation.  The output shows how performance
degrades gracefully as the memory budget shrinks, and how much raw storage is
avoided.

Run with:  python examples/memory_budget.py [--domains 3] [--units 1000]
"""

from __future__ import annotations

import argparse

from repro.experiments import QUICK, run_figure3_memory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=3, help="number of sequential domains")
    parser.add_argument("--units", type=int, default=1000, help="units per domain")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    budgets = [max(20, args.units // 10), max(40, args.units // 2), args.units]
    print(
        f"Running CERL with memory budgets {budgets} over {args.domains} domains "
        f"of {args.units} units each ..."
    )
    result = run_figure3_memory(
        QUICK,
        memory_budgets=budgets,
        n_domains=args.domains,
        include_ideal=True,
        seed=args.seed,
        synthetic_config=QUICK.synthetic_config(n_units=args.units),
    )

    print()
    print(result.report())
    print()
    raw_storage = args.domains * args.units
    print(
        f"The ideal learner stores {raw_storage} raw observations with all covariates;"
        f" CERL stores at most {max(budgets)} feature representations."
    )


if __name__ == "__main__":
    main()
