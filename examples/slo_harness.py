#!/usr/bin/env python
"""SLO harness: production-shaped replay with chaos, emitting BENCH_slo.json.

The load-and-chaos counterpart of ``examples/multiproc_fleet.py``:

1. several independent streams are trained and registered in one shared
   :class:`~repro.serve.ModelRegistry`;
2. a seeded :class:`~repro.slo.TrafficTape` — heavy-tailed inter-arrivals
   and row counts, Zipf hot-key skew, bursts, a diurnal ramp — is replayed
   against a spawned :class:`~repro.serve.fleet.MultiprocGateway` through
   concurrent client threads; row content is regenerated chunk by chunk, so
   even a million-row tape never materialises a full population;
3. a :class:`~repro.slo.FaultSchedule` strikes mid-replay — worker kill,
   slow-shard straggler, registry outage during hot-swap — and recovery
   time to SLO is measured for each fault;
4. latency lands in O(1)-memory sketches (p50/p99/p999), failures in a
   typed shed/error taxonomy, and a deterministic sample of responses is
   verified **bitwise** against the canonical-batch model references;
5. the result is written to ``BENCH_slo.json``, which
   ``benchmarks/check_regression.py`` gates against the committed floor in
   ``benchmarks/baseline/BENCH_slo_baseline.json``.

On machines without a second core the suite falls back to the in-process
gateway and marks every gateable section ``"gated": true`` — honest skips,
not fabricated multi-core numbers.

Run with:  python examples/slo_harness.py [--smoke] [--rows N] [--out PATH]

``--smoke`` shrinks the tape to a few thousand rows so the script finishes
in seconds (used by CI); the default replays a million-row tape.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.experiments import run_slo_suite

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    parser.add_argument(
        "--rows", type=int, default=None, help="tape row floor (default 1M; smoke 4k)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_slo.json",
        help="where to write the SLO report (default: repo-root BENCH_slo.json)",
    )
    args = parser.parse_args()
    total_rows = args.rows if args.rows is not None else (4_000 if args.smoke else 1_000_000)

    result = run_slo_suite(
        total_rows=total_rows,
        mean_rows_per_tick=32 if args.smoke else 256,
        n_clients=2 if args.smoke else 4,
        epochs=3 if args.smoke else 20,
        seed=1,
        out_path=args.out,
    )

    load = result.load
    print(
        f"replayed {load.queries} queries over {load.ticks} ticks "
        f"({result.mode} gateway, streams {result.streams}); "
        f"tape fingerprint {result.tape_fingerprint[:12]}"
    )
    print(f"  summary: {json.dumps(load.summary(), default=str)}")
    for fault in load.fault_reports:
        recovery = (
            f"{fault.recovery_s:.3f}s" if fault.recovered else "NOT RECOVERED"
        )
        print(
            f"  fault {fault.kind} on '{fault.stream}' "
            f"(ticks {fault.injected_tick}-{fault.cleared_tick}): "
            f"recovery to SLO in {recovery} after {fault.probes} probes"
        )
    print(
        f"  bitwise sample: {result.verified_samples} verified, "
        f"{result.mismatched_samples} mismatched"
    )
    if result.gated:
        print(f"  gated: {result.gate_reason}")
    print(f"wrote {result.report_path}")

    if not result.sample_parity:
        raise SystemExit("sampled responses diverged from their references")
    if load.fault_reports and not result.all_faults_recovered:
        raise SystemExit("a chaos fault never recovered to SLO within budget")


if __name__ == "__main__":
    main()
