#!/usr/bin/env python
"""The closed serving loop: drift arrives, the system notices and retrains itself.

Walks the auto-adaptation lifecycle end to end:

1. a CERL learner is trained on the base domain, saved as version 0 of a
   :class:`~repro.serve.ModelRegistry` stream, and served through a
   :class:`~repro.serve.PredictionService`;
2. a :class:`~repro.monitor.TrafficMonitor` taps every query row via the
   service's observer hook; a :class:`~repro.monitor.DriftDetector`
   (RBF-MMD with a permutation-calibrated threshold) scores the rolling
   window against the frozen training reference once per traffic tick;
3. the traffic tape drifts (covariate shift injected by
   :class:`~repro.data.DriftScenario`); after the configured number of
   consecutive breaches the :class:`~repro.monitor.AdaptationController`
   assembles the buffered traffic into a new domain, runs one CERL continual
   stage, versions the adapted model and hot-swaps the live service;
4. the same run is replayed to show the whole loop is deterministic:
   identical detection ticks, identical registry versions, bit-identical
   final predictions.

Run with:  python examples/auto_adaptation.py [--smoke]

``--smoke`` shrinks everything so the script finishes in seconds (used by CI).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import DriftConfig
from repro.experiments import QUICK, SMOKE, format_table, run_auto_adaptation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny configuration for CI smoke runs"
    )
    args = parser.parse_args()
    profile = SMOKE if args.smoke else QUICK
    settings = dict(
        drift=DriftConfig(kind="covariate", mode="abrupt", magnitude=1.0),
        profile=profile,
        n_ticks=10,
        rows_per_tick=24 if args.smoke else 64,
        drift_at=4,
        epochs=3 if args.smoke else 20,
        n_permutations=30 if args.smoke else 100,
        seed=7,
    )

    result = run_auto_adaptation(**settings)
    print(
        format_table(
            result.summary_rows(),
            title=f"Auto-adaptation over stream '{result.stream_name}' "
            f"({result.statistic}, abrupt covariate shift at tick {settings['drift_at']})",
        )
    )
    stats = result.service_stats
    print(
        f"served {stats.queries} queries in {stats.batches} micro-batches; "
        f"registry versions {result.registry_versions} (head v{result.head_version})"
    )
    if not result.detection_ticks:
        raise SystemExit("the injected covariate shift was never detected")
    for event in result.events:
        print(
            f"adaptation at check {event.check_index}: statistic "
            f"{event.trigger_statistic:.5f} > threshold {event.threshold:.5f}, "
            f"validation RMSE {event.baseline_metric:.4f} -> {event.adapted_metric:.4f}, "
            f"{'accepted as v' + str(event.new_version) if event.accepted else 'ROLLED BACK'}"
        )

    # --- determinism: replaying the tape reproduces the loop exactly ----------
    replay = run_auto_adaptation(**settings)
    assert replay.detection_ticks == result.detection_ticks
    assert replay.registry_versions == result.registry_versions
    assert np.array_equal(replay.final_predictions, result.final_predictions)
    print(
        f"\nreplay: detections at ticks {replay.detection_ticks}, versions "
        f"{replay.registry_versions}, final predictions bit-identical — deterministic"
    )


if __name__ == "__main__":
    main()
