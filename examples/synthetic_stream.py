#!/usr/bin/env python
"""Five-domain synthetic stream: continual estimation without raw-data access.

Regenerates the protocol of the paper's Figure 4 / Figure 3(a-b): five
observational datasets become available one after another; after each domain
CERL is evaluated on the test sets of *all* seen domains.  The ideal learner
(retraining on all raw data, CFR-C) is included for reference.

Run with:  python examples/synthetic_stream.py [--domains 5] [--units 1000]
"""

from __future__ import annotations

import argparse

from repro.data import SyntheticDomainGenerator
from repro.experiments import QUICK, format_series, run_stream_suite
from repro.metrics import forgetting


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=5, help="number of sequential domains")
    parser.add_argument("--units", type=int, default=1000, help="units per domain")
    parser.add_argument("--memory", type=int, default=500, help="CERL memory budget")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    generator = SyntheticDomainGenerator(QUICK.synthetic_config(n_units=args.units), seed=args.seed)
    datasets = generator.generate_stream(args.domains)
    print(f"Generated {args.domains} domains x {args.units} units, {datasets[0].n_features} covariates")

    # One shared stream iterator drives both learners domain by domain, so
    # they observe identical splits (and the run is seed-reproducible).
    labels = {"CERL": f"CERL (M={args.memory})", "CFR-C": "Ideal (all raw data)"}
    print(f"Running {', '.join(labels.values())} over the shared stream ...")
    results = run_stream_suite(
        datasets,
        strategies=list(labels),
        model_config=QUICK.model_config(seed=args.seed),
        continual_config=QUICK.continual_config(memory_budget=args.memory),
        seed=args.seed,
    )

    curves = {}
    per_domain_history = {}
    for result in results:
        label = labels[result.strategy]
        curves[label] = [stage["sqrt_pehe"] for stage in result.per_stage]
        per_domain_history[label] = [
            [entry["sqrt_pehe"] for entry in stage] for stage in result.per_domain
        ]

    print()
    print(
        format_series(
            curves,
            x_label="domains_seen",
            x_values=list(range(1, args.domains + 1)),
            title="sqrt(PEHE) averaged over all seen test sets (lower is better)",
        )
    )
    print()
    for label, history in per_domain_history.items():
        print(f"{label}: forgetting of sqrt(PEHE) = {forgetting(history):.3f}")
    print()
    print(
        "CERL approaches the ideal curve while storing only a fixed number of feature"
        " representations instead of every raw observation seen so far."
    )


if __name__ == "__main__":
    main()
