#!/usr/bin/env python
"""Checkpointing between domain arrivals, plus classical reference estimators.

Shows the deployment loop the paper motivates: a domain arrives, CERL is
updated and then checkpointed (model + representation memory only — no raw
data); when the next domain arrives the checkpoint is restored and training
continues.  Classical estimators (naive difference-in-means, IPW, ridge
T-learner) are reported alongside as sanity reference points for the ATE.

Run with:  python examples/checkpoint_and_baselines.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CERL, ContinualConfig, ModelConfig
from repro.core import RidgeTLearner, ipw_ate, load_cerl, naive_ate, save_cerl
from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator
from repro.experiments import format_table


def main() -> None:
    synthetic = SyntheticConfig(
        n_confounders=15,
        n_instruments=5,
        n_irrelevant=10,
        n_adjustment=15,
        n_units=1200,
        domain_mean_shift=1.5,
    )
    generator = SyntheticDomainGenerator(synthetic, seed=1)
    stream = DomainStream(generator.generate_stream(2), seed=1)

    model_config = ModelConfig(epochs=50, seed=1)
    continual_config = ContinualConfig(memory_budget=400)

    checkpoint_dir = Path(tempfile.mkdtemp(prefix="cerl_checkpoints_"))

    # --- domain 1 arrives -----------------------------------------------------
    learner = CERL(stream.n_features, model_config, continual_config)
    learner.observe(stream.train_data(0), val_dataset=stream.val_data(0))
    first_checkpoint = save_cerl(learner, checkpoint_dir / "after_domain1")
    print(f"domain 1 processed; checkpoint written to {first_checkpoint}")
    print(f"  stored representations: {learner.memory_size} (raw data discarded)")

    # --- domain 2 arrives later: restore and continue --------------------------
    restored = load_cerl(first_checkpoint)
    restored.observe(stream.train_data(1), val_dataset=stream.val_data(1))
    save_cerl(restored, checkpoint_dir / "after_domain2")
    print("domain 2 processed from the restored checkpoint")

    # --- compare against classical reference estimators ------------------------
    previous_test, new_test = stream.previous_and_new_test(1)
    tlearner = RidgeTLearner(l2=1.0).fit(stream.train_data(1))
    rows = []
    for name, dataset in (("previous domain", previous_test), ("new domain", new_test)):
        cerl_metrics = restored.evaluate(dataset)
        rows.append(
            {
                "test set": name,
                "true ATE": dataset.true_ate,
                "CERL ATE": cerl_metrics["ate_hat"],
                "naive ATE": naive_ate(dataset),
                "IPW ATE": ipw_ate(dataset),
                "ridge T-learner ATE": tlearner.estimate_ate(dataset.covariates),
                "CERL sqrt_pehe": cerl_metrics["sqrt_pehe"],
            }
        )
    print()
    print(format_table(rows, title="ATE estimates (CERL vs classical baselines)"))


if __name__ == "__main__":
    main()
