#!/usr/bin/env python
"""News benchmark: compare all adaptation strategies under domain shift.

Regenerates a scaled-down slice of the paper's Table I: the News benchmark
with two sequential domains built from disjoint topic ranges (substantial
shift), comparing CFR-A (frozen), CFR-B (fine-tune), CFR-C (retrain on all raw
data) and CERL.

Run with:  python examples/news_domain_shift.py [--scale 0.1] [--shift substantial]
"""

from __future__ import annotations

import argparse

from repro.data import NewsBenchmark
from repro.experiments import QUICK, run_two_domain_comparison, summarize_two_domain_results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.16,
        help=(
            "fraction of the paper-scale corpus (1.0 = 5000 units). Values below ~0.15 "
            "leave too few units per domain for the comparison to be stable."
        ),
    )
    parser.add_argument(
        "--shift",
        choices=("substantial", "moderate", "none"),
        default="substantial",
        help="domain-shift scenario between the two sequential datasets",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building the News benchmark (scale={args.scale}, shift={args.shift}) ...")
    benchmark = NewsBenchmark(scale=args.scale, seed=args.seed)
    first_domain, second_domain = benchmark.generate_domain_pair(args.shift)
    print(f"  domain 1: {len(first_domain)} news items, {first_domain.n_features} word features")
    print(f"  domain 2: {len(second_domain)} news items")
    print(f"  population summary: {benchmark.population_summary()}")

    print("Training CFR-A / CFR-B / CFR-C / CERL sequentially ...")
    results = run_two_domain_comparison(
        first_domain,
        second_domain,
        strategies=("CFR-A", "CFR-B", "CFR-C", "CERL"),
        model_config=QUICK.model_config(seed=args.seed),
        continual_config=QUICK.continual_config(memory_budget=QUICK.memory_budget_table1),
        seed=args.seed,
    )

    print()
    print(
        summarize_two_domain_results(
            results, title=f"News, {args.shift} shift (Table I protocol, quick profile)"
        )
    )
    print()
    print("Expected shape: CFR-A degrades on new data, CFR-B on previous data,")
    print("CFR-C is near-ideal on both, and CERL tracks CFR-C without storing raw data.")


if __name__ == "__main__":
    main()
