#!/usr/bin/env python
"""Quickstart: continual causal effect estimation on two synthetic domains.

This example mirrors the paper's core scenario at a laptop-friendly scale:

1. generate two observational domains with shifted covariate distributions
   (the second domain arrives after the first, and the raw first-domain data
   are then considered inaccessible);
2. train CERL sequentially on the two domains;
3. train the naive fine-tuning strategy (CFR-B) for comparison;
4. report sqrt(PEHE) and the ATE error on the held-out test sets of the
   previous and the new domain.

Run with:  python examples/quickstart.py

Every random choice — domain generation, the train/val/test splits, weight
initialisation and the engine's minibatch shuffling — is driven by the single
``SEED`` below, so repeated runs print bit-identical numbers.
"""

from __future__ import annotations

from repro import CERL, ContinualConfig, ModelConfig
from repro.core import CFRStrategyB
from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator
from repro.experiments import format_table

SEED = 0


def main() -> None:
    # --- 1. two sequential observational domains --------------------------------
    synthetic = SyntheticConfig(
        n_confounders=15,
        n_instruments=5,
        n_irrelevant=10,
        n_adjustment=15,
        n_units=1500,
        domain_mean_shift=1.5,
    )
    generator = SyntheticDomainGenerator(synthetic, seed=SEED)
    stream = DomainStream(generator.generate_stream(2), seed=SEED)
    print(f"Domain 1: {len(stream.train_data(0))} training units")
    print(f"Domain 2: {len(stream.train_data(1))} training units")

    # --- 2. configure the learners ----------------------------------------------
    model_config = ModelConfig(
        representation_dim=32,
        encoder_hidden=(64,),
        outcome_hidden=(32,),
        epochs=60,
        batch_size=128,
        alpha=1.0,          # weight of the Wasserstein balancing term (Eq. 5/9)
        lambda_reg=1e-4,    # weight of the elastic-net feature selection (Eq. 1)
        seed=SEED,
    )
    continual_config = ContinualConfig(
        beta=1.0,           # feature-representation distillation weight (Eq. 6)
        delta=1.0,          # feature-transformation weight (Eq. 7)
        memory_budget=500,  # stored feature representations (M)
    )

    cerl = CERL(stream.n_features, model_config, continual_config)
    finetune = CFRStrategyB(stream.n_features, model_config)

    # --- 3. observe the domains one at a time ------------------------------------
    for name, learner in (("CERL", cerl), ("CFR-B (fine-tune)", finetune)):
        for domain_index in range(2):
            learner.observe(
                stream.train_data(domain_index),
                val_dataset=stream.val_data(domain_index),
            )
        print(f"trained {name}")

    # --- 4. evaluate on previous and new test data -------------------------------
    previous_test, new_test = stream.previous_and_new_test(1)
    rows = []
    for name, learner in (("CERL", cerl), ("CFR-B (fine-tune)", finetune)):
        previous = learner.evaluate(previous_test)
        new = learner.evaluate(new_test)
        rows.append(
            {
                "learner": name,
                "prev_sqrt_pehe": previous["sqrt_pehe"],
                "prev_ate_error": previous["ate_error"],
                "new_sqrt_pehe": new["sqrt_pehe"],
                "new_ate_error": new["ate_error"],
            }
        )
    print()
    print(format_table(rows, title="Two sequential domains (lower is better)"))
    print()
    print(
        "CERL keeps only "
        f"{cerl.memory_size} feature representations in memory instead of the "
        f"{len(stream.train_data(0))} raw units of the first domain."
    )


if __name__ == "__main__":
    main()
