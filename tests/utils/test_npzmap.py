"""Tests for zero-copy ``.npz`` member mapping (``repro.utils.npzmap``).

``np.load(mmap_mode=...)`` silently ignores the flag for zip archives, so the
shard workers' "load the checkpoint without copying it" path depends entirely
on :func:`load_npz_mapped` doing the member-offset arithmetic right.  These
tests pin the contract: mapped values are bit-identical to the eager read,
stored members really are ``np.memmap`` views, and a held mapping survives
the archive being atomically replaced underneath it.
"""

from __future__ import annotations

import os
import zipfile

import numpy as np
import pytest

from repro.utils import load_npz_mapped


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    return {
        "weights": rng.normal(size=(17, 5)),
        "bias": rng.normal(size=5),
        "counts": rng.integers(0, 100, size=(3, 4)).astype(np.int64),
        "scalar": np.array(3.5),
    }


class TestMappedValues:
    def test_bit_identical_to_eager_load(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)  # uncompressed: every member is mappable
        mapped = load_npz_mapped(path)
        with np.load(path) as eager:
            assert set(mapped) == set(eager.files)
            for name in eager.files:
                np.testing.assert_array_equal(np.asarray(mapped[name]), eager[name])
                assert mapped[name].dtype == eager[name].dtype

    def test_stored_members_are_memmaps(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)
        mapped = load_npz_mapped(path)
        for name, value in mapped.items():
            assert isinstance(value, np.memmap), name

    def test_compressed_members_fall_back_to_eager(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez_compressed(path, **arrays)
        mapped = load_npz_mapped(path)
        for name, value in mapped.items():
            assert not isinstance(value, np.memmap), name
            np.testing.assert_array_equal(value, arrays[name])

    def test_fortran_order_member_round_trips(self, tmp_path):
        path = tmp_path / "fortran.npz"
        fortran = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        np.savez(path, fortran=fortran)
        mapped = load_npz_mapped(path)["fortran"]
        assert mapped.flags["F_CONTIGUOUS"]
        np.testing.assert_array_equal(np.asarray(mapped), fortran)

    def test_empty_member_is_returned_without_mapping(self, tmp_path):
        # mmap cannot map zero bytes; the loader must synthesise the empty
        # array instead of crashing on it.
        path = tmp_path / "empty.npz"
        np.savez(path, empty=np.empty((0, 7)), full=np.ones(3))
        mapped = load_npz_mapped(path)
        assert mapped["empty"].shape == (0, 7)
        np.testing.assert_array_equal(mapped["full"], np.ones(3))


class TestModesAndErrors:
    def test_writable_modes_rejected(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)
        for mode in ("r+", "w+", "readwrite"):
            with pytest.raises(ValueError, match="mode must be"):
                load_npz_mapped(path, mode=mode)

    def test_copy_on_write_mode_isolates_writes(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)
        mapped = load_npz_mapped(path, mode="c")["weights"]
        mapped[0, 0] = -999.0  # copy-on-write: never reaches the file
        fresh = load_npz_mapped(path)["weights"]
        assert fresh[0, 0] == arrays["weights"][0, 0]

    def test_read_only_mapping_rejects_writes(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)
        mapped = load_npz_mapped(path)["weights"]
        with pytest.raises((ValueError, OSError)):
            mapped[0, 0] = 1.0

    def test_object_member_rejected(self, tmp_path):
        path = tmp_path / "objects.npz"
        np.savez(path, objects=np.array([{"a": 1}], dtype=object), allow_pickle=True)
        with pytest.raises(ValueError, match="cannot be mapped"):
            load_npz_mapped(path)

    def test_corrupt_local_header_raises(self, arrays, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, **arrays)
        with zipfile.ZipFile(path) as archive:
            offset = archive.infolist()[0].header_offset
        data = bytearray(path.read_bytes())
        data[offset : offset + 4] = b"XXXX"
        # A clobbered magic makes the *zip* layer itself reject the file —
        # either way the loader must not hand back garbage silently.
        path.write_bytes(bytes(data))
        with pytest.raises((zipfile.BadZipFile, ValueError)):
            load_npz_mapped(path)


class TestAtomicReplaceSemantics:
    def test_held_mapping_survives_os_replace(self, tmp_path):
        """POSIX contract the registry hot-swap relies on: a reader holding
        the old mapping keeps seeing the old bytes after ``os.replace``."""
        path = tmp_path / "model.npz"
        old = np.full((64, 8), 1.0)
        np.savez(path, weights=old)
        held = load_npz_mapped(path)["weights"]

        replacement = tmp_path / "model.new.npz"
        np.savez(replacement, weights=np.full((64, 8), 2.0))
        os.replace(replacement, path)

        np.testing.assert_array_equal(np.asarray(held), old)  # old bytes
        fresh = load_npz_mapped(path)["weights"]
        np.testing.assert_array_equal(np.asarray(fresh), np.full((64, 8), 2.0))
