"""Protocol-conformance suite for every registered estimator.

Every name in :func:`repro.core.api.estimator_names` must honour the
``ContinualEstimator`` contract: deterministic observe -> predict_ite,
``evaluate_many`` bit-identical to per-dataset ``evaluate``, and a bitwise
checkpoint round trip through the serving :class:`~repro.serve.ModelRegistry`.
Registering a new estimator automatically enrolls it here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ContinualConfig, ModelConfig
from repro.core.api import (
    ESTIMATORS,
    ContinualEstimator,
    EstimatorRegistry,
    estimator_names,
    estimator_specs,
    make_estimator,
)
from repro.data import DomainStream, SyntheticConfig, SyntheticDomainGenerator
from repro.serve import ModelRegistry


def _configs():
    model_config = ModelConfig(
        representation_dim=8,
        encoder_hidden=(16,),
        outcome_hidden=(8,),
        epochs=3,
        batch_size=64,
        sinkhorn_iterations=10,
        seed=11,
    )
    continual_config = ContinualConfig(memory_budget=40, rehearsal_batch_size=32)
    return model_config, continual_config


@pytest.fixture(scope="module")
def api_stream() -> DomainStream:
    generator = SyntheticDomainGenerator(
        SyntheticConfig(
            n_confounders=6,
            n_instruments=3,
            n_irrelevant=4,
            n_adjustment=6,
            n_units=160,
            domain_mean_shift=1.5,
        ),
        seed=9,
    )
    return DomainStream(
        [generator.generate_domain(0), generator.generate_domain(1)], seed=9
    )


def _train(name: str, stream: DomainStream):
    model_config, continual_config = _configs()
    learner = make_estimator(name, stream.n_features, model_config, continual_config)
    learner.observe(stream.train_data(0), epochs=3, val_dataset=stream.val_data(0))
    learner.observe(stream.train_data(1), epochs=3, val_dataset=stream.val_data(1))
    return learner


@pytest.fixture(scope="module", params=estimator_names())
def fitted(request, api_stream):
    """One trained learner per registered estimator (trained once per module)."""
    return request.param, _train(request.param, api_stream)


class TestRegistry:
    def test_names_cover_paper_and_meta(self):
        names = estimator_names()
        assert names[:4] == ("CFR-A", "CFR-B", "CFR-C", "CERL")
        assert set(estimator_names(tag="meta")) == {
            "S-learner",
            "T-learner",
            "X-learner",
            "R-learner",
        }
        assert estimator_names(tag="paper") == ("CFR-A", "CFR-B", "CFR-C", "CERL")
        assert estimator_names(tag="orthogonal") == ("R-learner",)

    def test_specs_carry_summaries(self):
        for spec in estimator_specs():
            assert spec.summary
            assert spec.name in ESTIMATORS

    def test_lookup_is_case_insensitive(self):
        assert "r-learner" in ESTIMATORS
        assert " R-LEARNER " in ESTIMATORS
        assert ESTIMATORS.spec("x-learner").name == "X-learner"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="CFR-A"):
            make_estimator("Q-learner", 5)

    def test_duplicate_registration_raises(self):
        registry = EstimatorRegistry()
        registry.register("demo", lambda n, mc, cc: None)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("Demo", lambda n, mc, cc: None)
        registry.register("demo", lambda n, mc, cc: None, overwrite=True)
        assert len(registry) == 1

    def test_registration_order_is_column_order(self):
        registry = EstimatorRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, lambda n, mc, cc: None)
        assert registry.names() == ("zeta", "alpha", "mid")

    def test_strategy_listings_derive_from_registry(self):
        """Every table's column set is the registry's view, never a literal."""
        from repro.core.strategies import STRATEGY_NAMES
        from repro.experiments import (
            CONFOUNDING_ESTIMATORS,
            TABLE1_ESTIMATORS,
            TABLE1_STRATEGIES,
            TABLE2_ESTIMATORS,
            TABLE2_STRATEGIES,
        )

        paper = estimator_names(tag="paper")
        everything = estimator_names()
        assert STRATEGY_NAMES == paper
        assert TABLE1_STRATEGIES == paper
        assert TABLE2_STRATEGIES == paper
        assert TABLE1_ESTIMATORS == everything
        assert TABLE2_ESTIMATORS == everything
        assert CONFOUNDING_ESTIMATORS == everything


class TestConformance:
    def test_protocol_and_attributes(self, fitted, api_stream):
        name, learner = fitted
        assert isinstance(learner, ContinualEstimator)
        assert learner.name == name
        assert learner.n_features == api_stream.n_features
        assert learner.domains_seen == 2

    def test_training_is_deterministic(self, fitted, api_stream):
        """A fresh learner trained identically predicts bitwise identically."""
        name, learner = fitted
        retrained = _train(name, api_stream)
        probe = api_stream[1].test.covariates
        np.testing.assert_array_equal(
            learner.predict_ite(probe), retrained.predict_ite(probe)
        )

    def test_predict_is_repeatable_and_consistent(self, fitted, api_stream):
        name, learner = fitted
        probe = api_stream[1].test.covariates
        estimate = learner.predict(probe)
        np.testing.assert_array_equal(
            estimate.ite_hat, learner.predict(probe).ite_hat
        )
        np.testing.assert_array_equal(learner.predict_ite(probe), estimate.ite_hat)
        np.testing.assert_array_equal(
            estimate.ite_hat, estimate.y1_hat - estimate.y0_hat
        )

    def test_evaluate_many_matches_per_dataset(self, fitted, api_stream):
        name, learner = fitted
        previous, new = api_stream.previous_and_new_test(1)
        batched = learner.evaluate_many([previous, new])
        assert batched == [learner.evaluate(previous), learner.evaluate(new)]

    def test_registry_round_trip_is_bitwise(self, fitted, api_stream, tmp_path):
        """save -> ModelRegistry -> load (eager and mmap) reproduces predictions."""
        name, learner = fitted
        registry = ModelRegistry(tmp_path / "registry")
        entry = registry.save(name, 1, learner, metadata={"trigger": "conformance"})
        assert entry.domains_seen == 2
        probe = api_stream[1].test.covariates
        reference = learner.predict(probe)
        for mmap_mode in (None, "r"):
            restored = registry.load(name, mmap_mode=mmap_mode)
            assert restored.name == name
            assert restored.domains_seen == learner.domains_seen
            estimate = restored.predict(probe)
            np.testing.assert_array_equal(estimate.y0_hat, reference.y0_hat)
            np.testing.assert_array_equal(estimate.y1_hat, reference.y1_hat)
            np.testing.assert_array_equal(estimate.ite_hat, reference.ite_hat)
