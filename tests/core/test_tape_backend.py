"""End-to-end bit-identity of the tape training backend.

``ModelConfig(backend="tape")`` must be a pure performance switch: training a
learner with the tape backend has to reproduce the eager backend's parameter
trajectories, training histories and predictions to the last bit — including
the rehearsal RNG draws of a continual stage, ``clip_grad_norm``, early
stopping restores, and a registry checkpoint round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CERL, BaselineCausalModel
from repro.data import DomainStream
from repro.serve import ModelRegistry


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


def _params(learner):
    """Flat copies of all trainable parameters (encoder + both heads)."""
    modules = [learner.encoder, learner.heads]
    return [p.data.copy() for m in modules if m is not None for p in m.parameters()]


def _histories(model):
    history = model.history
    return (
        history.total,
        history.factual,
        history.ipm,
        history.regularization,
        history.validation,
        history.extras,
        history.stopped_early,
    )


def _train_baseline(backend, stream, fast_model_config, val=None):
    config = fast_model_config.with_updates(backend=backend)
    model = BaselineCausalModel(stream.n_features, config)
    model.fit(stream.train_data(0), val_dataset=val)
    return model


def _train_cerl(backend, stream, fast_model_config, fast_continual_config):
    config = fast_model_config.with_updates(backend=backend)
    learner = CERL(stream.n_features, config, fast_continual_config)
    learner.observe(stream.train_data(0))
    learner.observe(stream.train_data(1))
    return learner


class TestBaselineBitIdentity:
    def test_fit_matches_eager(self, stream, fast_model_config):
        eager = _train_baseline("eager", stream, fast_model_config)
        tape = _train_baseline("tape", stream, fast_model_config)
        assert _histories(eager) == _histories(tape)
        for a, b in zip(_params(eager), _params(tape)):
            assert np.array_equal(a, b)

    def test_fit_with_early_stopping_matches_eager(self, stream, fast_model_config):
        val = stream.train_data(1)
        eager = _train_baseline("eager", stream, fast_model_config, val=val)
        tape = _train_baseline("tape", stream, fast_model_config, val=val)
        assert _histories(eager) == _histories(tape)
        for a, b in zip(_params(eager), _params(tape)):
            assert np.array_equal(a, b)
        eager_estimate = eager.predict(val.covariates)
        tape_estimate = tape.predict(val.covariates)
        assert np.array_equal(eager_estimate.y0_hat, tape_estimate.y0_hat)
        assert np.array_equal(eager_estimate.y1_hat, tape_estimate.y1_hat)


class TestCerlBitIdentity:
    def test_continual_stage_matches_eager(
        self, stream, fast_model_config, fast_continual_config
    ):
        eager = _train_cerl("eager", stream, fast_model_config, fast_continual_config)
        tape = _train_cerl("tape", stream, fast_model_config, fast_continual_config)
        assert eager.domains_seen == tape.domains_seen == 2
        for a, b in zip(_params(eager), _params(tape)):
            assert np.array_equal(a, b)
        assert np.array_equal(
            eager.memory.representations, tape.memory.representations
        )
        covariates = stream.train_data(1).covariates
        eager_estimate = eager.predict(covariates)
        tape_estimate = tape.predict(covariates)
        assert np.array_equal(eager_estimate.y0_hat, tape_estimate.y0_hat)
        assert np.array_equal(eager_estimate.y1_hat, tape_estimate.y1_hat)

    def test_registry_round_trip_matches_eager(
        self, tmp_path, stream, fast_model_config, fast_continual_config
    ):
        eager = _train_cerl("eager", stream, fast_model_config, fast_continual_config)
        tape = _train_cerl("tape", stream, fast_model_config, fast_continual_config)
        registry = ModelRegistry(tmp_path)
        registry.save("tape-stream", 1, tape)
        restored = registry.load("tape-stream")
        assert restored.domains_seen == 2
        for a, b in zip(_params(eager), _params(restored)):
            assert np.array_equal(a, b)
        covariates = stream.train_data(1).covariates
        eager_estimate = eager.predict(covariates)
        restored_estimate = restored.predict(covariates)
        assert np.array_equal(eager_estimate.y0_hat, restored_estimate.y0_hat)
        assert np.array_equal(eager_estimate.y1_hat, restored_estimate.y1_hat)
