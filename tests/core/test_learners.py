"""Tests for the S/T/X/R meta-learner zoo (:mod:`repro.core.learners`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RLearner, SLearner, TLearner, XLearner
from repro.data import DomainStream


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


def _fit(cls, stream, config, epochs=3, **kwargs):
    learner = cls(stream.n_features, config, **kwargs)
    learner.observe(stream.train_data(0), epochs=epochs)
    return learner


class TestConstructions:
    def test_s_learner_treatment_column_drives_ite(self, stream, fast_model_config):
        learner = _fit(SLearner, stream, fast_model_config)
        probe = stream[0].test.covariates
        estimate = learner.predict(probe)
        # y0/y1 come from the same regressor with the treatment column flipped.
        np.testing.assert_array_equal(
            estimate.y0_hat,
            learner._regressor.predict(learner._augment(probe, np.zeros(len(probe)))),
        )
        np.testing.assert_array_equal(
            estimate.y1_hat,
            learner._regressor.predict(learner._augment(probe, np.ones(len(probe)))),
        )

    def test_t_learner_uses_separate_arms(self, stream, fast_model_config):
        learner = _fit(TLearner, stream, fast_model_config)
        probe = stream[0].test.covariates
        estimate = learner.predict(probe)
        np.testing.assert_array_equal(estimate.y0_hat, learner._arms[0].predict(probe))
        np.testing.assert_array_equal(estimate.y1_hat, learner._arms[1].predict(probe))

    def test_x_learner_anchors_outcomes_on_control_surface(self, stream, fast_model_config):
        learner = _fit(XLearner, stream, fast_model_config)
        probe = stream[0].test.covariates
        estimate = learner.predict(probe)
        np.testing.assert_array_equal(
            estimate.y0_hat, learner._outcome[0].predict(probe)
        )
        np.testing.assert_array_equal(
            estimate.ite_hat, estimate.y1_hat - estimate.y0_hat
        )

    def test_r_learner_effect_is_mu_spread(self, stream, fast_model_config):
        learner = _fit(RLearner, stream, fast_model_config)
        probe = stream[0].test.covariates
        estimate = learner.predict(probe)
        np.testing.assert_array_equal(
            estimate.ite_hat, estimate.y1_hat - estimate.y0_hat
        )
        assert np.all(np.isfinite(estimate.ite_hat))


class TestValidation:
    def test_r_learner_rejects_single_fold(self, fast_model_config):
        with pytest.raises(ValueError, match="at least 2 folds"):
            RLearner(5, fast_model_config, n_folds=1)

    def test_r_learner_needs_enough_units(self, stream, fast_model_config):
        learner = RLearner(stream.n_features, fast_model_config)
        train = stream.train_data(0)
        # Six units with both arms present: small enough that the validation
        # gate passes but the crossfit floor must still reject it.
        treated = np.flatnonzero(train.treatments == 1)[:3]
        control = np.flatnonzero(train.treatments == 0)[:3]
        tiny = train.subset(np.concatenate([treated, control]))
        with pytest.raises(ValueError, match="at least 8"):
            learner.observe(tiny, epochs=1)

    def test_predict_before_observe_raises(self, stream, fast_model_config):
        learner = SLearner(stream.n_features, fast_model_config)
        with pytest.raises(RuntimeError):
            learner.predict(stream[0].test.covariates)


class TestContinualBehavior:
    def test_second_domain_warm_starts_heads(self, stream, fast_model_config):
        learner = _fit(TLearner, stream, fast_model_config)
        probe = stream[0].test.covariates
        before = learner.predict_ite(probe)
        learner.observe(stream.train_data(1), epochs=3)
        assert learner.domains_seen == 2
        after = learner.predict_ite(probe)
        assert not np.array_equal(before, after)

    def test_scalers_frozen_after_first_domain(self, stream, fast_model_config):
        learner = _fit(SLearner, stream, fast_model_config)
        mean_before = learner._regressor.input_scaler.mean_.copy()
        learner.observe(stream.train_data(1), epochs=2)
        np.testing.assert_array_equal(
            mean_before, learner._regressor.input_scaler.mean_
        )


class TestCrossfitParallelism:
    def test_crossfit_parallel_is_bit_identical_to_serial(self, stream, fast_model_config):
        serial = _fit(RLearner, stream, fast_model_config, epochs=3)
        parallel = _fit(
            RLearner,
            stream,
            fast_model_config,
            epochs=3,
            crossfit_workers=2,
            crossfit_force_parallel=True,
        )
        probe = stream[0].test.covariates
        reference = serial.predict(probe)
        candidate = parallel.predict(probe)
        np.testing.assert_array_equal(candidate.y0_hat, reference.y0_hat)
        np.testing.assert_array_equal(candidate.y1_hat, reference.y1_hat)
        np.testing.assert_array_equal(candidate.ite_hat, reference.ite_hat)


class TestTapeBackend:
    @pytest.mark.parametrize("cls", [SLearner, RLearner])
    def test_tape_backend_matches_eager_bitwise(self, cls, stream, fast_model_config):
        eager = _fit(cls, stream, fast_model_config)
        taped = _fit(cls, stream, fast_model_config.with_updates(backend="tape"))
        probe = stream[0].test.covariates
        np.testing.assert_array_equal(
            eager.predict_ite(probe), taped.predict_ite(probe)
        )
