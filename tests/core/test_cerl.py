"""Tests for the CERL continual learner (Algorithm 1, Eq. 6-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CERL, ContinualConfig, ModelConfig
from repro.data import DomainStream


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


def make_cerl(n_features, fast_model_config, fast_continual_config, **continual_overrides):
    continual = fast_continual_config
    if continual_overrides:
        continual = continual.with_updates(**continual_overrides)
    return CERL(n_features, fast_model_config, continual)


class TestFirstDomain:
    def test_fit_first_builds_memory_within_budget(
        self, stream, fast_model_config, fast_continual_config
    ):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.fit_first(stream.train_data(0))
        assert cerl.domains_seen == 1
        assert 0 < cerl.memory_size <= fast_continual_config.memory_budget
        assert cerl.memory.dim == fast_model_config.representation_dim

    def test_memory_contains_both_arms(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.fit_first(stream.train_data(0))
        assert cerl.memory.n_treated > 0
        assert cerl.memory.n_control > 0

    def test_observe_dispatches_to_first(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.observe(stream.train_data(0))
        assert cerl.domains_seen == 1

    def test_fit_first_twice_raises(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.fit_first(stream.train_data(0))
        with pytest.raises(RuntimeError):
            cerl.fit_first(stream.train_data(1))

    def test_fit_next_before_first_raises(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        with pytest.raises(RuntimeError):
            cerl.fit_next(stream.train_data(0))

    def test_predict_before_fit_raises(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        with pytest.raises(RuntimeError):
            cerl.predict(stream.train_data(0).covariates)


class TestContinualStage:
    def test_two_domain_flow(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.observe(stream.train_data(0))
        history = cerl.observe(stream.train_data(1))
        assert cerl.domains_seen == 2
        assert len(history) > 0
        assert np.isfinite(history.total[-1])
        assert cerl.memory_size <= fast_continual_config.memory_budget

    def test_memory_mixes_domains_after_second_stage(
        self, stream, fast_model_config, fast_continual_config
    ):
        """After the second domain the memory holds the herded union of the
        transformed old memory and the new representations."""
        budget = 30
        cerl = make_cerl(
            stream.n_features, fast_model_config, fast_continual_config, memory_budget=budget
        )
        cerl.observe(stream.train_data(0))
        first_memory = cerl.memory.representations.copy()
        cerl.observe(stream.train_data(1))
        assert cerl.memory_size <= budget
        assert cerl.memory.representations.shape[1] == first_memory.shape[1]

    def test_evaluation_on_both_domains(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.observe(stream.train_data(0))
        cerl.observe(stream.train_data(1))
        previous, new = stream.previous_and_new_test(1)
        metrics_prev = cerl.evaluate(previous)
        metrics_new = cerl.evaluate(new)
        for metrics in (metrics_prev, metrics_new):
            assert np.isfinite(metrics["sqrt_pehe"])
            assert np.isfinite(metrics["ate_error"])

    def test_evaluate_stream_helper(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        cerl.observe(stream.train_data(0))
        cerl.observe(stream.train_data(1))
        results = cerl.evaluate_stream(stream.test_sets_seen(1))
        assert len(results) == 2

    def test_early_stopping_in_continual_stage(
        self, stream, fast_model_config, fast_continual_config
    ):
        config = fast_model_config.with_updates(epochs=100, early_stopping_patience=2)
        cerl = CERL(stream.n_features, config, fast_continual_config)
        cerl.observe(stream.train_data(0), val_dataset=stream.val_data(0))
        history = cerl.observe(stream.train_data(1), val_dataset=stream.val_data(1))
        assert len(history) < 100

    def test_three_domains(self, tiny_synthetic_config, fast_model_config, fast_continual_config):
        from repro.data import SyntheticDomainGenerator

        generator = SyntheticDomainGenerator(tiny_synthetic_config, seed=1)
        datasets = generator.generate_stream(3)
        stream = DomainStream(datasets, seed=0)
        cerl = make_cerl(stream.n_features, fast_model_config, fast_continual_config)
        for index in range(3):
            cerl.observe(stream.train_data(index), epochs=3)
        assert cerl.domains_seen == 3
        results = cerl.evaluate_stream(stream.test_sets_seen(2))
        assert len(results) == 3

    def test_dimension_mismatch_rejected(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(stream.n_features + 3, fast_model_config, fast_continual_config)
        with pytest.raises(ValueError):
            cerl.observe(stream.train_data(0))


class TestAblations:
    def test_without_frt_skips_memory_rehearsal(
        self, stream, fast_model_config, fast_continual_config
    ):
        cerl = make_cerl(
            stream.n_features,
            fast_model_config,
            fast_continual_config,
            use_feature_transformation=False,
        )
        cerl.observe(stream.train_data(0))
        first_memory = cerl.memory.representations.copy()
        cerl.observe(stream.train_data(1))
        # without FRT the old memory is not transformed into the new space; the
        # new memory is rebuilt from the new domain only
        assert cerl.memory_size <= fast_continual_config.memory_budget
        assert cerl.domains_seen == 2
        assert first_memory.shape[1] == cerl.memory.representations.shape[1]

    def test_random_memory_strategy(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(
            stream.n_features, fast_model_config, fast_continual_config, memory_strategy="random"
        )
        cerl.observe(stream.train_data(0))
        cerl.observe(stream.train_data(1))
        assert cerl.memory_size <= fast_continual_config.memory_budget

    def test_without_cosine_norm(self, stream, fast_continual_config, fast_model_config):
        config = fast_model_config.with_updates(use_cosine_norm=False)
        cerl = CERL(stream.n_features, config, fast_continual_config)
        cerl.observe(stream.train_data(0))
        cerl.observe(stream.train_data(1))
        reps = cerl.memory.representations
        assert not np.allclose(np.linalg.norm(reps, axis=1), 1.0, atol=1e-3)

    def test_without_distillation(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(
            stream.n_features, fast_model_config, fast_continual_config, use_distillation=False
        )
        cerl.observe(stream.train_data(0))
        history = cerl.observe(stream.train_data(1))
        assert np.isfinite(history.total[-1])

    def test_cold_start_encoder(self, stream, fast_model_config, fast_continual_config):
        cerl = make_cerl(
            stream.n_features, fast_model_config, fast_continual_config, warm_start_encoder=False
        )
        cerl.observe(stream.train_data(0))
        cerl.observe(stream.train_data(1))
        assert cerl.domains_seen == 2


class TestContinualBehaviour:
    def test_cerl_forgets_less_than_fine_tuning(self, tiny_synthetic_config):
        """The headline qualitative claim of the paper on a small scale: after
        training on a shifted second domain, CERL's previous-domain error is
        smaller than naive fine-tuning's (CFR-B)."""
        from repro.core import CFRStrategyB
        from repro.data import SyntheticDomainGenerator

        config = ModelConfig(
            representation_dim=16,
            encoder_hidden=(32,),
            outcome_hidden=(16,),
            epochs=40,
            batch_size=64,
            sinkhorn_iterations=10,
            seed=1,
        )
        continual = ContinualConfig(memory_budget=120, rehearsal_batch_size=64)
        generator = SyntheticDomainGenerator(
            tiny_synthetic_config.__class__(
                n_confounders=6,
                n_instruments=3,
                n_irrelevant=4,
                n_adjustment=6,
                n_units=500,
                domain_mean_shift=2.0,
                outcome_scale=5.0,
            ),
            seed=3,
        )
        stream = DomainStream(generator.generate_stream(2), seed=0)
        previous_test, _ = stream.previous_and_new_test(1)

        cerl = CERL(stream.n_features, config, continual)
        finetune = CFRStrategyB(stream.n_features, config)
        for learner in (cerl, finetune):
            learner.observe(stream.train_data(0), val_dataset=stream.val_data(0))
            learner.observe(stream.train_data(1), val_dataset=stream.val_data(1))

        cerl_prev = cerl.evaluate(previous_test)["sqrt_pehe"]
        finetune_prev = finetune.evaluate(previous_test)["sqrt_pehe"]
        assert cerl_prev < finetune_prev
