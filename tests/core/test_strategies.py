"""Tests for the CFR adaptation strategies and the strategy factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CERL,
    CFRStrategyA,
    CFRStrategyB,
    CFRStrategyC,
    ContinualEstimator,
    STRATEGY_NAMES,
    make_estimator,
    make_strategy,
)
from repro.data import DomainStream


@pytest.fixture
def stream(tiny_domains):
    return DomainStream(list(tiny_domains), seed=0)


class TestFactory:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_make_estimator_builds_all_names(self, name, fast_model_config, fast_continual_config):
        learner = make_estimator(name, 19, fast_model_config, fast_continual_config)
        assert isinstance(learner, ContinualEstimator)

    def test_case_insensitive(self, fast_model_config):
        assert isinstance(make_estimator("cfr-a", 10, fast_model_config), CFRStrategyA)
        assert isinstance(make_estimator("cerl", 10, fast_model_config), CERL)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_estimator("CFR-D", 10)

    def test_make_strategy_shim_warns_and_delegates(self, fast_model_config):
        with pytest.warns(DeprecationWarning, match="make_estimator"):
            learner = make_strategy("CFR-A", 10, fast_model_config)
        assert isinstance(learner, CFRStrategyA)


class TestStrategyA:
    def test_second_domain_is_ignored(self, stream, fast_model_config):
        strategy = CFRStrategyA(stream.n_features, fast_model_config)
        strategy.observe(stream.train_data(0), epochs=3)
        state_after_first = strategy.model.encoder.state_dict()
        strategy.observe(stream.train_data(1), epochs=3)
        state_after_second = strategy.model.encoder.state_dict()
        for key in state_after_first:
            np.testing.assert_array_equal(state_after_first[key], state_after_second[key])
        assert strategy.domains_seen == 2
        assert strategy.stored_raw_units == 0


class TestStrategyB:
    def test_second_domain_updates_model(self, stream, fast_model_config):
        strategy = CFRStrategyB(stream.n_features, fast_model_config)
        strategy.observe(stream.train_data(0), epochs=3)
        state_after_first = strategy.model.encoder.state_dict()
        strategy.observe(stream.train_data(1), epochs=3)
        state_after_second = strategy.model.encoder.state_dict()
        assert any(
            not np.allclose(state_after_first[k], state_after_second[k]) for k in state_after_first
        )
        assert strategy.stored_raw_units == 0


class TestStrategyC:
    def test_accumulates_all_raw_data(self, stream, fast_model_config):
        strategy = CFRStrategyC(stream.n_features, fast_model_config)
        strategy.observe(stream.train_data(0), epochs=2)
        strategy.observe(stream.train_data(1), epochs=2)
        expected = len(stream.train_data(0)) + len(stream.train_data(1))
        assert strategy.stored_raw_units == expected

    def test_retrains_from_scratch_each_time(self, stream, fast_model_config):
        strategy = CFRStrategyC(stream.n_features, fast_model_config)
        strategy.observe(stream.train_data(0), epochs=2)
        first_model = strategy.model
        strategy.observe(stream.train_data(1), epochs=2)
        assert strategy.model is not first_model

    def test_accumulates_validation_data(self, stream, fast_model_config):
        strategy = CFRStrategyC(stream.n_features, fast_model_config)
        strategy.observe(stream.train_data(0), epochs=2, val_dataset=stream.val_data(0))
        strategy.observe(stream.train_data(1), epochs=2, val_dataset=stream.val_data(1))
        assert len(strategy._seen_val) == 2


class TestCommonProtocol:
    @pytest.mark.parametrize("name", STRATEGY_NAMES)
    def test_observe_predict_evaluate_cycle(
        self, name, stream, fast_model_config, fast_continual_config
    ):
        learner = make_estimator(name, stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0), epochs=2)
        learner.observe(stream.train_data(1), epochs=2)
        previous, new = stream.previous_and_new_test(1)
        estimate = learner.predict(new.covariates)
        assert estimate.ite_hat.shape == (len(new),)
        metrics = learner.evaluate(previous)
        assert np.isfinite(metrics["sqrt_pehe"])

    def test_base_strategy_observe_not_implemented(self, fast_model_config):
        from repro.core.strategies import _CFRStrategyBase

        base = _CFRStrategyBase(5, fast_model_config)
        with pytest.raises(NotImplementedError):
            base.observe(None)
