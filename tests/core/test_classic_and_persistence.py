"""Tests for the classical baseline estimators and CERL checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CERL,
    LogisticPropensityModel,
    RidgeTLearner,
    ipw_ate,
    load_cerl,
    naive_ate,
    save_cerl,
)
from repro.data import CausalDataset, DomainStream


def make_confounded_dataset(n: int = 600, seed: int = 0) -> CausalDataset:
    """Dataset where the naive estimator is biased but IPW is not.

    A single confounder drives both treatment probability and the outcome; the
    true effect is exactly 1.
    """
    rng = np.random.default_rng(seed)
    confounder = rng.normal(size=n)
    noise_feature = rng.normal(size=n)
    covariates = np.column_stack([confounder, noise_feature])
    propensity = 1.0 / (1.0 + np.exp(-2.0 * confounder))
    treatments = (rng.random(n) < propensity).astype(int)
    mu0 = 2.0 * confounder
    mu1 = mu0 + 1.0
    outcomes = np.where(treatments == 1, mu1, mu0) + rng.normal(0, 0.2, n)
    return CausalDataset(covariates, treatments, outcomes, mu0=mu0, mu1=mu1)


class TestNaiveAndIPW:
    def test_naive_is_biased_under_confounding(self):
        dataset = make_confounded_dataset()
        assert abs(naive_ate(dataset) - 1.0) > 0.5

    def test_ipw_corrects_the_bias(self):
        dataset = make_confounded_dataset()
        estimate = ipw_ate(dataset)
        assert abs(estimate - 1.0) < abs(naive_ate(dataset) - 1.0)
        assert estimate == pytest.approx(1.0, abs=0.45)

    def test_naive_requires_both_arms(self):
        dataset = make_confounded_dataset(100)
        treated_only = dataset.subset(np.flatnonzero(dataset.treatments == 1))
        with pytest.raises(ValueError):
            naive_ate(treated_only)

    def test_ipw_clip_validation(self):
        with pytest.raises(ValueError):
            ipw_ate(make_confounded_dataset(100), clip=0.7)

    def test_ipw_accepts_prefitted_model(self):
        dataset = make_confounded_dataset()
        model = LogisticPropensityModel().fit(dataset.covariates, dataset.treatments)
        assert np.isfinite(ipw_ate(dataset, propensity_model=model))


class TestLogisticPropensityModel:
    def test_recovers_monotone_relationship(self):
        dataset = make_confounded_dataset()
        model = LogisticPropensityModel().fit(dataset.covariates, dataset.treatments)
        scores = model.predict_proba(dataset.covariates)
        assert np.all((scores > 0) & (scores < 1))
        # higher confounder -> higher propensity
        order = np.argsort(dataset.covariates[:, 0])
        assert scores[order[-50:]].mean() > scores[order[:50]].mean()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticPropensityModel().predict_proba(np.ones((3, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticPropensityModel().fit(np.ones((5, 2)), np.ones(4))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticPropensityModel(l2=-1.0)
        with pytest.raises(ValueError):
            LogisticPropensityModel(max_iterations=0)


class TestRidgeTLearner:
    def test_recovers_constant_effect(self):
        dataset = make_confounded_dataset()
        learner = RidgeTLearner(l2=1.0).fit(dataset)
        estimate = learner.predict(dataset.covariates)
        assert estimate.ate_hat == pytest.approx(1.0, abs=0.3)
        assert learner.estimate_ate(dataset.covariates) == pytest.approx(estimate.ate_hat)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeTLearner().predict(np.ones((3, 2)))

    def test_requires_units_in_both_arms(self):
        dataset = make_confounded_dataset(200)
        treated_only = dataset.subset(np.flatnonzero(dataset.treatments == 1))
        with pytest.raises(ValueError):
            RidgeTLearner().fit(treated_only)

    def test_invalid_regularisation(self):
        with pytest.raises(ValueError):
            RidgeTLearner(l2=-0.1)


class TestPersistence:
    def test_round_trip_preserves_predictions_and_memory(
        self, tiny_domains, fast_model_config, fast_continual_config, tmp_path
    ):
        stream = DomainStream(list(tiny_domains), seed=0)
        learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0))
        learner.observe(stream.train_data(1))

        checkpoint = save_cerl(learner, tmp_path / "cerl_checkpoint")
        assert checkpoint.exists()
        restored = load_cerl(checkpoint)

        test_covariates = stream[1].test.covariates
        np.testing.assert_allclose(
            learner.predict(test_covariates).ite_hat,
            restored.predict(test_covariates).ite_hat,
        )
        assert restored.domains_seen == learner.domains_seen
        assert restored.memory_size == learner.memory_size
        np.testing.assert_allclose(
            restored.memory.representations, learner.memory.representations
        )

    def test_restored_learner_can_continue_training(
        self, tiny_domains, fast_model_config, fast_continual_config, tmp_path
    ):
        stream = DomainStream(list(tiny_domains), seed=0)
        learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0))
        restored = load_cerl(save_cerl(learner, tmp_path / "after_first"))
        restored.observe(stream.train_data(1), epochs=2)
        assert restored.domains_seen == 2
        metrics = restored.evaluate(stream[1].test)
        assert np.isfinite(metrics["sqrt_pehe"])

    def test_saving_unfitted_learner_raises(
        self, fast_model_config, fast_continual_config, tmp_path
    ):
        learner = CERL(10, fast_model_config, fast_continual_config)
        with pytest.raises(RuntimeError):
            save_cerl(learner, tmp_path / "nope")

    def test_suffix_is_normalised(self, tiny_dataset, fast_model_config, fast_continual_config, tmp_path):
        learner = CERL(tiny_dataset.n_features, fast_model_config, fast_continual_config)
        learner.observe(tiny_dataset)
        checkpoint = save_cerl(learner, tmp_path / "model.bin")
        assert checkpoint.suffix == ".npz"

    def test_dotted_names_are_not_mangled(
        self, tiny_dataset, fast_model_config, fast_continual_config, tmp_path
    ):
        """Regression: ``Path("model.v1").with_suffix(".npz")`` used to drop
        the ``.v1`` component, so two versions collided on ``model.npz``."""
        learner = CERL(tiny_dataset.n_features, fast_model_config, fast_continual_config)
        learner.observe(tiny_dataset)
        v1 = save_cerl(learner, tmp_path / "model.v1")
        v2 = save_cerl(learner, tmp_path / "model.v2")
        assert v1.name == "model.v1.npz"
        assert v2.name == "model.v2.npz"
        assert v1.exists() and v2.exists()
        # An explicit .npz suffix is kept verbatim.
        explicit = save_cerl(learner, tmp_path / "model.v3.npz")
        assert explicit.name == "model.v3.npz"
        assert load_cerl(v1).domains_seen == learner.domains_seen

    def test_mmap_load_is_bit_identical_to_eager(
        self, tiny_domains, fast_model_config, fast_continual_config, tmp_path
    ):
        """The worker fast path: an uncompressed checkpoint loaded with
        ``mmap_mode='r'`` must predict bit-for-bit like the eager load."""
        stream = DomainStream(list(tiny_domains), seed=0)
        learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0))
        checkpoint = save_cerl(learner, tmp_path / "flat", compressed=False)

        eager = load_cerl(checkpoint)
        mapped = load_cerl(checkpoint, mmap_mode="r")
        covariates = stream[0].test.covariates
        eager_prediction = eager.predict(covariates)
        mapped_prediction = mapped.predict(covariates)
        np.testing.assert_array_equal(
            mapped_prediction.ite_hat, eager_prediction.ite_hat
        )
        np.testing.assert_array_equal(mapped_prediction.y0_hat, eager_prediction.y0_hat)
        np.testing.assert_array_equal(mapped_prediction.y1_hat, eager_prediction.y1_hat)

    def test_mmap_load_shares_pages_instead_of_copying(
        self, tiny_domains, fast_model_config, fast_continual_config, tmp_path
    ):
        """Zero-copy means the big buffers really are file-backed views.

        Arrays adopted by reference (the standardiser statistics) stay
        ``np.memmap`` instances; the representation memory passes through
        ``np.asarray``, which downcasts the memmap subclass to a base-class
        *view* — still zero-copy, with the memmap as its ``.base``.
        """
        stream = DomainStream(list(tiny_domains), seed=0)
        learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0))
        checkpoint = save_cerl(learner, tmp_path / "flat", compressed=False)

        mapped = load_cerl(checkpoint, mmap_mode="r")
        assert isinstance(mapped.encoder.scaler.mean_, np.memmap)
        representations = mapped.memory.representations
        assert isinstance(representations, np.memmap) or isinstance(
            representations.base, np.memmap
        )

    def test_mmap_mode_on_compressed_checkpoint_falls_back_eager(
        self, tiny_domains, fast_model_config, fast_continual_config, tmp_path
    ):
        """Compressed members have no on-disk bytes to map; ``mmap_mode``
        must degrade to an eager read with identical values, not fail."""
        stream = DomainStream(list(tiny_domains), seed=0)
        learner = CERL(stream.n_features, fast_model_config, fast_continual_config)
        learner.observe(stream.train_data(0))
        checkpoint = save_cerl(learner, tmp_path / "packed", compressed=True)

        mapped = load_cerl(checkpoint, mmap_mode="r")
        assert not isinstance(mapped.encoder.scaler.mean_, np.memmap)
        covariates = stream[0].test.covariates
        np.testing.assert_array_equal(
            mapped.predict(covariates).ite_hat,
            load_cerl(checkpoint).predict(covariates).ite_hat,
        )

    def test_save_modules_dotted_names(self, tmp_path):
        from repro.core import load_modules, save_modules
        from repro.nn import Linear

        module = Linear(3, 2, rng=np.random.default_rng(0))
        path = save_modules({"m": module}, tmp_path / "enc.stage1")
        assert path.name == "enc.stage1.npz"
        clone = Linear(3, 2, rng=np.random.default_rng(1))
        load_modules({"m": clone}, path)
        np.testing.assert_array_equal(clone.weight.data, module.weight.data)

    def test_crash_mid_save_never_truncates_existing_checkpoint(
        self, tiny_dataset, fast_model_config, fast_continual_config, tmp_path, monkeypatch
    ):
        """Saves go through a temp file + ``os.replace``: a crash while
        writing must leave the previous archive intact and no debris."""
        learner = CERL(tiny_dataset.n_features, fast_model_config, fast_continual_config)
        learner.observe(tiny_dataset)
        target = save_cerl(learner, tmp_path / "stable")
        good_bytes = target.read_bytes()

        import repro.core.persistence as persistence

        def explode(handle, **arrays):
            handle.write(b"partial garbage")
            raise RuntimeError("disk full")

        monkeypatch.setattr(persistence.np, "savez_compressed", explode)
        with pytest.raises(RuntimeError, match="disk full"):
            save_cerl(learner, target)
        assert target.read_bytes() == good_bytes  # old checkpoint untouched
        assert list(tmp_path.iterdir()) == [target]  # no temp debris
        assert load_cerl(target).domains_seen == learner.domains_seen
