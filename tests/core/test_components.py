"""Tests for the representation network, outcome heads and feature transform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeatureTransform, OutcomeHeads, RepresentationNetwork
from repro.core.config import ContinualConfig, ModelConfig
from repro.nn import Tensor


class TestRepresentationNetwork:
    def make(self, use_cosine=True, standardize=True, in_features=10, dim=6):
        return RepresentationNetwork(
            in_features=in_features,
            representation_dim=dim,
            hidden_sizes=(12,),
            use_cosine_norm=use_cosine,
            standardize=standardize,
            rng=np.random.default_rng(0),
        )

    def test_encode_shape(self, rng):
        network = self.make()
        network.fit_scaler(rng.normal(size=(30, 10)))
        reps = network.representations(rng.normal(size=(8, 10)))
        assert reps.shape == (8, 6)

    def test_cosine_norm_gives_unit_rows(self, rng):
        network = self.make(use_cosine=True)
        network.fit_scaler(rng.normal(size=(30, 10)))
        reps = network.representations(rng.normal(size=(20, 10)))
        np.testing.assert_allclose(np.linalg.norm(reps, axis=1), np.ones(20), atol=1e-8)

    def test_without_cosine_norm_rows_not_normalised(self, rng):
        network = self.make(use_cosine=False)
        network.fit_scaler(rng.normal(size=(30, 10)))
        reps = network.representations(rng.normal(size=(20, 10)))
        assert not np.allclose(np.linalg.norm(reps, axis=1), np.ones(20), atol=1e-3)

    def test_scaler_required_before_encoding(self, rng):
        network = self.make()
        with pytest.raises(RuntimeError):
            network.representations(rng.normal(size=(5, 10)))

    def test_no_standardization_mode(self, rng):
        network = self.make(standardize=False)
        reps = network.representations(rng.normal(size=(5, 10)))
        assert reps.shape == (5, 6)

    def test_wrong_feature_count_raises(self, rng):
        network = self.make()
        network.fit_scaler(rng.normal(size=(20, 10)))
        with pytest.raises(ValueError):
            network.representations(rng.normal(size=(5, 7)))

    def test_elastic_net_positive_and_differentiable(self, rng):
        network = self.make()
        penalty = network.elastic_net()
        assert penalty.item() > 0
        penalty.backward()
        grads = [p.grad for _, p in network.named_parameters() if p.grad is not None]
        assert grads

    def test_encode_with_gradients(self, rng):
        network = self.make()
        network.fit_scaler(rng.normal(size=(20, 10)))
        reps = network.encode(rng.normal(size=(4, 10)), track_gradients=True)
        reps.sum().backward()
        assert any(p.grad is not None for p in network.parameters())

    def test_encode_without_gradients_records_nothing(self, rng):
        network = self.make()
        network.fit_scaler(rng.normal(size=(20, 10)))
        reps = network.encode(rng.normal(size=(4, 10)), track_gradients=False)
        assert not reps.requires_grad


class TestOutcomeHeads:
    def make(self, dim=6):
        return OutcomeHeads(representation_dim=dim, hidden_sizes=(8,), rng=np.random.default_rng(1))

    def test_factual_selects_correct_head(self, rng):
        heads = self.make()
        reps = Tensor(rng.normal(size=(10, 6)))
        treatments = np.array([0, 1] * 5)
        factual = heads.factual(reps, treatments).numpy()
        y0, y1 = heads.potential_outcomes(reps)
        np.testing.assert_allclose(factual, np.where(treatments == 1, y1, y0))

    def test_forward_single_arm(self, rng):
        heads = self.make()
        reps = Tensor(rng.normal(size=(5, 6)))
        treated = heads.forward(reps, treatment=1).numpy()
        _, y1 = heads.potential_outcomes(reps)
        np.testing.assert_allclose(treated, y1)

    def test_factual_gradients_only_touch_observed_head(self, rng):
        heads = self.make()
        reps = Tensor(rng.normal(size=(6, 6)))
        treatments = np.ones(6, dtype=int)  # all treated
        loss = (heads.factual(reps, treatments) ** 2).sum()
        loss.backward()
        treated_grads = [p.grad for p in heads.treated_head.parameters() if p.grad is not None]
        control_grads = [
            np.abs(p.grad).max() if p.grad is not None else 0.0
            for p in heads.control_head.parameters()
        ]
        assert treated_grads
        assert all(g == 0.0 for g in control_grads)

    def test_potential_outcomes_shapes(self, rng):
        heads = self.make()
        y0, y1 = heads.potential_outcomes(Tensor(rng.normal(size=(7, 6))))
        assert y0.shape == (7,)
        assert y1.shape == (7,)


class TestFeatureTransform:
    def test_residual_starts_near_identity(self, rng):
        transform = FeatureTransform(8, residual=True, rng=np.random.default_rng(2))
        reps = rng.normal(size=(10, 8))
        out = transform.transform_array(reps)
        relative_change = np.linalg.norm(out - reps) / np.linalg.norm(reps)
        assert relative_change < 0.2

    def test_non_residual_differs_from_identity(self, rng):
        transform = FeatureTransform(8, residual=False, rng=np.random.default_rng(2))
        reps = rng.normal(size=(10, 8))
        out = transform.transform_array(reps)
        assert not np.allclose(out, reps, atol=0.1)

    def test_normalized_output_has_unit_rows(self, rng):
        transform = FeatureTransform(6, normalize_output=True, rng=np.random.default_rng(3))
        out = transform.transform_array(rng.normal(size=(12, 6)))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(12), atol=1e-8)

    def test_transform_array_validates_shape(self, rng):
        transform = FeatureTransform(6, rng=np.random.default_rng(4))
        with pytest.raises(ValueError):
            transform.transform_array(rng.normal(size=(5, 4)))

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            FeatureTransform(0)

    def test_gradients_flow(self, rng):
        transform = FeatureTransform(5, rng=np.random.default_rng(5))
        out = transform.forward(Tensor(rng.normal(size=(4, 5))))
        out.sum().backward()
        assert any(p.grad is not None for p in transform.parameters())


class TestConfigs:
    def test_model_config_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(representation_dim=0)
        with pytest.raises(ValueError):
            ModelConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            ModelConfig(epochs=0)
        with pytest.raises(ValueError):
            ModelConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            ModelConfig(early_stopping_patience=-1)
        # patience=0 is valid and means "early stopping disabled"
        assert ModelConfig(early_stopping_patience=0).early_stopping_patience == 0

    def test_model_config_with_updates(self):
        config = ModelConfig()
        updated = config.with_updates(alpha=0.3, epochs=5)
        assert updated.alpha == 0.3
        assert updated.epochs == 5
        assert config.alpha == 1.0  # original untouched

    def test_continual_config_validation(self):
        with pytest.raises(ValueError):
            ContinualConfig(memory_budget=0)
        with pytest.raises(ValueError):
            ContinualConfig(beta=-0.1)
        with pytest.raises(ValueError):
            ContinualConfig(rehearsal_batch_size=0)

    def test_continual_config_with_updates(self):
        config = ContinualConfig()
        updated = config.with_updates(memory_strategy="random")
        assert updated.memory_strategy == "random"
        assert config.memory_strategy == "herding"
